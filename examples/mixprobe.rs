use tepic_ccc::prelude::*;
use yula::opmix::{OpCategory, OpMix};

fn main() {
    let mut stat = [0u64; 7];
    let mut dynm = [0u64; 7];
    let mut stot = 0u64;
    let mut dtot = 0u64;
    for w in &workloads::ALL {
        let (p, r) = w.compile_and_run().unwrap();
        let s = OpMix::static_mix(&p);
        let d = OpMix::dynamic_mix(&p, &r.trace);
        for (i, &c) in OpCategory::ALL.iter().enumerate() {
            stat[i] += s.count(c);
            dynm[i] += d.count(c);
        }
        stot += s.total();
        dtot += d.total();
        println!(
            "{:<10} ops={:>5} dyn={:>9}",
            w.name,
            p.num_ops(),
            r.stats.ops
        );
    }
    println!("category  static%   dynamic%");
    for (i, c) in OpCategory::ALL.iter().enumerate() {
        println!(
            "{:<8} {:>7.2}  {:>7.2}",
            c.label(),
            100.0 * stat[i] as f64 / stot as f64,
            100.0 * dynm[i] as f64 / dtot as f64
        );
    }
    println!("total static {stot} dynamic {dtot}");
}
