//! Building a program directly against the IR API (no Tink source), then
//! inspecting the tailored ISA the compiler derives for it — the
//! "compiler dictates the decoder" workflow of paper Figure 2.
//!
//! ```sh
//! cargo run --example custom_isa --release
//! ```

use tepic_ccc::ccc::schemes::tailored::TailoredSpec;
use tepic_ccc::prelude::*;
use tinker_ir::{Cond, FunctionBuilder, IBinOp, Module, RegClass, Terminator};

fn main() {
    // A module with one function: sum of the first n odd numbers,
    // assembled by hand through the FunctionBuilder.
    let mut module = Module::new();
    let mut b = FunctionBuilder::new("main", 0, Some(RegClass::Int));

    let entry = b.entry();
    let head = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();

    // i = 0; s = 0; odd = 1
    let i = b.new_vreg(RegClass::Int);
    let s = b.new_vreg(RegClass::Int);
    let odd = b.new_vreg(RegClass::Int);
    let zero = b.iconst(entry, 0);
    let one = b.iconst(entry, 1);
    let n = b.iconst(entry, 500);
    b.push(
        entry,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: i,
            a: zero,
        },
    );
    b.push(
        entry,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: s,
            a: zero,
        },
    );
    b.push(
        entry,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: odd,
            a: one,
        },
    );
    b.set_term(entry, Terminator::Jump(head));

    // while (i < n)
    let p = b.icmp(head, Cond::Lt, i, n);
    b.set_term(
        head,
        Terminator::CondBr {
            pred: p,
            then_bb: body,
            else_bb: exit,
        },
    );

    // s += odd; odd += 2; i += 1
    let two = b.iconst(body, 2);
    let s2 = b.ibin(body, IBinOp::Add, s, odd);
    b.push(
        body,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: s,
            a: s2,
        },
    );
    let o2 = b.ibin(body, IBinOp::Add, odd, two);
    b.push(
        body,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: odd,
            a: o2,
        },
    );
    let i2 = b.ibin(body, IBinOp::Add, i, one);
    b.push(
        body,
        tinker_ir::Inst::IUn {
            op: tinker_ir::IUnOp::Mov,
            dst: i,
            a: i2,
        },
    );
    b.set_term(body, Terminator::Jump(head));

    // print(s); return s
    b.push(
        exit,
        tinker_ir::Inst::Sys {
            code: tinker_ir::SysCode::PrintInt,
            arg: s,
        },
    );
    b.set_term(exit, Terminator::Ret(Some(s)));

    module.add_func(b.finish());
    module.verify().expect("hand-built module verifies");
    println!("IR:\n{module}");

    // Compile the module and run it: 500² = 250000.
    let program = lego::compile_module(module, &lego::Options::default()).expect("compiles");
    let run = Emulator::new(&program)
        .run(&Limits::default())
        .expect("runs");
    assert_eq!(run.output.trim(), "250000");
    println!("output: {}", run.output.trim());

    // Inspect the tailored ISA the compiler would hand to the PLA.
    let spec = TailoredSpec::compute(&program);
    println!("\ntailored ISA for this program:");
    println!(
        "  (opt,opcode) kinds used : {:>3} → selector {} bits (vs 7 baseline)",
        spec.opsel.len(),
        spec.opsel.width()
    );
    println!(
        "  GPRs used               : {:>3} → register fields {} bits (vs 5)",
        spec.gpr.len(),
        spec.gpr.width()
    );
    println!(
        "  predicates used         : {:>3} → guard field {} bits (vs 5)",
        spec.pr.len(),
        spec.pr.width()
    );
    println!(
        "  immediate width         : {:>3} bits (vs 20)",
        spec.imm_width
    );
    println!(
        "  branch target width     : {:>3} bits (vs 16)",
        spec.target_width
    );
    let avg_bits: f64 = program
        .ops()
        .iter()
        .map(|o| spec.op_bits(o) as f64)
        .sum::<f64>()
        / program.num_ops() as f64;
    println!("  average op              : {avg_bits:.1} bits (vs 40)");

    let out = schemes::tailored::TailoredScheme
        .compress(&program)
        .expect("tailored");
    println!(
        "  image                   : {} B → {} B ({:.1}%)",
        program.code_size(),
        out.image.total_bytes(),
        out.image.ratio(program.code_size()) * 100.0
    );
    assert!(out.verify_roundtrip(&program));
    println!("  round-trip              : verified bit-exact");
}
