//! The encoding/IFetch tradeoff, end to end, on one benchmark: sweep the
//! cache size and watch who wins — the paper's central insight is that
//! the best scheme depends on whether compression's capacity win
//! outweighs its deeper misprediction penalty.
//!
//! ```sh
//! cargo run --example fetch_tradeoff --release [workload]
//! ```

use tepic_ccc::prelude::*;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "compress".to_string());
    let workload = workloads::by_name(&name).unwrap_or_else(|| {
        eprintln!(
            "unknown workload {name}; available: {}",
            workloads::ALL
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    });

    let (program, run) = workload.compile_and_run().expect("workload runs");
    let base_img = schemes::base::encode_base(&program);
    let tailored = schemes::tailored::TailoredScheme
        .compress(&program)
        .expect("tailored")
        .image;
    let full = schemes::full::FullScheme::default()
        .compress(&program)
        .expect("full")
        .image;

    println!(
        "{}: {} ops, base image {} B, tailored {} B ({:.0}%), compressed {} B ({:.0}%)",
        workload.name,
        program.num_ops(),
        base_img.total_bytes(),
        tailored.total_bytes(),
        tailored.ratio(base_img.total_bytes()) * 100.0,
        full.total_bytes(),
        full.ratio(base_img.total_bytes()) * 100.0,
    );
    println!(
        "\n{:>8} {:>9} {:>9} {:>11} {:>10}",
        "cache B", "ideal", "base", "compressed", "tailored"
    );

    for shift in 0..8 {
        let cap = 256usize << shift;
        let mk = |class: EncodingClass| -> FetchConfig {
            let mut cfg = match class {
                EncodingClass::Base => FetchConfig::base(),
                EncodingClass::Tailored => FetchConfig::tailored(),
                EncodingClass::Compressed => FetchConfig::compressed(),
                EncodingClass::Ideal => FetchConfig::ideal(),
            };
            cfg.cache.capacity = cap;
            cfg
        };
        let ideal = simulate(&program, &base_img, &run.trace, &mk(EncodingClass::Ideal));
        let base = simulate(&program, &base_img, &run.trace, &mk(EncodingClass::Base));
        let comp = simulate(&program, &full, &run.trace, &mk(EncodingClass::Compressed));
        let tail = simulate(
            &program,
            &tailored,
            &run.trace,
            &mk(EncodingClass::Tailored),
        );
        let best = [base.ipc(), comp.ipc(), tail.ipc()]
            .into_iter()
            .fold(f64::MIN, f64::max);
        let mark = |v: f64| if (v - best).abs() < 1e-12 { " *" } else { "" };
        println!(
            "{:>8} {:>9.3} {:>7.3}{} {:>9.3}{} {:>8.3}{}",
            cap,
            ideal.ipc(),
            base.ipc(),
            mark(base.ipc()),
            comp.ipc(),
            mark(comp.ipc()),
            tail.ipc(),
            mark(tail.ipc()),
        );
    }
    println!("\n(* = best real encoding at that cache size)");
    println!("Small caches: compression's capacity advantage dominates.");
    println!("Large caches: everything fits; the shallower pipelines win.");
}
