//! ROM sizing study for an embedded DSP-style firmware: how much ROM does
//! each encoding need once the Address Translation Table is included, and
//! what does the decode hardware cost? This is the workflow an ASIC team
//! would run before choosing an encoding (paper §1–§3).
//!
//! ```sh
//! cargo run --example rom_sizing --release
//! ```

use tepic_ccc::prelude::*;

/// A firmware image: fixed-point FIR filter + control loop + UART-style
/// output formatting — the classic embedded mix of DSP kernel and glue.
const FIRMWARE: &str = r#"
    global coeff[16] = { 3, -7, 12, -18, 25, -31, 36, -38, 38, -36, 31, -25, 18, -12, 7, -3 };
    global delay[16];
    global output[128];
    global rng = 1;

    fn rand() {
        rng = (rng * 1103 + 12345) & 0x7FFFFF;
        return rng;
    }

    fn fir(sample) {
        var i;
        // Shift the delay line.
        for (i = 15; i > 0; i = i - 1) {
            delay[i] = delay[i-1];
        }
        delay[0] = sample;
        var acc = 0;
        for (i = 0; i < 16; i = i + 1) {
            acc = acc + delay[i] * coeff[i];
        }
        return acc >> 6;
    }

    fn put_decimal(v) {
        if (v < 0) { putc('-'); v = 0 - v; }
        if (v >= 10) { put_decimal(v / 10); }
        putc('0' + v % 10);
        return 0;
    }

    fn main() {
        var n;
        var clipped = 0;
        for (n = 0; n < 128; n = n + 1) {
            var s = (rand() % 256) - 128;
            var y = fir(s);
            if (y > 120) { y = 120; clipped = clipped + 1; }
            if (y < -120) { y = -120; clipped = clipped + 1; }
            output[n] = y;
        }
        put_decimal(clipped);
        putc(10);
        var sum = 0;
        for (n = 0; n < 128; n = n + 1) { sum = (sum * 31 + output[n]) & 0xFFFFF; }
        put_decimal(sum);
        putc(10);
    }
"#;

fn main() {
    let program = lego::compile(FIRMWARE, &lego::Options::default()).expect("firmware compiles");
    let run = Emulator::new(&program)
        .run(&Limits::default())
        .expect("firmware runs");
    println!("firmware output:\n{}", run.output.trim());
    println!();

    // Full ROM accounting: code + ATT per scheme, plus decode hardware.
    let report = CompressionReport::build("firmware", &program);
    println!("{report}");

    // The per-scheme ROM decision in embedded terms.
    let base = report.row("base").expect("base present");
    println!("ROM budget view (16-bit-wide ROM parts):");
    for row in &report.rows {
        let total = row.code_bytes + row.att_bytes;
        println!(
            "  {:<10} {:>6} bytes ROM ({:>5.1}% of base), decoder ≈ {:>12} transistors",
            row.scheme,
            total,
            100.0 * total as f64 / base.code_bytes as f64,
            row.decoder_transistors
        );
    }

    // Tailored-ISA extra artifact: the compiler-emitted decoder Verilog.
    let spec = tepic_ccc::ccc::schemes::tailored::TailoredSpec::compute(&program);
    let verilog = tepic_ccc::ccc::pla::emit_tailored_decoder_verilog(&spec, "firmware_decoder");
    println!(
        "\ntailored decoder: {} (opt,opcode) kinds, header {} bits, {} lines of Verilog",
        spec.opsel.len(),
        spec.header_width(),
        verilog.lines().count()
    );
    println!("--- first lines of the generated module ---");
    for line in verilog.lines().take(12) {
        println!("{line}");
    }
}
