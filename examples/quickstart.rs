//! Quickstart: compile a Tink program with LEGO, execute it on YULA,
//! compress the ROM with every scheme, and simulate the fetch pipelines.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use tepic_ccc::prelude::*;

fn main() {
    // 1. A small embedded application in the Tink language.
    let source = r#"
        global samples[64];
        fn main() {
            var i;
            // Synthesize a waveform, then run a windowed peak detector.
            for (i = 0; i < 64; i = i + 1) {
                samples[i] = ((i * 37) % 61) - 30;
            }
            var peaks = 0;
            for (i = 1; i < 63; i = i + 1) {
                if (samples[i] > samples[i-1] && samples[i] > samples[i+1]) {
                    peaks = peaks + 1;
                }
            }
            print(peaks);
        }
    "#;

    // 2. Compile: frontend → optimizer → scheduler → TEPIC image.
    let program = lego::compile(source, &lego::Options::default()).expect("compiles");
    println!(
        "compiled: {} ops in {} blocks ({} MultiOps), {} bytes of 40-bit code",
        program.num_ops(),
        program.num_blocks(),
        program.num_mops(),
        program.code_size()
    );

    // 3. Execute on the emulator — output plus a dynamic block trace.
    let run = Emulator::new(&program)
        .run(&Limits::default())
        .expect("runs");
    println!("program output: {}", run.output.trim());
    println!(
        "dynamic: {} ops over {} block fetches (MOP density {:.2})",
        run.stats.ops,
        run.stats.blocks,
        run.stats.avg_mop_density()
    );

    // 4. Compress the ROM with every scheme (Figure 5 in miniature).
    println!("\n{}", CompressionReport::build("quickstart", &program));

    // 5. Fetch-pipeline simulation (Figure 13 in miniature).
    let base_img = schemes::base::encode_base(&program);
    let tailored = schemes::tailored::TailoredScheme
        .compress(&program)
        .expect("tailored");
    let full = schemes::full::FullScheme::default()
        .compress(&program)
        .expect("full");
    for (name, img, cfg) in [
        ("ideal", &base_img, FetchConfig::ideal()),
        ("base", &base_img, FetchConfig::base()),
        ("tailored", &tailored.image, FetchConfig::tailored()),
        ("compressed", &full.image, FetchConfig::compressed()),
    ] {
        let r = simulate(&program, img, &run.trace, &cfg);
        println!(
            "{name:<11} IPC {:.3}  (pred {:.1}%, I$ hit {:.1}%, bus flips {})",
            r.ipc(),
            r.pred_accuracy() * 100.0,
            r.cache_hit_rate() * 100.0,
            r.bus_bit_flips
        );
    }
}
