//! Whole-pipeline determinism: identical inputs must produce bit-identical
//! artifacts at every stage (the compiler is part of the trusted base for
//! the ROM contents, so nondeterminism would poison every experiment).

use tepic_ccc::ccc::schemes::standard_schemes;
use tepic_ccc::prelude::*;

#[test]
fn compilation_is_bit_deterministic() {
    for w in workloads::ALL.iter().take(4) {
        let a = w.compile().unwrap();
        let b = w.compile().unwrap();
        assert_eq!(a.code_bytes(), b.code_bytes(), "{}: code differs", w.name);
        assert_eq!(a.data(), b.data(), "{}: data differs", w.name);
        assert_eq!(a.entry(), b.entry());
    }
}

#[test]
fn compression_is_bit_deterministic() {
    let w = workloads::by_name("perl").unwrap();
    let p = w.compile().unwrap();
    for scheme in standard_schemes() {
        let a = scheme.compress(&p).unwrap();
        let b = scheme.compress(&p).unwrap();
        assert_eq!(
            a.image.bytes,
            b.image.bytes,
            "{}: bytes differ",
            scheme.name()
        );
        assert_eq!(a.image.block_start, b.image.block_start);
        assert_eq!(a.image.decoder, b.image.decoder);
    }
}

#[test]
fn traces_are_deterministic() {
    let w = workloads::by_name("go").unwrap();
    let p = w.compile().unwrap();
    let a = Emulator::new(&p).run(&Limits::default()).unwrap();
    let b = Emulator::new(&p).run(&Limits::default()).unwrap();
    assert_eq!(a.trace.blocks(), b.trace.blocks());
    assert_eq!(a.output, b.output);
}

#[test]
fn simulation_is_deterministic_across_configs() {
    let w = workloads::by_name("li").unwrap();
    let (p, run) = w.compile_and_run().unwrap();
    let img = tepic_ccc::ccc::schemes::base::encode_base(&p);
    for cfg in [FetchConfig::base(), FetchConfig::ideal()] {
        let a = simulate(&p, &img, &run.trace, &cfg);
        let b = simulate(&p, &img, &run.trace, &cfg);
        assert_eq!(a, b);
    }
}

#[test]
fn parallel_preparation_matches_serial() {
    // The work-stealing engine must be invisible in the results: the
    // whole prepared suite — programs, traces, every encoded image — and
    // the downstream fetch statistics must be bit-identical whether one
    // worker runs every task (the reference serial schedule) or eight
    // workers race over them.
    use tepic_ccc::bench::engine::Engine;
    use tepic_ccc::bench::{cache_study_scaled, Prepared};

    let serial: Vec<Prepared> = Engine::uncached(1).prepare_all().expect("jobs=1 prepares");
    let parallel: Vec<Prepared> = Engine::uncached(8).prepare_all().expect("jobs=8 prepares");
    assert_eq!(serial.len(), parallel.len());

    for (a, b) in serial.iter().zip(&parallel) {
        let name = a.workload.name;
        assert_eq!(a.workload.name, b.workload.name, "workload order changed");
        assert_eq!(a.program, b.program, "{name}: program differs");
        assert_eq!(a.trace, b.trace, "{name}: trace differs");
        for ((sa, ia), (_, ib)) in a.images().zip(b.images()) {
            assert_eq!(ia, ib, "{name}/{sa}: image differs");
        }
        assert_eq!(a.base_img, b.base_img, "{name}: base image differs");

        // FetchResult derives PartialEq, so this compares every counter
        // the figures consume (cycles, hits, predictions, bus activity).
        let sa = cache_study_scaled(a);
        let sb = cache_study_scaled(b);
        assert_eq!(sa.ideal, sb.ideal, "{name}: ideal stats differ");
        assert_eq!(sa.base, sb.base, "{name}: base stats differ");
        assert_eq!(sa.compressed, sb.compressed, "{name}: compressed differ");
        assert_eq!(sa.tailored, sb.tailored, "{name}: tailored differ");
    }
}

#[test]
fn generated_corpus_preparation_matches_across_job_counts() {
    // The synthetic corpus must enjoy the same engine guarantee as the
    // built-in suite: a generated tiny tier prepared by one worker is
    // bit-identical — programs, traces, every scheme image — to the
    // same tier prepared by eight workers racing over the task pool.
    use tepic_ccc::bench::engine::Engine;
    use tepic_ccc::workgen::{generate_corpus, Flavor, Tier};

    let corpus = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
    let workloads = corpus.workloads();
    let serial = Engine::uncached(1).prepare(&workloads).expect("jobs=1");
    let parallel = Engine::uncached(8).prepare(&workloads).expect("jobs=8");
    assert_eq!(serial.len(), parallel.len());

    for (a, b) in serial.iter().zip(&parallel) {
        let name = a.workload.name;
        assert_eq!(a.workload.name, b.workload.name, "workload order changed");
        assert_eq!(a.program, b.program, "{name}: program differs");
        assert_eq!(a.trace, b.trace, "{name}: trace differs");
        for ((sa, ia), (_, ib)) in a.images().zip(b.images()) {
            assert_eq!(ia, ib, "{name}/{sa}: image differs");
        }
        assert_eq!(a.base_img, b.base_img, "{name}: base image differs");
    }
}
