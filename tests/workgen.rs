//! Whole-pipeline property tests for the synthetic workload generator
//! (DESIGN.md §14). The generator's contract has three legs, and each
//! is asserted here end-to-end rather than unit-by-unit:
//!
//! 1. **Determinism** — equal (seed, tier, flavor) reproduce the corpus
//!    byte-for-byte, and the prepared artifacts are identical whether
//!    the engine runs cold or warm, serial or parallel.
//! 2. **Validity** — every generated program compiles through `lego`,
//!    runs to a clean halt inside a bounded step budget, and round-trips
//!    all five compression schemes bit-exactly.
//! 3. **Calibration** — the `10x` tier's aggregate static op mix lands
//!    within 5 percentage points of the flavor target in every
//!    category (the acceptance bound `tepic-cc gen` enforces in CI).

use tepic_ccc::bench::engine::{scheme_by_name, Engine, MATRIX_SCHEMES};
use tepic_ccc::prelude::*;
use tepic_ccc::workgen::{generate_corpus, Flavor, GenError, MixProfile, Tier};

/// Step budget for generated programs: generous against the observed
/// 22k–200k dynamic ops, tight enough to catch a runaway loop fast.
const GEN_LIMITS: Limits = Limits { max_ops: 5_000_000 };

#[test]
fn corpus_generation_is_deterministic() {
    let a = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
    let b = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
    assert_eq!(a.programs.len(), b.programs.len());
    for (pa, pb) in a.programs.iter().zip(&b.programs) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(pa.seed, pb.seed);
        assert_eq!(pa.source, pb.source, "{}: source text differs", pa.name);
    }

    // Different seeds and flavors must actually change the corpus.
    let c = generate_corpus(43, Tier::Tiny, Flavor::Tepic).unwrap();
    assert_ne!(a.programs[0].source, c.programs[0].source);
    let f = generate_corpus(42, Tier::Tiny, Flavor::Foreign).unwrap();
    assert_ne!(a.programs[0].source, f.programs[0].source);
}

#[test]
fn per_program_seeds_are_decorrelated() {
    let c = generate_corpus(42, Tier::Paper, Flavor::Tepic).unwrap();
    let mut seeds: Vec<u64> = c.programs.iter().map(|p| p.seed).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), c.programs.len(), "derived seeds collide");
    let mut names: Vec<&str> = c.programs.iter().map(|p| p.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), c.programs.len(), "program names collide");
}

#[test]
fn gated_tier_is_refused_without_opt_in() {
    if std::env::var("CCC_GEN_1000X").is_ok_and(|v| v == "1") {
        return; // opted in externally; nothing to refuse
    }
    match generate_corpus(42, Tier::ThousandX, Flavor::Tepic) {
        Err(GenError::TierGated(Tier::ThousandX)) => {}
        other => panic!("expected TierGated, got {other:?}"),
    }
}

/// Every program in a tiny corpus, across several seeds and both
/// flavors: compiles, halts within budget with output, and round-trips
/// all five schemes with a sane image layout.
#[test]
fn tiny_corpora_compile_run_and_roundtrip() {
    for flavor in Flavor::ALL {
        for seed in [1u64, 42, 99] {
            let corpus = generate_corpus(seed, Tier::Tiny, flavor).unwrap();
            assert!(!corpus.programs.is_empty());
            for gp in &corpus.programs {
                let p = lego::compile(&gp.source, &lego::Options::default())
                    .unwrap_or_else(|e| panic!("{}: compile: {e}", gp.name));
                let run = Emulator::new(&p)
                    .run(&GEN_LIMITS)
                    .unwrap_or_else(|e| panic!("{}: run: {e}", gp.name));
                assert!(!run.output.is_empty(), "{}: halted with no output", gp.name);
                for scheme in MATRIX_SCHEMES {
                    let out = scheme_by_name(scheme)
                        .unwrap()
                        .compress(&p)
                        .unwrap_or_else(|e| panic!("{}/{scheme}: {e}", gp.name));
                    assert!(
                        out.verify_roundtrip(&p),
                        "{}/{scheme}: round-trip failed",
                        gp.name
                    );
                    assert_eq!(
                        out.image.num_blocks(),
                        p.num_blocks(),
                        "{}/{scheme}: block count drifted",
                        gp.name
                    );
                    assert!(
                        out.image.total_bytes() > 0,
                        "{}/{scheme}: empty image",
                        gp.name
                    );
                }
            }
        }
    }
}

/// The acceptance property behind `tepic-cc gen`: the 10x tier's
/// aggregate static mix stays within the 5 pp band of the flavor
/// target, and the whole tier survives the full pipeline.
#[test]
fn ten_x_tier_is_calibrated_and_roundtrips() {
    let corpus = generate_corpus(42, Tier::TenX, Flavor::Tepic).unwrap();
    assert_eq!(corpus.programs.len(), Tier::TenX.program_count());

    let opts = lego::Options::default();
    let mut programs = Vec::with_capacity(corpus.programs.len());
    for gp in &corpus.programs {
        let p = lego::compile(&gp.source, &opts)
            .unwrap_or_else(|e| panic!("{}: compile: {e}", gp.name));
        Emulator::new(&p)
            .run(&GEN_LIMITS)
            .unwrap_or_else(|e| panic!("{}: run: {e}", gp.name));
        programs.push(p);
    }

    let generated = MixProfile::from_programs(&programs);
    let target = Flavor::Tepic.target();
    let max_delta = generated.max_delta_pp(&target);
    assert!(
        max_delta <= 5.0,
        "10x tier out of band: {max_delta:.2} pp\n  generated {:?}\n  target {:?}",
        generated.fractions,
        target.fractions
    );

    // Round-trip the whole tier through every scheme. Spot-checking
    // would be cheaper, but the tier is the unit the bench engine
    // consumes, so the tier is the unit we certify.
    for (gp, p) in corpus.programs.iter().zip(&programs) {
        for scheme in MATRIX_SCHEMES {
            let out = scheme_by_name(scheme)
                .unwrap()
                .compress(p)
                .unwrap_or_else(|e| panic!("{}/{scheme}: {e}", gp.name));
            assert!(
                out.verify_roundtrip(p),
                "{}/{scheme}: round-trip failed",
                gp.name
            );
        }
    }
}

/// Generated programs must survive the fetch simulator with a clean
/// integrity record: every compressed block decodes on the miss path
/// (no decode errors, no integrity faults) and the cycle model
/// produces a sane IPC.
#[test]
fn generated_programs_fetch_simulate_cleanly() {
    let corpus = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
    for gp in &corpus.programs {
        let p = lego::compile(&gp.source, &lego::Options::default()).unwrap();
        let run = Emulator::new(&p).run(&GEN_LIMITS).unwrap();
        let out = scheme_by_name("full").unwrap().compress(&p).unwrap();
        let (result, dstats) = simulate_decoded(
            &p,
            &out.image,
            &run.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
        );
        assert_eq!(dstats.decode_errors, 0, "{}: decode errors", gp.name);
        assert_eq!(
            result.integrity_faults, 0,
            "{}: integrity faults on a clean image",
            gp.name
        );
        let ipc = result.ipc();
        assert!(
            ipc > 0.0 && ipc <= 6.0,
            "{}: implausible IPC {ipc}",
            gp.name
        );
    }
}

/// The foreign flavor must both land inside its own band and actually
/// skew the mix away from the TEPIC profile in the advertised
/// direction (denser memory traffic, lighter control).
#[test]
fn foreign_flavor_skews_and_stays_in_band() {
    let corpus = generate_corpus(42, Tier::Paper, Flavor::Foreign).unwrap();
    let programs: Vec<_> = corpus
        .programs
        .iter()
        .map(|gp| {
            lego::compile(&gp.source, &lego::Options::default())
                .unwrap_or_else(|e| panic!("{}: compile: {e}", gp.name))
        })
        .collect();
    let generated = MixProfile::from_programs(&programs);
    let target = Flavor::Foreign.target();
    let max_delta = generated.max_delta_pp(&target);
    assert!(max_delta <= 5.0, "foreign out of band: {max_delta:.2} pp");

    // load+store share above the TEPIC target's, ctrl share below.
    let tepic = Flavor::Tepic.target();
    let mem = generated.fractions[3] + generated.fractions[4];
    let mem_tepic = tepic.fractions[3] + tepic.fractions[4];
    assert!(
        mem > mem_tepic,
        "foreign mem {mem:.3} <= tepic {mem_tepic:.3}"
    );
    assert!(
        generated.fractions[5] < tepic.fractions[5],
        "foreign ctrl did not drop"
    );
}

/// A warm engine must reproduce the cold run's artifacts bit-for-bit,
/// and a parallel prepare must match a serial one — the generated
/// corpus rides the same engine guarantees as the real suite.
#[test]
fn engine_prepare_is_cache_and_parallelism_invariant() {
    let corpus = generate_corpus(7, Tier::Tiny, Flavor::Tepic).unwrap();
    let workloads = corpus.workloads();

    let dir = std::env::temp_dir().join(format!("ccc-workgen-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_engine = Engine::with_cache_dir(2, &dir).unwrap();
    let cold = cold_engine.prepare(&workloads).expect("cold prepare");
    let snap = cold_engine.snapshot();
    assert!(snap.misses() > 0, "cold run should build artifacts");

    let warm_engine = Engine::with_cache_dir(2, &dir).unwrap();
    let warm = warm_engine.prepare(&workloads).expect("warm prepare");
    let wsnap = warm_engine.snapshot();
    assert_eq!(wsnap.misses(), 0, "warm run must be fully cache-served");

    let serial = Engine::uncached(1).prepare(&workloads).expect("serial");
    let parallel = Engine::uncached(8).prepare(&workloads).expect("parallel");

    for other in [&warm, &serial, &parallel] {
        assert_eq!(cold.len(), other.len());
        for (a, b) in cold.iter().zip(other.iter()) {
            let name = a.workload.name;
            assert_eq!(a.program, b.program, "{name}: program differs");
            assert_eq!(a.trace, b.trace, "{name}: trace differs");
            for ((sa, ia), (_, ib)) in a.images().zip(b.images()) {
                assert_eq!(ia, ib, "{name}/{sa}: image differs");
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}
