//! End-to-end pipeline integration: for every workload, the compiler,
//! emulator, every compression scheme, the ATT and the fetch simulator
//! must agree with each other.

use tepic_ccc::ccc::schemes::{self, standard_schemes, Scheme};
use tepic_ccc::ccc::AddressTranslationTable;
use tepic_ccc::prelude::*;

#[test]
fn every_workload_round_trips_every_scheme() {
    for w in &workloads::ALL {
        let program = w.compile().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        for scheme in standard_schemes() {
            let out = scheme
                .compress(&program)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", w.name, scheme.name()));
            assert!(
                out.image.check_layout(),
                "{}/{}: bad layout",
                w.name,
                scheme.name()
            );
            assert!(
                out.verify_roundtrip(&program),
                "{}/{}: round trip failed",
                w.name,
                scheme.name()
            );
        }
    }
}

#[test]
fn att_entries_match_images() {
    for w in &workloads::ALL {
        let program = w.compile().unwrap();
        for scheme in standard_schemes() {
            let out = scheme.compress(&program).unwrap();
            let att = AddressTranslationTable::build(&program, &out.image);
            assert_eq!(att.entries().len(), program.num_blocks());
            for (b, e) in att.entries().iter().enumerate() {
                assert_eq!(e.compressed_addr, out.image.block_start[b]);
                assert_eq!(e.num_ops as usize, program.blocks()[b].num_ops);
                assert_eq!(e.num_mops as usize, program.blocks()[b].num_mops);
            }
        }
    }
}

#[test]
fn fetch_simulation_conserves_the_instruction_stream() {
    // Every configuration must deliver exactly the ops of the trace.
    for w in workloads::ALL.iter().take(3) {
        let (program, run) = w.compile_and_run().unwrap();
        let expected_ops = run.stats.ops;
        let base_img = schemes::base::encode_base(&program);
        let tail = schemes::tailored::TailoredScheme
            .compress(&program)
            .unwrap()
            .image;
        let full = schemes::full::FullScheme::default()
            .compress(&program)
            .unwrap()
            .image;
        for (img, cfg) in [
            (&base_img, FetchConfig::ideal()),
            (&base_img, FetchConfig::base()),
            (&tail, FetchConfig::tailored()),
            (&full, FetchConfig::compressed()),
        ] {
            let r = simulate(&program, img, &run.trace, &cfg);
            assert_eq!(
                r.ops, expected_ops,
                "{}: {:?} dropped ops",
                w.name, cfg.class
            );
            assert!(r.cycles >= r.mops, "{}: cycles below MOP count", w.name);
            assert!(r.ipc() <= 6.0 + 1e-9, "{}: IPC above issue width", w.name);
        }
    }
}

#[test]
fn disassembly_lists_every_block() {
    let w = workloads::by_name("compress").unwrap();
    let program = w.compile().unwrap();
    let listing = program.listing();
    for b in 0..program.num_blocks() {
        assert!(listing.contains(&format!(".b{b}:")), "missing label .b{b}");
    }
    for f in program.funcs() {
        assert!(listing.contains(&f.name), "missing function {}", f.name);
    }
}

#[test]
fn tailored_verilog_emits_for_every_workload() {
    use tepic_ccc::ccc::pla::emit_tailored_decoder_verilog;
    use tepic_ccc::ccc::schemes::tailored::TailoredSpec;
    for w in &workloads::ALL {
        let program = w.compile().unwrap();
        let spec = TailoredSpec::compute(&program);
        let v = emit_tailored_decoder_verilog(&spec, &format!("{}_decoder", w.name));
        assert!(v.contains(&format!("module {}_decoder", w.name)));
        assert!(v.matches("// opt=").count() == spec.opsel.len());
        assert!(v.contains("endmodule"));
    }
}

#[test]
fn emulator_agrees_across_encodings_by_construction() {
    // The compressed images decode to the very words the emulator runs;
    // spot-check by decoding one block of each scheme and disassembling.
    let w = workloads::by_name("li").unwrap();
    let program = w.compile().unwrap();
    for scheme in standard_schemes() {
        let out = scheme.compress(&program).unwrap();
        let words = out
            .codec
            .decode_block(&out.image, 0, program.blocks()[0].num_ops)
            .expect("block 0 decodes");
        for (i, word) in words.iter().enumerate() {
            let op = tepic_ccc::isa::Operation::decode(*word)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert_eq!(op, program.block_ops(0)[i]);
        }
    }
}
