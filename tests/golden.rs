//! Golden-snapshot tests over the paper's figures.
//!
//! The committed files under `tests/golden/` are the exact stdout of the
//! corresponding figure binaries. Each test regenerates the figure
//! through the prepared-workload engine (uncached, so nothing on disk
//! can mask a regression) and diffs the full text: any change to the
//! compiler, the codecs, the fetch simulator or the renderers shows up
//! as a line-level diff here before it can silently shift a result.
//!
//! To refresh after an *intentional* change:
//!
//! ```text
//! cargo build --release -p ccc-bench
//! CCC_NO_CACHE=1 ./target/release/fig05_compression > tests/golden/fig05_compression.txt
//! CCC_NO_CACHE=1 ./target/release/fig07_att_size    > tests/golden/fig07_att_size.txt
//! CCC_NO_CACHE=1 ./target/release/fig14_bus_power   > tests/golden/fig14_bus_power.txt
//! ```

use tepic_ccc::bench::engine::Engine;
use tepic_ccc::bench::{figures, Prepared};

fn prepared() -> Vec<Prepared> {
    Engine::uncached(4).prepare_all().expect("suite prepares")
}

/// Diffs `actual` against the committed snapshot, with a line-level
/// report on mismatch.
fn assert_matches_golden(name: &str, golden: &str, actual: &str) {
    if actual == golden {
        return;
    }
    let mut report = String::new();
    for (i, (g, a)) in golden.lines().zip(actual.lines()).enumerate() {
        if g != a {
            report.push_str(&format!("line {}:\n  golden: {g}\n  actual: {a}\n", i + 1));
        }
    }
    let (gl, al) = (golden.lines().count(), actual.lines().count());
    if gl != al {
        report.push_str(&format!("line counts differ: golden {gl}, actual {al}\n"));
    }
    panic!(
        "{name} drifted from its golden snapshot (see tests/golden.rs for the \
         refresh recipe):\n{report}"
    );
}

#[test]
fn fig05_matches_golden() {
    let engine = Engine::uncached(4);
    let prepared = engine.prepare_all().expect("suite prepares");
    let reports = engine.reports(&prepared);
    assert_matches_golden(
        "fig05_compression",
        include_str!("golden/fig05_compression.txt"),
        &figures::fig05(&reports),
    );
}

#[test]
fn fig07_matches_golden() {
    let engine = Engine::uncached(4);
    let prepared = engine.prepare_all().expect("suite prepares");
    let reports = engine.reports(&prepared);
    assert_matches_golden(
        "fig07_att_size",
        include_str!("golden/fig07_att_size.txt"),
        &figures::fig07(&reports, &prepared),
    );
}

#[test]
fn fig14_matches_golden() {
    assert_matches_golden(
        "fig14_bus_power",
        include_str!("golden/fig14_bus_power.txt"),
        &figures::fig14(&prepared()),
    );
}
