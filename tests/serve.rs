//! End-to-end tests of the `tepic-ccd` serving layer (DESIGN.md §17):
//! protocol round-trips against a live in-process server, single-flight
//! coalescing under a cold-key stampede, bounded-admission
//! backpressure, graceful drain, warm-path byte-identity against the
//! one-shot pipeline, and codec memoization on repeated simulates.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tepic_ccc::bench::engine::{scheme_by_name, Engine};
use tepic_ccc::bench::serve::proto::{
    read_frame, write_frame, JobOp, JobRequest, Request, MAX_FRAME,
};
use tepic_ccc::bench::serve::{DispatchGate, ServeConfig, ServerHandle};
use tepic_ccc::telemetry::parse_json;
use tepic_ccc::workgen::{generate_program, Flavor, GenParams};

/// A scratch cache dir unique to this test, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "ccc-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_source(tag: u64) -> String {
    generate_program(
        tag,
        &GenParams::for_flavor(Flavor::Tepic),
        &format!("serve-test-{tag}"),
    )
    .source
}

fn job(op: JobOp, name: &str, source: &str, scheme: &str, seed: u64) -> Request {
    Request::Job(JobRequest {
        op,
        name: name.to_string(),
        scheme: scheme.to_string(),
        seed,
        source: source.to_string(),
    })
}

fn roundtrip(stream: &mut TcpStream, req: &Request) -> Vec<u8> {
    write_frame(stream, req.canonical().as_bytes()).expect("write frame");
    read_frame(stream)
        .expect("read frame")
        .expect("server responded")
}

fn connect(addr: SocketAddr) -> TcpStream {
    TcpStream::connect(addr).expect("connect to in-process daemon")
}

fn poll_until(what: &str, mut f: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !f() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn start_uncached(cfg: ServeConfig) -> ServerHandle {
    ServerHandle::start(Engine::uncached(2), cfg).expect("bind ephemeral port")
}

#[test]
fn ping_and_metrics_round_trip() {
    let server = start_uncached(ServeConfig::default());
    let mut c = connect(server.local_addr());

    let pong = roundtrip(&mut c, &Request::Ping);
    let v = parse_json(std::str::from_utf8(&pong).unwrap()).expect("ping response is JSON");
    assert_eq!(v.get("msg").and_then(|m| m.as_str()), Some("pong"));

    let metrics = roundtrip(&mut c, &Request::Metrics);
    let v = parse_json(std::str::from_utf8(&metrics).unwrap()).expect("metrics response is JSON");
    let counters = v
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .expect("metrics.counters present");
    assert!(
        counters.get("serve.requests").is_some(),
        "request counter exported"
    );

    server.shutdown();
    server.join();
}

#[test]
fn warm_hits_are_byte_identical_to_one_shot_artifacts() {
    let scratch = ScratchDir::new("warm");
    let engine = Engine::with_cache_dir(2, &scratch.0).expect("open scratch cache");
    let server = ServerHandle::start(engine, ServeConfig::default()).expect("start");
    let source = small_source(11);
    let req = job(JobOp::Encode, "warmcheck", &source, "full", 0);

    let cold = roundtrip(&mut connect(server.local_addr()), &req);
    let warm = roundtrip(&mut connect(server.local_addr()), &req);
    assert_eq!(cold, warm, "warm response must be byte-identical to cold");

    // The daemon's image must be exactly the one-shot CLI pipeline's.
    let v = parse_json(std::str::from_utf8(&cold).unwrap()).expect("encode response is JSON");
    let hex = v
        .get("image_hex")
        .and_then(|h| h.as_str())
        .expect("image_hex present");
    let served = tepic_ccc::bench::serve::proto::from_hex(hex).expect("valid hex");
    let program = lego::compile(&source, &lego::Options::default()).expect("compiles");
    let local = tepic_ccc::ccc::encoded_to_bytes(
        &scheme_by_name("full")
            .unwrap()
            .compress(&program)
            .expect("compresses")
            .image,
    );
    assert_eq!(served, local, "daemon image differs from one-shot artifact");

    // And the warm request was really served from cache: one miss
    // (the cold build), at least one hit (the warm one).
    let snap_gauges = roundtrip(&mut connect(server.local_addr()), &Request::Metrics);
    let v = parse_json(std::str::from_utf8(&snap_gauges).unwrap()).unwrap();
    let gauges = v.get("metrics").and_then(|m| m.get("gauges")).unwrap();
    assert_eq!(
        gauges
            .get("serve.engine.image_misses")
            .and_then(|g| g.as_f64()),
        Some(1.0)
    );
    assert_eq!(
        gauges
            .get("serve.engine.image_hits")
            .and_then(|g| g.as_f64()),
        Some(1.0)
    );

    server.shutdown();
    server.join();
}

#[test]
fn cold_stampede_coalesces_to_one_build() {
    let gate = DispatchGate::closed();
    let cfg = ServeConfig {
        jobs: 4,
        gate: Some(Arc::clone(&gate)),
        ..ServeConfig::default()
    };
    let server = start_uncached(cfg);
    let source = small_source(22);
    let req = job(JobOp::Encode, "stampede", &source, "byte", 0);

    const N: usize = 6;
    let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let req = req.clone();
                let addr = server.local_addr();
                scope.spawn(move || roundtrip(&mut connect(addr), &req))
            })
            .collect();
        // All requests but the leader must be parked on the leader's
        // flight before the build is allowed to run.
        poll_until("N-1 coalesced waiters", || {
            server.registry().counter("serve.coalesced_waits").get() == (N - 1) as u64
        });
        gate.open();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one build ran; the waiter counter reconciles 1:1 with
    // the stampede size; every response is byte-identical.
    assert_eq!(server.registry().counter("serve.jobs_executed").get(), 1);
    assert_eq!(
        server.registry().counter("serve.coalesced_waits").get(),
        (N - 1) as u64
    );
    for r in &responses[1..] {
        assert_eq!(r, &responses[0], "coalesced responses must be identical");
    }
    let v = parse_json(std::str::from_utf8(&responses[0]).unwrap()).unwrap();
    assert_eq!(
        v.get("ok")
            .map(|o| o == &tepic_ccc::telemetry::JsonValue::Bool(true)),
        Some(true)
    );

    // A later identical request is its own flight (the finished one
    // was deregistered) but still yields the same bytes.
    let again = roundtrip(&mut connect(server.local_addr()), &req);
    assert_eq!(again, responses[0]);
    assert_eq!(server.registry().counter("serve.jobs_executed").get(), 2);

    server.shutdown();
    server.join();
}

#[test]
fn full_admission_queue_answers_busy() {
    let gate = DispatchGate::closed();
    let cfg = ServeConfig {
        jobs: 1,
        queue_depth: 1,
        gate: Some(Arc::clone(&gate)),
        ..ServeConfig::default()
    };
    let server = start_uncached(cfg);
    let addr = server.local_addr();
    let src_a = small_source(31);
    let src_b = small_source(32);
    let src_c = small_source(33);

    std::thread::scope(|scope| {
        // A is dequeued by the dispatcher and parked at the gate.
        let a = scope.spawn({
            let req = job(JobOp::Encode, "busy-a", &src_a, "byte", 0);
            move || roundtrip(&mut connect(addr), &req)
        });
        poll_until("dispatcher to claim job A", || {
            let m = roundtrip(&mut connect(addr), &Request::Metrics);
            let v = parse_json(std::str::from_utf8(&m).unwrap()).unwrap();
            v.get("metrics")
                .and_then(|m| m.get("gauges"))
                .and_then(|g| g.get("serve.queue_len"))
                .and_then(|q| q.as_f64())
                == Some(0.0)
                && server.registry().counter("serve.requests").get() >= 1
        });
        // B fills the queue (depth 1).
        let b = scope.spawn({
            let req = job(JobOp::Encode, "busy-b", &src_b, "byte", 0);
            move || roundtrip(&mut connect(addr), &req)
        });
        poll_until("job B to occupy the queue", || {
            let m = roundtrip(&mut connect(addr), &Request::Metrics);
            let v = parse_json(std::str::from_utf8(&m).unwrap()).unwrap();
            v.get("metrics")
                .and_then(|m| m.get("gauges"))
                .and_then(|g| g.get("serve.queue_len"))
                .and_then(|q| q.as_f64())
                == Some(1.0)
        });
        // C must bounce immediately with a typed busy error.
        let req_c = job(JobOp::Encode, "busy-c", &src_c, "byte", 0);
        let c_resp = roundtrip(&mut connect(addr), &req_c);
        let v = parse_json(std::str::from_utf8(&c_resp).unwrap()).unwrap();
        assert_eq!(
            v.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str()),
            Some("busy"),
            "third job must be rejected: {}",
            String::from_utf8_lossy(&c_resp)
        );
        assert_eq!(server.registry().counter("serve.busy_rejections").get(), 1);

        // Opening the gate lets A and B finish normally.
        gate.open();
        let va = parse_json(std::str::from_utf8(&a.join().unwrap()).unwrap()).unwrap();
        let vb = parse_json(std::str::from_utf8(&b.join().unwrap()).unwrap()).unwrap();
        for v in [va, vb] {
            assert_eq!(
                v.get("ok"),
                Some(&tepic_ccc::telemetry::JsonValue::Bool(true))
            );
        }
    });

    server.shutdown();
    server.join();
}

#[test]
fn graceful_drain_finishes_jobs_and_refuses_new_connections() {
    let server = start_uncached(ServeConfig::default());
    let addr = server.local_addr();
    let source = small_source(44);

    let mut c = connect(addr);
    let before = roundtrip(&mut c, &job(JobOp::Compile, "drainer", &source, "full", 0));
    assert!(String::from_utf8_lossy(&before).contains("\"ok\":true"));

    // Shutdown over the wire; the ack must arrive on this connection.
    let ack = roundtrip(&mut c, &Request::Shutdown);
    assert!(String::from_utf8_lossy(&ack).contains("\"draining\":true"));

    // A job on the still-open connection gets a typed draining error.
    let rejected = roundtrip(&mut c, &job(JobOp::Compile, "late", &source, "full", 0));
    let v = parse_json(std::str::from_utf8(&rejected).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("draining")
    );

    // join() returns (accept loop + dispatcher exit) and the port is
    // then refused for new connections.
    server.join();
    assert!(
        TcpStream::connect(addr).is_err(),
        "drained daemon must refuse new connections"
    );
}

#[test]
fn repeated_simulates_memoize_the_decoder_tables() {
    let scratch = ScratchDir::new("memo");
    let engine = Engine::with_cache_dir(2, &scratch.0).expect("open scratch cache");
    let server = ServerHandle::start(engine, ServeConfig::default()).expect("start");
    let source = small_source(55);
    let req = job(JobOp::Simulate, "memo", &source, "stream", 0);

    let first = roundtrip(&mut connect(server.local_addr()), &req);
    let second = roundtrip(&mut connect(server.local_addr()), &req);
    assert_eq!(first, second, "simulate responses must be deterministic");
    assert!(String::from_utf8_lossy(&first).contains("\"blocks_decoded\""));

    // Satellite 3: the second simulate reuses the memoized codec
    // instead of rebuilding LUT/interleaved tables, and the win is
    // visible in the decode.* counters.
    assert_eq!(
        server.registry().counter("decode.codec_memo_misses").get(),
        1,
        "exactly one codec build"
    );
    assert_eq!(
        server.registry().counter("decode.codec_memo_hits").get(),
        1,
        "second simulate hits the memo"
    );
    // Both simulates really decoded blocks (the memo did not skip
    // decode work, only table construction).
    let blocks = server.registry().counter("decode.blocks_decoded").get();
    assert!(
        blocks > 0,
        "decode counters must accumulate across requests"
    );

    server.shutdown();
    server.join();
}

#[test]
fn faultsim_is_deterministic_per_seed_and_varies_across_seeds() {
    let scratch = ScratchDir::new("fault");
    let engine = Engine::with_cache_dir(2, &scratch.0).expect("open scratch cache");
    let server = ServerHandle::start(engine, ServeConfig::default()).expect("start");
    let source = small_source(66);

    let r7a = roundtrip(
        &mut connect(server.local_addr()),
        &job(JobOp::Faultsim, "fsim", &source, "full", 7),
    );
    let r7b = roundtrip(
        &mut connect(server.local_addr()),
        &job(JobOp::Faultsim, "fsim", &source, "full", 7),
    );
    assert_eq!(r7a, r7b, "equal seeds reproduce the fault campaign");
    let v = parse_json(std::str::from_utf8(&r7a).unwrap()).unwrap();
    assert_eq!(v.get("seed").and_then(|s| s.as_f64()), Some(7.0));

    server.shutdown();
    server.join();
}

#[test]
fn malformed_frames_get_typed_errors_and_never_kill_the_daemon() {
    let server = start_uncached(ServeConfig::default());
    let addr = server.local_addr();

    // Malformed JSON payload: typed bad_json error, connection stays up.
    let mut c = connect(addr);
    write_frame(&mut c, b"this is not json").unwrap();
    let resp = read_frame(&mut c).unwrap().expect("error response");
    let v = parse_json(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("bad_json")
    );
    // Same connection still serves valid requests afterwards.
    let pong = roundtrip(&mut c, &Request::Ping);
    assert!(String::from_utf8_lossy(&pong).contains("pong"));

    // Valid JSON, invalid request: bad_request.
    write_frame(&mut c, br#"{"op":"transmogrify"}"#).unwrap();
    let resp = read_frame(&mut c).unwrap().expect("error response");
    assert!(String::from_utf8_lossy(&resp).contains("\"kind\":\"bad_request\""));

    // Unknown scheme on a job: unknown_scheme.
    let resp = roundtrip(
        &mut c,
        &job(JobOp::Encode, "x", "fn main() { print(1); }", "nope", 0),
    );
    assert!(String::from_utf8_lossy(&resp).contains("\"kind\":\"unknown_scheme\""));

    // Uncompilable source: typed compile_error, not a crash.
    let resp = roundtrip(&mut c, &job(JobOp::Compile, "x", "fn fn fn", "full", 0));
    assert!(String::from_utf8_lossy(&resp).contains("\"kind\":\"compile_error\""));

    // Oversized frame: typed error, then the server closes that
    // connection (it cannot resync past an unread payload).
    use std::io::Write as _;
    let mut over = connect(addr);
    over.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes())
        .unwrap();
    let resp = read_frame(&mut over).unwrap().expect("oversized error");
    assert!(String::from_utf8_lossy(&resp).contains("\"kind\":\"oversized\""));

    // Truncated frame (client vanishes mid-payload): daemon survives.
    let mut trunc = connect(addr);
    trunc.write_all(&[0, 0, 0, 50, 1, 2, 3]).unwrap();
    drop(trunc);

    // After all that abuse a fresh connection still works.
    let pong = roundtrip(&mut connect(addr), &Request::Ping);
    assert!(String::from_utf8_lossy(&pong).contains("pong"));

    server.shutdown();
    server.join();
}

// ---------------------------------------------------------------------------
// Wire-protocol property tests (satellite 4): no payload may panic the
// parser, every rejection is a typed error whose body is itself valid
// JSON, and valid frames round-trip byte-exactly.
// ---------------------------------------------------------------------------

mod proto_props {
    use proptest::prelude::*;
    use std::io::Cursor;
    use tepic_ccc::bench::serve::proto::{
        read_frame, write_frame, FrameError, JobOp, JobRequest, Request, MAX_FRAME,
    };
    use tepic_ccc::telemetry::parse_json;

    fn ident() -> BoxedStrategy<String> {
        let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789_-./ \"\\{}"
            .chars()
            .collect();
        prop::collection::vec(prop::sample::select(alphabet), 1..24usize)
            .prop_map(|cs| cs.into_iter().collect())
            .boxed()
    }

    fn job_request() -> BoxedStrategy<Request> {
        (
            prop::sample::select(vec![
                JobOp::Compile,
                JobOp::Encode,
                JobOp::Simulate,
                JobOp::Faultsim,
            ]),
            ident(),
            ident(),
            0u64..1_000_000,
            ident(),
        )
            .prop_map(|(op, name, scheme, seed, source)| {
                Request::Job(JobRequest {
                    op,
                    name,
                    scheme,
                    seed,
                    source,
                })
            })
            .boxed()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary bytes never panic the parser; when they are
        /// rejected, the typed error body is itself well-formed JSON
        /// with a machine-readable kind.
        #[test]
        fn arbitrary_payloads_never_panic(payload in prop::collection::vec(any::<u8>(), 0..256usize)) {
            if let Err(e) = Request::parse(&payload) {
                let v = parse_json(&e.body()).expect("error body is valid JSON");
                let kind = v.get("error").and_then(|e| e.get("kind")).and_then(|k| k.as_str());
                prop_assert!(kind.is_some(), "typed kind present");
            }
        }

        /// A canonically-rendered job request parses back to exactly
        /// the request that produced it, hostile field contents (JSON
        /// metacharacters, backslashes) included.
        #[test]
        fn canonical_job_requests_round_trip(req in job_request()) {
            let rendered = req.canonical();
            let back = Request::parse(rendered.as_bytes())
                .expect("canonical form must parse");
            prop_assert_eq!(&back, &req);
            // Canonical rendering is a fixpoint: render(parse(render(r)))
            // is byte-identical, which is what single-flight keying and
            // the byte-identity acceptance check lean on.
            prop_assert_eq!(back.canonical(), rendered);
        }

        /// Any sequence of frames written back-to-back on one stream is
        /// read back in order, byte-exactly, with a clean EOF after.
        #[test]
        fn frame_streams_round_trip(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128usize), 0..8usize)
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                write_frame(&mut wire, p).unwrap();
            }
            let mut r = Cursor::new(wire);
            for p in &payloads {
                let got = read_frame(&mut r).expect("frame reads").expect("frame present");
                prop_assert_eq!(&got, p);
            }
            prop_assert!(read_frame(&mut r).expect("clean eof").is_none());
        }

        /// Truncating a valid frame stream at any byte yields clean EOF
        /// (cut on a frame boundary) or a typed Truncated error — never
        /// a panic, never a phantom frame beyond the cut.
        #[test]
        fn truncated_streams_fail_typed(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64usize), 1..5usize),
            cut_seed in any::<u64>()
        ) {
            let mut wire = Vec::new();
            for p in &payloads {
                write_frame(&mut wire, p).unwrap();
            }
            let cut = (cut_seed % (wire.len() as u64 + 1)) as usize;
            let mut r = Cursor::new(&wire[..cut]);
            let mut seen = 0usize;
            loop {
                match read_frame(&mut r) {
                    Ok(Some(p)) => {
                        prop_assert_eq!(&p, &payloads[seen]);
                        seen += 1;
                    }
                    Ok(None) => break, // clean EOF on a frame boundary
                    Err(FrameError::Truncated) => break,
                    Err(e) => prop_assert!(false, "unexpected error: {e:?}"),
                }
            }
            prop_assert!(seen <= payloads.len());
        }

        /// Oversized length prefixes are rejected before any allocation
        /// of the advertised size.
        #[test]
        fn oversized_prefixes_rejected(extra in 1u64..1_000_000) {
            let len = (MAX_FRAME as u64 + extra).min(u32::MAX as u64) as u32;
            let mut wire = len.to_be_bytes().to_vec();
            wire.extend_from_slice(&[0u8; 16]);
            match read_frame(&mut Cursor::new(wire)) {
                Err(FrameError::Oversized(n)) => prop_assert!(n > MAX_FRAME),
                other => prop_assert!(false, "expected Oversized, got {other:?}"),
            }
        }
    }
}
