//! Differential tests over the artifact cache: a warm run must serve
//! byte-identical artifacts for every workload × scheme pair, and a
//! damaged entry must be detected and rebuilt — never served.

use std::path::PathBuf;
use tepic_ccc::bench::engine::{Engine, MATRIX_SCHEMES};
use tepic_ccc::isa::program_to_bytes;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tepic-engine-cache-{tag}-{}", std::process::id()))
}

#[test]
fn warm_artifacts_are_byte_identical_for_every_pair() {
    let dir = scratch("differential");
    let _ = std::fs::remove_dir_all(&dir);

    let cold = Engine::with_cache_dir(4, &dir).unwrap();
    let a = cold.prepare_all().expect("cold prepare");
    let cold_snap = cold.snapshot();
    assert_eq!(cold_snap.hits(), 0, "first run cannot hit");
    assert_eq!(
        cold_snap.image_misses,
        (a.len() * MATRIX_SCHEMES.len()) as u64,
        "one image build per workload x scheme"
    );

    let warm = Engine::with_cache_dir(4, &dir).unwrap();
    let b = warm.prepare_all().expect("warm prepare");
    let warm_snap = warm.snapshot();
    assert_eq!(warm_snap.misses(), 0, "warm run must rebuild nothing");
    assert_eq!(
        warm_snap.image_hits,
        (b.len() * MATRIX_SCHEMES.len()) as u64
    );

    assert_eq!(a.len(), b.len());
    for (pa, pb) in a.iter().zip(&b) {
        let name = pa.workload.name;
        assert_eq!(
            program_to_bytes(&pa.program),
            program_to_bytes(&pb.program),
            "{name}: program artifact differs cold vs warm"
        );
        assert_eq!(
            pa.trace.to_wire_bytes(),
            pb.trace.to_wire_bytes(),
            "{name}: trace artifact differs cold vs warm"
        );
        for scheme in MATRIX_SCHEMES.iter().chain(&["base"]) {
            let ia = pa.image(scheme).expect("scheme image");
            let ib = pb.image(scheme).expect("scheme image");
            assert_eq!(
                tepic_ccc::ccc::encoded_to_bytes(ia),
                tepic_ccc::ccc::encoded_to_bytes(ib),
                "{name}/{scheme}: image artifact differs cold vs warm"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_entries_are_rebuilt_not_served() {
    let dir = scratch("corruption");
    let _ = std::fs::remove_dir_all(&dir);

    let cold = Engine::with_cache_dir(2, &dir).unwrap();
    let reference = cold.prepare_all().expect("cold prepare");

    // Damage every image entry a different way: truncation, payload
    // bit-flip, garbage header.
    let mut damaged = 0usize;
    for (i, entry) in std::fs::read_dir(&dir).unwrap().enumerate() {
        let path = entry.unwrap().path();
        if !path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("image-")
        {
            continue;
        }
        let mut raw = std::fs::read(&path).unwrap();
        match i % 3 {
            0 => raw.truncate(raw.len() / 2),
            1 => {
                let last = raw.len() - 1;
                raw[last] ^= 0x40;
            }
            _ => raw[..4].copy_from_slice(b"JUNK"),
        }
        std::fs::write(&path, &raw).unwrap();
        damaged += 1;
    }
    assert_eq!(
        damaged,
        reference.len() * MATRIX_SCHEMES.len(),
        "expected one image entry per workload x scheme"
    );

    let recovering = Engine::with_cache_dir(2, &dir).unwrap();
    let rebuilt = recovering.prepare_all().expect("recovery prepare");
    let snap = recovering.snapshot();
    assert_eq!(
        snap.corrupt_entries, damaged as u64,
        "every damaged entry must be flagged"
    );
    assert_eq!(
        snap.image_misses, damaged as u64,
        "every damaged entry must be rebuilt"
    );
    assert_eq!(snap.image_hits, 0, "no damaged entry may be served");
    // Programs and traces were untouched and still hit.
    assert_eq!(snap.program_hits, reference.len() as u64);
    assert_eq!(snap.trace_hits, reference.len() as u64);

    for (pa, pb) in reference.iter().zip(&rebuilt) {
        for ((na, ia), (_, ib)) in pa.images().zip(pb.images()) {
            assert_eq!(ia, ib, "{}/{na}: rebuilt image differs", pa.workload.name);
        }
    }

    // The rebuild overwrote the damaged files: a third run is fully warm.
    let warm = Engine::with_cache_dir(2, &dir).unwrap();
    warm.prepare_all().expect("warm prepare");
    assert_eq!(warm.snapshot().misses(), 0);
    assert_eq!(warm.snapshot().corrupt_entries, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
