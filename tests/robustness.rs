//! Self-healing integration tests (DESIGN.md §13): corrupt cache
//! entries are quarantined — never served, never silently deleted —
//! and the engine's recovery machinery is *invisible*: under any seeded
//! failpoint schedule the prepared artifacts, fetch results and decoded
//! streams come out bit-identical to a fault-free run, while every
//! injected fault reconciles against exactly one recovery action.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock};
use tepic_ccc::bench::engine::{Engine, RecoverySnapshot, MATRIX_SCHEMES};
use tepic_ccc::ccc::failpoint::{sites, FailMode, Failpoints};
use tepic_ccc::ccc::{encoded_to_bytes, RetryPolicy};
use tepic_ccc::isa::program_to_bytes;
use tepic_ccc::prelude::*;
use tepic_ccc::telemetry::FakeClock;
use tepic_ccc::workloads::Workload;

const LOOPY: &Workload = &Workload::custom(
    "rob-loop",
    "hot squaring loop",
    "fn main() { var i; var s = 0; for (i = 0; i < 60; i = i + 1) { s = s + i * i; } print(s); }",
);
const BRANCHY: &Workload = &Workload::custom(
    "rob-branchy",
    "data-dependent branches",
    "fn main() { var i; for (i = 0; i < 50; i = i + 1) { if (i - i / 3 * 3 == 0) { print(i); } } }",
);

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tepic-robustness-{tag}-{}", std::process::id()))
}

/// Installs (once, process-wide) a panic hook that silences injected
/// `pool.job` panics — the isolated pool catches them, so their default
/// backtraces are pure noise — while real panics keep reporting.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.contains("injected failpoint")) {
                return;
            }
            default_hook(info);
        }));
    });
}

/// The byte-level fingerprint of one prepared workload: program image,
/// block trace, every matrix-scheme encoding, and the fetch simulator's
/// verdict on the fully-compressed image.
type Fingerprint = (Vec<u8>, Vec<u8>, Vec<Vec<u8>>, FetchResult);

fn fingerprints(prepared: &[tepic_ccc::bench::Prepared]) -> Vec<Fingerprint> {
    prepared
        .iter()
        .map(|p| {
            let images = MATRIX_SCHEMES
                .iter()
                .map(|s| encoded_to_bytes(p.image(s).expect("matrix scheme")))
                .collect();
            let fetch = simulate(
                &p.program,
                &p.compressed_img,
                &p.trace,
                &FetchConfig::compressed(),
            );
            (
                program_to_bytes(&p.program),
                p.trace.to_wire_bytes(),
                images,
                fetch,
            )
        })
        .collect()
}

/// The fault-free reference: prepared once, shared by every case.
fn clean_baseline() -> &'static Vec<Fingerprint> {
    static BASE: OnceLock<Vec<Fingerprint>> = OnceLock::new();
    BASE.get_or_init(|| {
        let engine = Engine::uncached(2);
        fingerprints(&engine.prepare(&[LOOPY, BRANCHY]).expect("clean prepare"))
    })
}

#[test]
fn corrupt_entry_is_quarantined_under_its_original_key() {
    let dir = scratch("quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    let cold = Engine::with_cache_dir(2, &dir).unwrap();
    cold.prepare(&[LOOPY]).unwrap();

    // Damage one stored trace entry without refreshing its CRC.
    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("trace-"))
        .expect("a trace entry exists");
    let name = entry.file_name();
    let mut raw = std::fs::read(entry.path()).unwrap();
    let last = raw.len() - 1;
    raw[last] ^= 0xff;
    std::fs::write(entry.path(), &raw).unwrap();

    let warm = Engine::with_cache_dir(2, &dir).unwrap();
    let healed = warm.prepare(&[LOOPY]).unwrap();

    // The rebuild healed the cache and the damaged bytes moved — intact,
    // under their original key — into the quarantine directory.
    assert_eq!(&fingerprints(&healed)[..], &clean_baseline()[..1]);
    let qpath = dir.join("quarantine").join(&name);
    assert_eq!(
        std::fs::read(&qpath).expect("quarantined entry exists"),
        raw,
        "quarantine must preserve the damaged bytes for post-mortem"
    );
    let rec = warm.recovery();
    assert_eq!(rec.quarantined, 1);
    let registry = MetricsRegistry::new();
    rec.record_metrics(&registry);
    assert_eq!(registry.counter("cache.quarantined").get(), 1);

    // A fresh, valid entry replaced the quarantined one.
    let again = Engine::with_cache_dir(2, &dir).unwrap();
    again.prepare(&[LOOPY]).unwrap();
    assert_eq!(again.snapshot().misses(), 0, "cache healed after rebuild");
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole guarantee, stated as a property: for ANY seed and
    /// ANY mix of injected cache I/O errors, cache corruption, job
    /// panics and flaky stages, a cold run and a warm run both produce
    /// artifacts bit-identical to the fault-free baseline, and the
    /// recovery counters reconcile one-for-one with the injection log.
    #[test]
    fn recovery_is_invisible_under_any_fault_schedule(
        seed in any::<u64>(),
        // Fire probabilities in permille (the proptest shim has no f64
        // range strategy); panics are capped low — see the retry note.
        read_pm in 0u32..800,
        corrupt_pm in 0u32..500,
        write_pm in 0u32..800,
        panic_pm in 0u32..350,
        stage_pm in 0u32..800,
    ) {
        let [p_read, p_corrupt, p_write, p_panic, p_stage] =
            [read_pm, corrupt_pm, write_pm, panic_pm, stage_pm].map(|pm| f64::from(pm) / 1000.0);
        quiet_injected_panics();
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = scratch(&format!("prop-{}", CASE.fetch_add(1, Ordering::Relaxed)));
        let _ = std::fs::remove_dir_all(&dir);

        let spec = format!(
            "cache.read:{p_read}:io,cache.read:{p_corrupt}:corrupt,\
             cache.write:{p_write}:io,cache.rename:{p_write}:io,\
             pool.job:{p_panic}:panic,stage.compile:{p_stage}:flaky,\
             stage.emulate:{p_stage}:flaky,stage.encode:{p_stage}:flaky",
        );
        let fp = Arc::new(Failpoints::from_spec(&spec, seed).unwrap());
        // Deep retry budget: at the capped panic rate the odds of a job
        // exhausting 12 attempts are ~3e-6 per job, so the suite stays
        // deterministic-in-practice while still exercising retries.
        let retry = RetryPolicy { max_attempts: 12, ..RetryPolicy::default() };
        let clock = Arc::new(FakeClock::with_step(0));
        let engine = |dir: &PathBuf| {
            Engine::with_cache_dir(2, dir)
                .unwrap()
                .with_clock(clock.clone())
                .with_sleeper(clock.clone())
                .with_retry(retry)
                .with_failpoints(Arc::clone(&fp))
        };

        let cold = engine(&dir);
        let a = cold.prepare(&[LOOPY, BRANCHY]).expect("cold prepare heals");
        prop_assert_eq!(&fingerprints(&a), clean_baseline());
        let warm = engine(&dir);
        let b = warm.prepare(&[LOOPY, BRANCHY]).expect("warm prepare heals");
        prop_assert_eq!(&fingerprints(&b), clean_baseline());

        // Reconciliation: injected == recovered, class by class.
        let recs = [cold.recovery(), warm.recovery()];
        let rsum = |f: fn(&RecoverySnapshot) -> u64| recs.iter().map(f).sum::<u64>();
        prop_assert_eq!(fp.fired(sites::CACHE_READ, FailMode::Io), rsum(|r| r.cache_read_faults));
        prop_assert_eq!(fp.fired(sites::CACHE_READ, FailMode::Corrupt), rsum(|r| r.quarantined));
        prop_assert_eq!(
            fp.fired(sites::CACHE_WRITE, FailMode::Io) + fp.fired(sites::CACHE_RENAME, FailMode::Io),
            rsum(|r| r.cache_write_faults)
        );
        prop_assert_eq!(fp.fired(sites::POOL_JOB, FailMode::Panic), rsum(|r| r.job_panics));
        let stage_fired: u64 = [sites::STAGE_COMPILE, sites::STAGE_EMULATE, sites::STAGE_ENCODE]
            .iter()
            .map(|s| fp.fired(s, FailMode::Flaky))
            .sum();
        prop_assert_eq!(stage_fired, rsum(|r| r.stage_faults));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LUT-decoder graceful degradation: whatever fraction of block
    /// decodes an injected schedule fails, the one-shot fallback to the
    /// bit-serial reference decoder keeps the fetch simulation
    /// bit-identical, error-free, and fully accounted.
    #[test]
    fn decode_fault_schedule_never_changes_fetch_result(
        seed in any::<u64>(),
        prob_pm in 0u32..=1000,
    ) {
        let prob = f64::from(prob_pm) / 1000.0;
        static CLEAN: OnceLock<(Program, tepic_ccc::yula::BlockTrace, FetchResult)> = OnceLock::new();
        let (program, trace, clean) = CLEAN.get_or_init(|| {
            let program = lego::compile(LOOPY.source(), &lego::Options::default()).unwrap();
            let run = Emulator::new(&program).run(&Limits::default()).unwrap();
            let out = schemes::full::FullScheme::default().compress(&program).unwrap();
            let (clean, _) = simulate_decoded(
                &program,
                &out.image,
                &run.trace,
                &FetchConfig::compressed(),
                out.codec.as_ref(),
            );
            (program, run.trace, clean)
        });
        let out = schemes::full::FullScheme::default().compress(program).unwrap();
        let fp = Failpoints::from_spec(&format!("decode.lut:{prob}:error"), seed).unwrap();
        let (injected, stats) = simulate_decoded_injected(
            program,
            &out.image,
            trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
            &fp,
        );
        prop_assert_eq!(&injected, clean);
        prop_assert_eq!(stats.reference_fallbacks, fp.fired(sites::DECODE_LUT, FailMode::Error));
        prop_assert_eq!(stats.decode_errors, 0);
        if prob >= 1.0 {
            prop_assert_eq!(stats.reference_fallbacks, stats.blocks_decoded);
        }
    }
}
