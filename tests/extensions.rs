//! Integration tests over the future-work extensions: gshare prediction,
//! complex fetch units, op-pair compression and tail duplication — each
//! must preserve correctness invariants on the real workloads.

use tepic_ccc::ccc::schemes::{base::encode_base, pair::PairScheme, Scheme};
use tepic_ccc::fetch::{simulate_with_units, FetchUnits, PredictorKind};
use tepic_ccc::prelude::*;

#[test]
fn gshare_preserves_delivery_and_bounds() {
    let w = workloads::by_name("m88ksim").unwrap();
    let (p, run) = w.compile_and_run().unwrap();
    let img = encode_base(&p);
    let mut cfg = FetchConfig::base();
    cfg.predictor = PredictorKind::Gshare { history_bits: 12 };
    let g = simulate(&p, &img, &run.trace, &cfg);
    let b = simulate(&p, &img, &run.trace, &FetchConfig::base());
    assert_eq!(g.ops, b.ops, "prediction must not change delivered work");
    assert!(g.ipc() <= 6.0 + 1e-9);
    // m88ksim's guest-loop branches are history-predictable: gshare must
    // beat the 2-bit counters here.
    assert!(
        g.pred_accuracy() > b.pred_accuracy(),
        "gshare {:.3} should beat 2-bit {:.3} on m88ksim",
        g.pred_accuracy(),
        b.pred_accuracy()
    );
}

#[test]
fn complex_units_preserve_delivery_on_all_workloads() {
    for w in &workloads::ALL {
        let (p, run) = w.compile_and_run().unwrap();
        let img = encode_base(&p);
        let units = FetchUnits::form(&p, &run.trace, 0.8);
        let cfg = FetchConfig::base();
        let u = simulate_with_units(&p, &img, &run.trace, &cfg, &units);
        let b = simulate(&p, &img, &run.trace, &cfg);
        assert_eq!(u.ops, b.ops, "{}: unit fetch dropped ops", w.name);
        assert!(
            u.pred_correct + u.pred_wrong <= b.pred_correct + b.pred_wrong,
            "{}: units must not add prediction points",
            w.name
        );
    }
}

#[test]
fn pair_scheme_round_trips_all_workloads() {
    for w in &workloads::ALL {
        let p = w.compile().unwrap();
        let out = PairScheme::default().compress(&p).unwrap();
        assert!(out.image.check_layout(), "{}", w.name);
        assert!(out.verify_roundtrip(&p), "{}", w.name);
    }
}

#[test]
fn tail_duplication_preserves_behaviour_everywhere() {
    for w in &workloads::ALL {
        let plain = w.compile_and_run().unwrap().1.output;
        let duped_p = w
            .compile_with(&lego::Options {
                tail_duplicate: Some(8),
                ..lego::Options::default()
            })
            .unwrap();
        let duped = Emulator::new(&duped_p)
            .run(&Limits::default())
            .unwrap()
            .output;
        assert_eq!(
            plain, duped,
            "{}: tail duplication changed behaviour",
            w.name
        );
    }
}

#[test]
fn tail_duplication_grows_blocks_not_semantics() {
    let w = workloads::by_name("go").unwrap();
    let plain = w.compile().unwrap();
    let duped = w
        .compile_with(&lego::Options {
            tail_duplicate: Some(8),
            ..lego::Options::default()
        })
        .unwrap();
    let avg = |p: &Program| p.num_ops() as f64 / p.num_blocks() as f64;
    assert!(
        avg(&duped) > avg(&plain),
        "duplication should enlarge average blocks: {} vs {}",
        avg(&duped),
        avg(&plain)
    );
}
