//! Integration tests for the observability layer (DESIGN.md §16): the
//! CRC-framed run ledger must round-trip arbitrary records and shrug
//! off truncated or corrupted lines, and the causal span forest a real
//! engine run produces must stay well-formed — with stage-span
//! parentage intact — across the work-stealing pool hand-off.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use tepic_ccc::bench::engine::Engine;
use tepic_ccc::telemetry::ledger::{self, Fingerprint, LedgerRecord};
use tepic_ccc::telemetry::{SharedSink, SpanForest, StageRollup};

/// A fresh temp-file path per call, so proptest cases never collide.
fn scratch_path() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ccc-obs-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Metric-ish identifiers: lowercase words with separators, as real
/// counter/sample names look.
fn ident() -> impl Strategy<Value = String> {
    let charset: Vec<char> = ('a'..='z').chain(['_', '.']).collect();
    prop::collection::vec(prop::sample::select(charset), 1..12)
        .prop_map(|cs| cs.into_iter().collect())
}

/// An arbitrary ledger record. Integer payloads stay under 2^50 (the
/// JSON model carries numbers as f64) and sample values are dyadic
/// (`v / 1024`), so equality after a round-trip is exact by
/// construction, not by luck.
fn record() -> impl Strategy<Value = LedgerRecord> {
    (
        ident(),
        0u64..1 << 50,
        0u64..1 << 50,
        prop::collection::vec((ident(), 0u64..1 << 50), 0..6),
        prop::collection::vec((ident(), 0u64..1 << 50), 0..6),
        prop::collection::vec((ident(), 0u64..1 << 40, 0u64..1 << 50), 0..4),
    )
        .prop_map(|(subcommand, seed, wall_ns, counters, samples, stages)| {
            let mut rec = LedgerRecord::new(&subcommand, Fingerprint::current("prop", 11));
            rec.seed = seed;
            rec.wall_ns = wall_ns;
            for (k, v) in counters {
                rec.counters.insert(k, v);
            }
            for (k, v) in samples {
                rec.samples.insert(k, v as f64 / 1024.0);
            }
            for (k, count, total_ns) in stages {
                rec.stages.insert(k, StageRollup { count, total_ns });
            }
            rec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Appended records come back exactly, in order, CRC-validated.
    #[test]
    fn ledger_jsonl_round_trips(records in prop::collection::vec(record(), 1..5)) {
        let path = scratch_path();
        for rec in &records {
            ledger::append(&path, rec).expect("append");
        }
        let out = ledger::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(out.skipped, 0);
        prop_assert_eq!(out.records, records);
    }

    /// A crash mid-append leaves a partial final line; loading skips it
    /// (counted, not fatal) and every complete record survives.
    #[test]
    fn truncated_tail_is_skipped_not_fatal(
        records in prop::collection::vec(record(), 1..5),
        cut in 1usize..64,
    ) {
        let path = scratch_path();
        for rec in &records {
            ledger::append(&path, rec).expect("append");
        }
        let line = records[0].to_line();
        let partial = &line[..cut.min(line.len().saturating_sub(1))];
        let mut bytes = std::fs::read(&path).expect("read back");
        bytes.extend_from_slice(partial.as_bytes());
        std::fs::write(&path, &bytes).expect("rewrite");
        let out = ledger::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(out.skipped, 1);
        prop_assert_eq!(out.records, records);
    }
}

/// A flipped byte inside a framed record fails the CRC and only that
/// line is dropped — neighbors parse normally.
#[test]
fn corrupted_line_fails_crc_and_is_skipped_alone() {
    let path = scratch_path();
    let mut recs = Vec::new();
    for i in 0..3u64 {
        let mut rec = LedgerRecord::new("corrupt-test", Fingerprint::current("", 11));
        rec.seed = i;
        rec.samples.insert("wall_ns".to_string(), 100.0 + i as f64);
        ledger::append(&path, &rec).expect("append");
        recs.push(rec);
    }
    let text = std::fs::read_to_string(&path).expect("read back");
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    lines[1] = lines[1].replace("\"seed\":1", "\"seed\":7");
    std::fs::write(&path, lines.join("\n") + "\n").expect("rewrite");
    let out = ledger::load(&path).expect("load");
    std::fs::remove_file(&path).ok();
    assert_eq!(out.skipped, 1, "exactly the tampered line is dropped");
    assert_eq!(out.records, vec![recs[0].clone(), recs[2].clone()]);
}

/// A missing ledger is an empty history, not an error.
#[test]
fn missing_ledger_loads_empty() {
    let out = ledger::load(&scratch_path()).expect("load of absent file");
    assert!(out.records.is_empty());
    assert_eq!(out.skipped, 0);
}

/// The pool hand-off test: a real cold pipeline at `--jobs 8` must
/// yield a well-formed span forest in which every stage span kept its
/// workload parent across the thread hop, and whose per-stage rollups
/// reconcile *exactly* with the engine's own stage timers.
#[test]
fn span_forest_survives_pool_handoff_at_jobs_8() {
    let sink = SharedSink::new(1 << 16);
    let engine = Engine::uncached(8).with_trace_sink(sink.clone());
    let prepared = engine.prepare_all().expect("pipeline prepares");
    let reports = engine.reports(&prepared);
    std::hint::black_box(&reports);
    assert_eq!(sink.dropped(), 0, "ring large enough for a full run");

    let events = sink.drain();
    let forest = SpanForest::build(&events).expect("span forest is well-formed");
    assert!(!forest.is_empty(), "a cold run records spans");

    let node = |id: u64| forest.nodes().iter().find(|n| n.id == id);
    let mut stage_spans = 0;
    for n in forest.nodes() {
        if matches!(n.name, "compile" | "emulate" | "encode") {
            stage_spans += 1;
            let parent = node(n.parent).unwrap_or_else(|| {
                panic!(
                    "{} {} lost its parent in the pool hand-off",
                    n.name, n.detail
                )
            });
            assert_eq!(
                parent.name, "workload",
                "{} {} reparented to {} {}",
                n.name, n.detail, parent.name, parent.detail
            );
        }
        if n.name == "report" {
            assert_ne!(n.parent, 0, "report {} became a root", n.detail);
        }
    }
    assert!(stage_spans > 0, "no stage spans recorded");

    let snap = engine.snapshot();
    let roll = forest.stage_rollup();
    let total = |stage: &str| roll.get(stage).map(|r| r.total_ns).unwrap_or(0);
    assert_eq!(total("compile"), snap.compile_ns, "compile rollup drifted");
    assert_eq!(total("emulate"), snap.emulate_ns, "emulate rollup drifted");
    assert_eq!(total("encode"), snap.encode_ns, "encode rollup drifted");
    assert_eq!(total("report"), snap.report_ns, "report rollup drifted");
}
