//! Integration tests for the unified telemetry layer (DESIGN.md §12):
//! tracing must observe without steering (traced runs bit-identical to
//! untraced ones for every encoding class), histogram accounting must
//! conserve samples, and the Chrome-trace exporter must emit JSON that
//! round-trips through the in-crate parser with its event totals intact.

use proptest::prelude::*;
use tepic_ccc::prelude::*;
use tepic_ccc::telemetry::{
    chrome_trace_json, parse_json, EventCounts, FetchEventKind, JsonValue, NoopSink, TraceEvent,
    TraceMeta,
};

fn program_and_trace() -> (Program, yula::BlockTrace) {
    let program = lego::compile(
        "fn main() { var i; var s = 0; \
         for (i = 0; i < 120; i = i + 1) { \
         if (i < 60) { s = s + i; } else { s = s - 1; } } print(s); }",
        &lego::Options::default(),
    )
    .expect("test program compiles");
    let run = Emulator::new(&program)
        .run(&Limits::default())
        .expect("test program runs");
    (program, run.trace)
}

/// The tentpole invariant: with tracing attached, the `FetchResult` is
/// byte-identical across all four encoding classes, and the recorded
/// event totals reconcile with the result's own counters.
#[test]
fn traced_fetch_is_bit_identical_for_every_class() {
    let (program, trace) = program_and_trace();
    let base_img = schemes::base::encode_base(&program);
    let tailored = schemes::tailored::TailoredScheme
        .compress(&program)
        .expect("tailored compresses");
    let full = schemes::full::FullScheme::default()
        .compress(&program)
        .expect("full compresses");
    for (name, img, cfg) in [
        ("ideal", &base_img, FetchConfig::ideal()),
        ("base", &base_img, FetchConfig::base()),
        ("tailored", &tailored.image, FetchConfig::tailored()),
        ("compressed", &full.image, FetchConfig::compressed()),
    ] {
        let plain = simulate(&program, img, &trace, &cfg);
        let mut ring = RingSink::new(1 << 20);
        let traced = simulate_traced(&program, img, &trace, &cfg, &mut ring);
        assert_eq!(plain, traced, "{name}: tracing changed the result");
        let mut noop = NoopSink;
        let nooped = simulate_traced(&program, img, &trace, &cfg, &mut noop);
        assert_eq!(plain, nooped, "{name}: noop sink changed the result");

        let c = ring.counts();
        assert_eq!(ring.dropped(), 0, "{name}: ring dropped events");
        assert_eq!(c.cache_hits, plain.cache_hits, "{name}: cache hits");
        assert_eq!(c.cache_misses, plain.cache_misses, "{name}: cache misses");
        assert_eq!(c.atb_hits, plain.atb_hits, "{name}: atb hits");
        assert_eq!(c.atb_misses, plain.atb_misses, "{name}: atb misses");
        assert_eq!(c.pred_correct, plain.pred_correct, "{name}: pred correct");
        assert_eq!(c.pred_wrong, plain.pred_wrong, "{name}: pred wrong");
        assert_eq!(c.buffer_hits, plain.buffer_hits, "{name}: buffer hits");
        assert_eq!(
            c.buffer_misses, plain.buffer_misses,
            "{name}: buffer misses"
        );
        assert_eq!(
            c.integrity_faults, plain.integrity_faults,
            "{name}: integrity faults"
        );
        if name == "ideal" {
            assert_eq!(c.total(), 0, "ideal touches no fetch structures");
        } else {
            assert!(c.total() > 0, "{name}: no events traced");
        }
    }
}

/// The decoded variant: both the result and the decode statistics are
/// identical to the untraced run, and every L0 fill produced exactly
/// one decode-stall event.
#[test]
fn traced_decoded_run_matches_untraced() {
    let (program, trace) = program_and_trace();
    let out = schemes::full::FullScheme::default()
        .compress(&program)
        .expect("full compresses");
    let cfg = FetchConfig::compressed();
    let (r0, s0) = simulate_decoded(&program, &out.image, &trace, &cfg, out.codec.as_ref());
    let mut ring = RingSink::new(1 << 20);
    let (r1, s1) = simulate_decoded_traced(
        &program,
        &out.image,
        &trace,
        &cfg,
        out.codec.as_ref(),
        &mut ring,
    );
    assert_eq!(r0, r1, "tracing changed the fetch result");
    assert_eq!(s0, s1, "tracing changed the decode stats");
    assert!(s0.stall_bits > 0, "real decodes consume codeword bits");
    assert_eq!(s0.decode_errors, 0, "clean image decodes cleanly");
    assert_eq!(
        ring.counts().decode_stalls,
        r0.buffer_misses,
        "one decode-stall event per L0 fill"
    );
}

fn fetch_kind() -> impl Strategy<Value = FetchEventKind> {
    prop_oneof![
        (0u8..2).prop_map(|bank| FetchEventKind::CacheHit { bank }),
        (0u8..2, 1u32..8).prop_map(|(bank, lines)| FetchEventKind::CacheMiss { bank, lines }),
        prop::sample::select(vec![
            FetchEventKind::AtbHit,
            FetchEventKind::PredCorrect,
            FetchEventKind::PredWrong,
            FetchEventKind::L0Hit,
            FetchEventKind::IntegrityFault,
        ]),
        (0u32..100).prop_map(|penalty| FetchEventKind::AtbMiss { penalty }),
        (1u32..64).prop_map(|ops| FetchEventKind::L0Fill { ops }),
        (1u32..500).prop_map(|cycles| FetchEventKind::DecodeStall { cycles }),
    ]
}

/// A detail string over printable ASCII — quotes, backslashes and
/// control-adjacent punctuation included, so escaping gets exercised.
fn detail_string() -> impl Strategy<Value = String> {
    let charset: Vec<char> = (' '..='~').collect();
    prop::collection::vec(prop::sample::select(charset), 0..24)
        .prop_map(|cs| cs.into_iter().collect())
}

fn trace_event() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (0u64..1 << 50, 0u64..1 << 50, any::<u32>(), fetch_kind()).prop_map(
            |(seq, cycle, block, kind)| TraceEvent::Fetch {
                seq,
                cycle,
                block,
                kind
            }
        ),
        (
            detail_string(),
            1u64..1 << 20,
            0u64..1 << 20,
            0u64..1 << 50,
            0u64..1_000_000u64
        )
            .prop_map(|(detail, id, parent, start_ns, dur_ns)| TraceEvent::Span {
                name: "compile",
                detail,
                id,
                parent,
                start_ns,
                dur_ns
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram accounting conserves samples: the bucket counts always
    /// sum to the total observation count, whatever the bounds.
    #[test]
    fn histogram_bucket_counts_sum_to_total(
        bounds in prop::collection::vec(0u64..1000, 1..8),
        samples in prop::collection::vec(0u64..2000, 0..200),
    ) {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("stall_cycles", &bounds);
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    /// The Chrome trace-event exporter emits JSON that the in-crate
    /// parser accepts, with one entry per event, names matching the
    /// event kinds, details surviving escaping, and the metadata totals
    /// equal to an independent fold of the events.
    #[test]
    fn chrome_trace_json_round_trips(events in prop::collection::vec(trace_event(), 0..40)) {
        let mut counts = EventCounts::default();
        for e in &events {
            counts.add(e);
        }
        let meta = TraceMeta {
            workload: "prop".to_string(),
            scheme: "full".to_string(),
            counts,
            dropped: 0,
        };
        let json = chrome_trace_json(&events, &meta);
        let v = parse_json(&json).expect("exporter emits well-formed JSON");
        let arr = v
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        prop_assert_eq!(arr.len(), events.len());
        for (parsed, original) in arr.iter().zip(&events) {
            let name = parsed.get("name").and_then(JsonValue::as_str);
            let ph = parsed.get("ph").and_then(JsonValue::as_str);
            match original {
                TraceEvent::Fetch { seq, cycle, kind, .. } => {
                    prop_assert_eq!(ph, Some("i"));
                    prop_assert_eq!(name, Some(kind.name()));
                    prop_assert_eq!(
                        parsed.get("ts").and_then(JsonValue::as_f64),
                        Some(*cycle as f64)
                    );
                    let args = parsed.get("args").expect("fetch args");
                    prop_assert_eq!(
                        args.get("seq").and_then(JsonValue::as_f64),
                        Some(*seq as f64)
                    );
                }
                TraceEvent::Span { name: sname, detail, .. } => {
                    prop_assert_eq!(ph, Some("X"));
                    prop_assert_eq!(name, Some(*sname));
                    let args = parsed.get("args").expect("span args");
                    prop_assert_eq!(
                        args.get("detail").and_then(JsonValue::as_str),
                        Some(detail.as_str())
                    );
                }
            }
        }
        let parsed_counts = v
            .get("metadata")
            .and_then(|m| m.get("counts"))
            .expect("metadata counts");
        let num = |k: &str| parsed_counts.get(k).and_then(JsonValue::as_f64).unwrap_or(-1.0);
        prop_assert_eq!(num("cache_hit"), counts.cache_hits as f64);
        prop_assert_eq!(num("cache_miss"), counts.cache_misses as f64);
        prop_assert_eq!(num("atb_hit"), counts.atb_hits as f64);
        prop_assert_eq!(num("atb_miss"), counts.atb_misses as f64);
        prop_assert_eq!(num("pred_correct"), counts.pred_correct as f64);
        prop_assert_eq!(num("pred_wrong"), counts.pred_wrong as f64);
        prop_assert_eq!(num("l0_hit"), counts.buffer_hits as f64);
        prop_assert_eq!(num("l0_fill"), counts.buffer_misses as f64);
        prop_assert_eq!(num("decode_stall"), counts.decode_stalls as f64);
        prop_assert_eq!(num("integrity_fault"), counts.integrity_faults as f64);
        prop_assert_eq!(num("spans"), counts.spans as f64);
    }
}
