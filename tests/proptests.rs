//! Property-based tests over the core invariants: ISA encode/decode,
//! Huffman coding, every compression scheme's losslessness on arbitrary
//! op sequences, and compiler semantics against a host-side evaluator.

use proptest::prelude::*;
use tepic_ccc::ccc::schemes::standard_schemes;
use tepic_ccc::huffman::{BitReader, BitWriter, CodeBook};
use tepic_ccc::isa::op::{
    Cond, FloatOpcode, IntOpcode, MemWidth, OpKind, Operation, SysCode, IMM_MAX, IMM_MIN,
};
use tepic_ccc::isa::regs::{Fpr, Gpr, Pr};
use tepic_ccc::isa::{BlockInfo, FuncInfo, Program};
use tepic_ccc::prelude::*;

fn gpr() -> impl Strategy<Value = Gpr> {
    (0u8..32).prop_map(Gpr::new)
}

fn fpr() -> impl Strategy<Value = Fpr> {
    (0u8..32).prop_map(Fpr::new)
}

fn pr() -> impl Strategy<Value = Pr> {
    (0u8..32).prop_map(Pr::new)
}

fn cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn mem_width() -> impl Strategy<Value = MemWidth> {
    prop::sample::select(vec![
        MemWidth::Byte,
        MemWidth::Half,
        MemWidth::Word,
        MemWidth::Double,
    ])
}

/// Any non-control operation kind (the block body alphabet).
fn body_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        (
            prop::sample::select(IntOpcode::ALL.to_vec()),
            gpr(),
            gpr(),
            gpr()
        )
            .prop_map(|(op, src1, src2, dest)| OpKind::IntAlu {
                op,
                src1,
                src2,
                dest
            }),
        (cond(), gpr(), gpr(), pr()).prop_map(|(cond, src1, src2, dest)| OpKind::IntCmp {
            cond,
            src1,
            src2,
            dest
        }),
        (cond(), fpr(), fpr(), pr()).prop_map(|(cond, src1, src2, dest)| OpKind::FloatCmp {
            cond,
            src1,
            src2,
            dest
        }),
        (any::<bool>(), IMM_MIN..=IMM_MAX, gpr()).prop_map(|(high, imm, dest)| OpKind::LoadImm {
            high,
            imm,
            dest
        }),
        (
            prop::sample::select(FloatOpcode::ALL.to_vec()),
            fpr(),
            fpr(),
            fpr()
        )
            .prop_map(|(op, src1, src2, dest)| OpKind::Float {
                op,
                src1,
                src2,
                dest
            }),
        (gpr(), fpr()).prop_map(|(src, dest)| OpKind::CvtIf { src, dest }),
        (fpr(), gpr()).prop_map(|(src, dest)| OpKind::CvtFi { src, dest }),
        (mem_width(), gpr(), 0u8..32, gpr()).prop_map(|(width, base, lat, dest)| OpKind::Load {
            width,
            base,
            lat,
            dest
        }),
        (mem_width(), gpr(), gpr()).prop_map(|(width, base, value)| OpKind::Store {
            width,
            base,
            value
        }),
        (gpr(), 0u8..32, fpr()).prop_map(|(base, lat, dest)| OpKind::FLoad { base, lat, dest }),
        (gpr(), fpr()).prop_map(|(base, value)| OpKind::FStore { base, value }),
        (
            prop::sample::select(vec![SysCode::PrintInt, SysCode::PrintChar]),
            gpr()
        )
            .prop_map(|(code, arg)| OpKind::Sys { code, arg }),
    ]
}

fn operation() -> impl Strategy<Value = Operation> {
    (any::<bool>(), any::<bool>(), pr(), body_kind()).prop_map(|(tail, spec, pred, kind)| {
        Operation {
            tail,
            spec,
            pred,
            kind,
        }
    })
}

/// A structurally valid single-function program: blocks of single-op
/// MOPs ending in a Halt.
fn small_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(body_kind(), 1..6), 1..12).prop_map(|blocks| {
        let mut ops = Vec::new();
        let mut infos = Vec::new();
        let nblocks = blocks.len();
        for (bi, kinds) in blocks.into_iter().enumerate() {
            let first_op = ops.len();
            let n = kinds.len();
            for kind in kinds {
                ops.push(Operation {
                    tail: true,
                    spec: false,
                    pred: Pr::P0,
                    kind,
                });
            }
            // Last block ends in Halt; others fall through or branch to a
            // valid target (block index mod nblocks).
            if bi + 1 == nblocks {
                ops.push(Operation {
                    tail: true,
                    spec: false,
                    pred: Pr::P0,
                    kind: OpKind::Halt,
                });
            } else {
                ops.push(Operation {
                    tail: true,
                    spec: false,
                    pred: Pr::new(1),
                    kind: OpKind::Branch {
                        target: (bi % nblocks) as u16,
                    },
                });
            }
            infos.push(BlockInfo {
                first_op,
                num_ops: n + 1,
                num_mops: n + 1,
                func: 0,
            });
        }
        Program::new(
            ops,
            infos,
            vec![FuncInfo {
                name: "main".into(),
                first_block: 0,
                num_blocks: nblocks,
            }],
            0,
            vec![],
            0x1_0000,
        )
        .expect("generated program is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every encodable operation round-trips through its 40-bit word.
    #[test]
    fn isa_encode_decode_roundtrip(op in operation()) {
        let w = op.encode();
        prop_assert!(w >> 40 == 0);
        prop_assert_eq!(Operation::decode(w).unwrap(), op);
    }

    /// Bit I/O round-trips arbitrary (value, width) sequences.
    #[test]
    fn bitio_roundtrip(chunks in prop::collection::vec((any::<u64>(), 1u32..=64), 1..50)) {
        let mut w = BitWriter::new();
        for &(v, n) in &chunks {
            w.write_bits(v & ((1u128 << n) - 1) as u64, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &chunks {
            prop_assert_eq!(r.read_bits(n), Some(v & ((1u128 << n) - 1) as u64));
        }
    }

    /// Huffman: decode(encode(m)) == m, codes are prefix-free and obey
    /// Kraft for any frequency profile.
    #[test]
    fn huffman_roundtrip_and_prefix_free(
        freqs in prop::collection::vec(0u64..1000, 2..64),
        seed in any::<u64>(),
    ) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        let book = CodeBook::from_freqs(&freqs).unwrap();
        prop_assert!(book.kraft_sum() <= 1.0 + 1e-9);
        // Prefix-freeness.
        let coded: Vec<u32> =
            (0..freqs.len() as u32).filter(|&s| book.len_of(s) > 0).collect();
        for &a in &coded {
            for &b in &coded {
                if a != b && book.len_of(a) <= book.len_of(b) {
                    let prefix = book.code_of(b) >> (book.len_of(b) - book.len_of(a));
                    prop_assert_ne!(prefix, book.code_of(a));
                }
            }
        }
        // Round-trip a pseudo-random message over the coded symbols.
        let mut x = seed | 1;
        let msg: Vec<u32> = (0..200)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                coded[(x >> 33) as usize % coded.len()]
            })
            .collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = book.decoder();
        let mut r = BitReader::new(&bytes);
        prop_assert_eq!(dec.decode_n(&mut r, msg.len()), Ok(msg));
    }

    /// Bounded Huffman: the length bound holds and total size is within
    /// [optimal, fixed-length] for any profile.
    #[test]
    fn bounded_huffman_is_sandwiched(
        freqs in prop::collection::vec(1u64..10_000, 4..40),
    ) {
        let bound = 12u8;
        let bounded = CodeBook::bounded_from_freqs(&freqs, bound).unwrap();
        prop_assert!(bounded.max_len() <= bound);
        let optimal = CodeBook::from_freqs(&freqs).unwrap();
        let fixed_bits = {
            let k = freqs.len() as u64;
            let w = 64 - (k - 1).leading_zeros() as u64;
            freqs.iter().sum::<u64>() * w
        };
        prop_assert!(bounded.total_bits(&freqs) >= optimal.total_bits(&freqs));
        prop_assert!(bounded.total_bits(&freqs) <= fixed_bits);
    }
}

/// Decodes `stream` to exhaustion with both the bit-serial reference
/// and the two-level LUT decoder, asserting identical symbols, identical
/// cursor positions after every step, and an identical terminal error
/// (same variant at the same bit position).
fn assert_lut_differential(book: &CodeBook, stream: &[u8], start: u64) {
    let reference = book.decoder();
    let lut = book.lut_decoder();
    let mut a = BitReader::at_bit(stream, start);
    let mut b = BitReader::at_bit(stream, start);
    loop {
        let x = reference.decode(&mut a);
        let y = lut.decode(&mut b);
        assert_eq!(x, y, "decoder divergence at bit {}", a.bit_pos());
        assert_eq!(a.bit_pos(), b.bit_pos(), "cursor drift");
        if x.is_err() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LUT decoder is observationally identical to the reference on
    /// valid encoded messages over arbitrary codebooks — including the
    /// final error where decoding runs into the zero padding.
    #[test]
    fn lut_matches_reference_on_valid_streams(
        freqs in prop::collection::vec(0u64..1000, 2..64),
        seed in any::<u64>(),
    ) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let coded: Vec<u32> =
            (0..freqs.len() as u32).filter(|&s| book.len_of(s) > 0).collect();
        let mut x = seed | 1;
        let mut w = BitWriter::new();
        for _ in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            book.encode_into(coded[(x >> 33) as usize % coded.len()], &mut w);
        }
        let bytes = w.into_bytes();
        assert_lut_differential(&book, &bytes, 0);
    }

    /// On arbitrary corrupted streams, from every bit offset, both
    /// decoders report the same error variant at the same bit position.
    #[test]
    fn lut_matches_reference_on_garbage(
        freqs in prop::collection::vec(0u64..1000, 2..64),
        bytes in prop::collection::vec(any::<u8>(), 0..96),
        start in 0u64..8,
    ) {
        prop_assume!(freqs.iter().any(|&f| f > 0));
        let book = CodeBook::from_freqs(&freqs).unwrap();
        assert_lut_differential(&book, &bytes, start);
    }

    /// Incomplete books (dropped codewords leave unreachable holes in
    /// the canonical code space) raise `InvalidCode`/`LengthOverflow`
    /// identically on both decoders.
    #[test]
    fn lut_matches_reference_on_incomplete_books(
        freqs in prop::collection::vec(1u64..1000, 3..48),
        drop_mask in any::<u64>(),
        bytes in prop::collection::vec(any::<u8>(), 0..96),
        start in 0u64..8,
    ) {
        let complete = CodeBook::from_freqs(&freqs).unwrap();
        // Dropping codewords only lowers the Kraft sum, so the lengths
        // stay canonically realizable (with unreachable code space).
        let lengths: Vec<u8> = (0..freqs.len() as u32)
            .map(|s| if drop_mask >> (s % 64) & 1 == 1 { 0 } else { complete.len_of(s) })
            .collect();
        let book = CodeBook::from_lengths(lengths);
        assert_lut_differential(&book, &bytes, start);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every compression scheme is lossless on arbitrary valid programs,
    /// and the tailored encoding never expands an op beyond 40 bits.
    #[test]
    fn schemes_lossless_on_arbitrary_programs(p in small_program()) {
        for scheme in standard_schemes() {
            let out = scheme.compress(&p).unwrap();
            prop_assert!(out.image.check_layout());
            prop_assert!(out.verify_roundtrip(&p), "{} failed", scheme.name());
        }
        let spec = tepic_ccc::ccc::schemes::tailored::TailoredSpec::compute(&p);
        for op in p.ops() {
            prop_assert!(spec.op_bits(op) <= 40);
        }
    }

    /// Flipping any single payload bit either raises a decoder error or
    /// corrupts only the block containing the flipped bit — the blocks
    /// are byte-aligned, independently decodable atomic fetch units, so
    /// corruption can never cascade past a block boundary.
    #[test]
    fn single_bit_flip_is_detected_or_contained(p in small_program(), pick in any::<u64>()) {
        for scheme in standard_schemes() {
            let out = scheme.compress(&p).unwrap();
            let mut bytes = out.image.bytes.clone();
            prop_assume!(!bytes.is_empty());
            let bit = pick % (bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 0x80u8 >> (bit % 8);
            let mut image = out.image.clone();
            image.bytes = bytes;
            // The faulted block: the last whose used range covers the byte.
            let byte = bit / 8;
            let faulted = (0..p.num_blocks())
                .rev()
                .find(|&b| {
                    let (s, e) = image.block_range(b);
                    s <= byte && (byte < e || b + 1 == p.num_blocks())
                })
                .unwrap_or(0);
            for b in 0..p.num_blocks() {
                match out.codec.decode_block(&image, b, p.blocks()[b].num_ops) {
                    Err(_) => {} // detected: fine anywhere
                    Ok(words) => {
                        if b != faulted {
                            let want: Vec<u64> =
                                p.block_ops(b).iter().map(|o| o.encode()).collect();
                            prop_assert_eq!(
                                words, want,
                                "{}: flip in block {} corrupted block {}",
                                scheme.name(), faulted, b
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The artifact cache's `Program` wire format is lossless: decode
    /// after encode reproduces the exact program (ops, block and
    /// function tables, data segment, entry).
    #[test]
    fn program_wire_roundtrip(p in small_program()) {
        let bytes = tepic_ccc::isa::program_to_bytes(&p);
        let back = tepic_ccc::isa::program_from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, p);
        // And the encoding itself is deterministic (cache keys assume it).
        let p2 = tepic_ccc::isa::program_from_bytes(&bytes).unwrap();
        prop_assert_eq!(tepic_ccc::isa::program_to_bytes(&p2), bytes);
    }

    /// The `BlockTrace` wire format round-trips arbitrary block-id
    /// sequences, including the empty trace.
    #[test]
    fn trace_wire_roundtrip(blocks in prop::collection::vec(any::<u32>(), 0..600)) {
        let trace: yula::BlockTrace = blocks.iter().copied().collect();
        let bytes = trace.to_wire_bytes();
        let back = yula::BlockTrace::from_wire_bytes(&bytes).unwrap();
        prop_assert_eq!(back.blocks(), trace.blocks());
        // Truncating the payload must be an error, never a silent prefix.
        if bytes.len() > 12 {
            prop_assert!(yula::BlockTrace::from_wire_bytes(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    /// The `EncodedProgram` wire format round-trips every scheme's output
    /// on arbitrary valid programs: image bytes, block offsets, decoder
    /// spec and ATT all survive encode→decode exactly.
    #[test]
    fn encoded_wire_roundtrip(p in small_program()) {
        for scheme in standard_schemes() {
            let out = scheme.compress(&p).unwrap().image;
            let bytes = tepic_ccc::ccc::encoded_to_bytes(&out);
            let back = tepic_ccc::ccc::encoded_from_bytes(&bytes).unwrap();
            prop_assert_eq!(&back, &out, "{}: wire round-trip drifted", scheme.name());
            // A decoded image is a first-class artifact: re-encoding it
            // must be byte-identical (warm cache entries are stable).
            prop_assert_eq!(
                tepic_ccc::ccc::encoded_to_bytes(&back),
                bytes,
                "{}: re-encode not canonical",
                scheme.name()
            );
        }
    }
}

/// Host-side reference evaluation with the emulator's wrapping semantics.
#[derive(Debug, Clone)]
enum Expr {
    Lit(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self) -> i32 {
        match self {
            Expr::Lit(v) => *v,
            Expr::Add(a, b) => a.eval().wrapping_add(b.eval()),
            Expr::Sub(a, b) => a.eval().wrapping_sub(b.eval()),
            Expr::Mul(a, b) => a.eval().wrapping_mul(b.eval()),
            Expr::And(a, b) => a.eval() & b.eval(),
            Expr::Or(a, b) => a.eval() | b.eval(),
            Expr::Xor(a, b) => a.eval() ^ b.eval(),
            Expr::Shl(a, b) => a.eval().wrapping_shl(b.eval() as u32 & 31),
        }
    }

    fn to_tink(&self) -> String {
        match self {
            Expr::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", (*v as i64).unsigned_abs())
                } else {
                    format!("{v}")
                }
            }
            Expr::Add(a, b) => format!("({} + {})", a.to_tink(), b.to_tink()),
            Expr::Sub(a, b) => format!("({} - {})", a.to_tink(), b.to_tink()),
            Expr::Mul(a, b) => format!("({} * {})", a.to_tink(), b.to_tink()),
            Expr::And(a, b) => format!("({} & {})", a.to_tink(), b.to_tink()),
            Expr::Or(a, b) => format!("({} | {})", a.to_tink(), b.to_tink()),
            Expr::Xor(a, b) => format!("({} ^ {})", a.to_tink(), b.to_tink()),
            Expr::Shl(a, b) => format!("({} << ({} & 31))", a.to_tink(), b.to_tink()),
        }
    }
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        (-100_000i32..100_000).prop_map(Expr::Lit).boxed()
    } else {
        let sub = expr(depth - 1);
        prop_oneof![
            (-100_000i32..100_000).prop_map(Expr::Lit),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (sub.clone(), sub).prop_map(|(a, b)| Expr::Shl(Box::new(a), Box::new(b))),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The whole compiler+emulator stack computes exactly what a host
    /// evaluator computes, optimized or not — wrapping arithmetic, bit
    /// ops, shifts and all.
    #[test]
    fn compiler_matches_reference_semantics(e in expr(4)) {
        let expected = e.eval();
        let src = format!("fn main() {{ print({}); }}", e.to_tink());
        for optimize in [true, false] {
            let opts = lego::Options { optimize, ..lego::Options::default() };
            let p = lego::compile(&src, &opts).unwrap();
            let r = Emulator::new(&p).run(&Limits::default()).unwrap();
            prop_assert_eq!(
                r.output.trim().parse::<i32>().unwrap(),
                expected,
                "optimize={} src={}",
                optimize,
                src
            );
        }
    }
}

/// A random straight-line program over N mutable variables: stresses
/// liveness, register allocation and spilling far harder than single
/// expressions (many simultaneously-live values), then checks the
/// compiled result against a host interpreter.
#[derive(Debug, Clone)]
struct VarProgram {
    nvars: usize,
    /// (dst, op, a_src, b_src, literal) — dst = a op (b or literal).
    steps: Vec<(usize, u8, usize, usize, i32)>,
    print_var: usize,
}

impl VarProgram {
    fn eval(&self) -> i64 {
        let mut vars = vec![0i32; self.nvars];
        for (i, v) in vars.iter_mut().enumerate() {
            *v = i as i32 + 1;
        }
        for &(d, op, a, b, lit) in &self.steps {
            let x = vars[a];
            let y = if op % 2 == 0 { vars[b] } else { lit };
            vars[d] = match op / 2 {
                0 => x.wrapping_add(y),
                1 => x.wrapping_sub(y),
                2 => x.wrapping_mul(y),
                3 => x ^ y,
                _ => x & y,
            };
        }
        vars[self.print_var] as i64
    }

    fn to_tink(&self) -> String {
        let mut s = String::from("fn main() {\n");
        for i in 0..self.nvars {
            s.push_str(&format!("    var v{i} = {};\n", i + 1));
        }
        for &(d, op, a, b, lit) in &self.steps {
            let rhs = if op % 2 == 0 {
                format!("v{b}")
            } else {
                format!("({lit})")
            };
            let sym = match op / 2 {
                0 => "+",
                1 => "-",
                2 => "*",
                3 => "^",
                _ => "&",
            };
            s.push_str(&format!("    v{d} = v{a} {sym} {rhs};\n"));
        }
        s.push_str(&format!("    print(v{});\n}}\n", self.print_var));
        s
    }
}

fn var_program() -> impl Strategy<Value = VarProgram> {
    (4usize..28).prop_flat_map(|nvars| {
        (
            prop::collection::vec(
                (0..nvars, 0u8..10, 0..nvars, 0..nvars, -10_000i32..10_000),
                1..60,
            ),
            0..nvars,
        )
            .prop_map(move |(steps, print_var)| VarProgram {
                nvars,
                steps,
                print_var,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Many-variable straight-line programs survive allocation (and
    /// spilling) with exact semantics, optimized or not.
    #[test]
    fn register_pressure_preserves_semantics(vp in var_program()) {
        let expected = vp.eval();
        let src = vp.to_tink();
        for optimize in [true, false] {
            let opts = lego::Options { optimize, ..lego::Options::default() };
            let p = lego::compile(&src, &opts).unwrap();
            let r = Emulator::new(&p).run(&Limits::default()).unwrap();
            prop_assert_eq!(
                r.output.trim().parse::<i64>().unwrap(),
                expected,
                "optimize={}\n{}",
                optimize,
                src
            );
        }
    }
}

/// One conditional assignment arm: (dst, src, literal).
type BranchArm = (usize, usize, i32);

/// Random branchy programs: chains of if/else over mutable variables,
/// checked against a host interpreter — exercises compare lowering,
/// predicate allocation and block layout.
#[derive(Debug, Clone)]
struct BranchyProgram {
    nvars: usize,
    /// (cond_a, cond_b, cond_kind, then arm, else arm)
    steps: Vec<(usize, usize, u8, BranchArm, BranchArm)>,
    print_var: usize,
}

impl BranchyProgram {
    fn eval(&self) -> i64 {
        let mut vars = vec![0i32; self.nvars];
        for (i, v) in vars.iter_mut().enumerate() {
            *v = (i as i32).wrapping_mul(7) - 3;
        }
        for &(a, b, k, (td, ts, tl), (ed, es, el)) in &self.steps {
            let taken = match k % 4 {
                0 => vars[a] < vars[b],
                1 => vars[a] == vars[b],
                2 => vars[a] >= vars[b],
                _ => vars[a] != vars[b],
            };
            if taken {
                vars[td] = vars[ts].wrapping_add(tl);
            } else {
                vars[ed] = vars[es].wrapping_sub(el);
            }
        }
        vars[self.print_var] as i64
    }

    fn to_tink(&self) -> String {
        let mut s = String::from("fn main() {\n");
        for i in 0..self.nvars {
            s.push_str(&format!(
                "    var v{i} = {};\n",
                (i as i32).wrapping_mul(7) - 3
            ));
        }
        for &(a, b, k, (td, ts, tl), (ed, es, el)) in &self.steps {
            let op = match k % 4 {
                0 => "<",
                1 => "==",
                2 => ">=",
                _ => "!=",
            };
            s.push_str(&format!(
                "    if (v{a} {op} v{b}) {{ v{td} = v{ts} + ({tl}); }} else {{ v{ed} = v{es} - ({el}); }}\n"
            ));
        }
        s.push_str(&format!("    print(v{});\n}}\n", self.print_var));
        s
    }
}

fn branchy_program() -> impl Strategy<Value = BranchyProgram> {
    (3usize..12).prop_flat_map(|nvars| {
        (
            prop::collection::vec(
                (
                    0..nvars,
                    0..nvars,
                    any::<u8>(),
                    (0..nvars, 0..nvars, -100i32..100),
                    (0..nvars, 0..nvars, -100i32..100),
                ),
                1..25,
            ),
            0..nvars,
        )
            .prop_map(move |(steps, print_var)| BranchyProgram {
                nvars,
                steps,
                print_var,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Branch-dense programs compute exactly what the host computes,
    /// optimized or not.
    #[test]
    fn branchy_control_flow_preserves_semantics(bp in branchy_program()) {
        let expected = bp.eval();
        let src = bp.to_tink();
        for optimize in [true, false] {
            let opts = lego::Options { optimize, ..lego::Options::default() };
            let p = lego::compile(&src, &opts).unwrap();
            let r = Emulator::new(&p).run(&Limits::default()).unwrap();
            prop_assert_eq!(
                r.output.trim().parse::<i64>().unwrap(),
                expected,
                "optimize={}\n{}",
                optimize,
                src
            );
        }
    }
}

// ---- The interleaved / batch throughput tier (DESIGN.md §15) ----

use tepic_ccc::huffman::{DecodeCounters, InterleavedDecoder, LaneResult, StreamLane};

/// Sequential reference for the interleaved decoder: one symbol at a
/// time through each lane's `LutDecoder` (itself differentially pinned
/// to the bit-serial canonical decoder above). The interleaved kernels
/// must be observationally identical — same symbols, same error variant
/// at the same bit position, same counter totals.
fn decode_lanes_sequential(
    dec: &InterleavedDecoder,
    lanes: &[StreamLane<'_>],
    counts: &mut DecodeCounters,
) -> Vec<LaneResult> {
    lanes
        .iter()
        .map(|lane| {
            let mut r = BitReader::at_bit(lane.bytes, lane.start_bit);
            let mut syms = Vec::new();
            let mut err = None;
            for i in 0..lane.symbols {
                let t = match lane.table {
                    Some(t) => t as usize,
                    None => dec.cycle()[i % dec.cycle().len()] as usize,
                };
                match dec.table(t).decode_counted(&mut r, counts) {
                    Ok(s) => syms.push(s),
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            LaneResult {
                syms,
                err,
                end_bit: r.bit_pos(),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Many pinned lanes over arbitrary codebooks decode exactly the
    /// messages they encode, identically to the sequential reference.
    #[test]
    fn interleaved_matches_sequential_on_valid_streams(
        books_raw in prop::collection::vec(prop::collection::vec(1u64..500, 2..24), 1..4),
        lanes_raw in prop::collection::vec((any::<u64>(), 0usize..200), 1..12),
    ) {
        let books: Vec<CodeBook> =
            books_raw.iter().map(|f| CodeBook::from_freqs(f).unwrap()).collect();
        let dec = InterleavedDecoder::new(books.iter().map(CodeBook::lut_decoder).collect());
        let mut store: Vec<(Vec<u8>, Vec<u32>, u32)> = Vec::new();
        for &(seed, n) in &lanes_raw {
            let bi = (seed % books.len() as u64) as usize;
            let alpha = books_raw[bi].len() as u64;
            let mut x = seed | 1;
            let mut msg = Vec::with_capacity(n);
            let mut w = BitWriter::new();
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let s = ((x >> 33) % alpha) as u32;
                msg.push(s);
                books[bi].encode_into(s, &mut w);
            }
            store.push((w.into_bytes(), msg, bi as u32));
        }
        let lanes: Vec<StreamLane<'_>> = store
            .iter()
            .map(|(b, m, t)| StreamLane {
                bytes: b,
                start_bit: 0,
                symbols: m.len(),
                table: Some(*t),
            })
            .collect();
        let mut ic = DecodeCounters::default();
        let got = dec.decode_streams(&lanes, &mut ic);
        for (r, (_, m, _)) in got.iter().zip(&store) {
            prop_assert!(r.err.is_none(), "valid lane errored: {:?}", r.err);
            prop_assert_eq!(&r.syms, m);
        }
        let mut sc = DecodeCounters::default();
        let want = decode_lanes_sequential(&dec, &lanes, &mut sc);
        prop_assert_eq!(got, want);
        prop_assert_eq!(ic, sc, "counter totals diverge");
    }

    /// Garbage bytes, arbitrary start offsets, over-asked symbol counts
    /// and cycled (unpinned) lanes: the interleaved decoder reports the
    /// same per-lane error at the same bit position as the reference.
    #[test]
    fn interleaved_matches_sequential_on_garbage(
        freqs in prop::collection::vec(1u64..500, 2..24),
        bytes in prop::collection::vec(any::<u8>(), 0..64),
        start in 0u64..8,
        ask in 0usize..300,
        pin in any::<bool>(),
    ) {
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let dec = InterleavedDecoder::single(book.lut_decoder());
        let lanes = [
            StreamLane {
                bytes: &bytes,
                start_bit: start,
                symbols: ask,
                table: if pin { Some(0) } else { None },
            },
            StreamLane { bytes: &bytes, start_bit: 0, symbols: ask / 2, table: Some(0) },
        ];
        let mut ic = DecodeCounters::default();
        let got = dec.decode_streams(&lanes, &mut ic);
        let mut sc = DecodeCounters::default();
        let want = decode_lanes_sequential(&dec, &lanes, &mut sc);
        prop_assert_eq!(got, want);
        prop_assert_eq!(ic, sc, "counter totals diverge");
    }

    /// Valid streams truncated mid-codeword (and over-asked) fail with
    /// the same `UnexpectedEos`/`InvalidCode` positions as the reference.
    #[test]
    fn interleaved_matches_sequential_on_truncated_streams(
        freqs in prop::collection::vec(1u64..500, 2..24),
        seed in any::<u64>(),
        n in 1usize..150,
        cut_pct in 0u32..=100,
        extra in 0usize..8,
    ) {
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let mut x = seed | 1;
        let mut w = BitWriter::new();
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            book.encode_into(((x >> 33) % freqs.len() as u64) as u32, &mut w);
        }
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() * cut_pct as usize / 100);
        let dec = InterleavedDecoder::single(book.lut_decoder());
        let lanes = [StreamLane {
            bytes: &bytes,
            start_bit: 0,
            symbols: n + extra,
            table: Some(0),
        }];
        let mut ic = DecodeCounters::default();
        let got = dec.decode_streams(&lanes, &mut ic);
        let mut sc = DecodeCounters::default();
        let want = decode_lanes_sequential(&dec, &lanes, &mut sc);
        prop_assert_eq!(got, want);
        prop_assert_eq!(ic, sc, "counter totals diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whole-image batch decode under armed `decode.lut` failpoint
    /// schedules: every fired injection is healed through the
    /// bit-serial reference (counted in `reference_fallbacks`), and the
    /// healed output is bit-identical to an uninjected run.
    #[test]
    fn batch_decode_heals_armed_lut_failpoints(
        p in small_program(),
        prob in prop::sample::select(vec![0.0, 0.3, 1.0]),
        seed in any::<u64>(),
    ) {
        use tepic_ccc::ccc::failpoint::{sites, FailMode, Failpoints};
        use tepic_ccc::fetch::batch_decode_image;
        for scheme in standard_schemes() {
            let out = match scheme.compress(&p) {
                Ok(o) => o,
                Err(_) => continue,
            };
            let (clean, cs) = batch_decode_image(&p, &out.image, out.codec.as_ref(), None);
            prop_assert_eq!(cs.reference_fallbacks, 0);
            prop_assert_eq!(cs.decode_errors, 0);
            let fp =
                Failpoints::from_spec(&format!("decode.lut:{prob}:error"), seed).unwrap();
            let (healed, hs) =
                batch_decode_image(&p, &out.image, out.codec.as_ref(), Some(&fp));
            prop_assert_eq!(&healed, &clean, "healing changed decoded output");
            prop_assert_eq!(hs.decode_errors, 0);
            prop_assert_eq!(
                hs.reference_fallbacks,
                fp.fired(sites::DECODE_LUT, FailMode::Error),
                "every fired decode.lut injection must be one reference rescue"
            );
            if prob == 1.0 {
                prop_assert_eq!(hs.reference_fallbacks, p.num_blocks() as u64);
            }
        }
    }
}
