//! Shape-level reproduction checks of the paper's headline results.
//!
//! These assert the *qualitative* claims — who wins, roughly by how much,
//! where crossovers fall — not the authors' absolute numbers (our
//! workloads are synthetic stand-ins; see DESIGN.md §4 and
//! EXPERIMENTS.md for measured-vs-paper values).

use tepic_ccc::ccc::schemes::{standard_schemes, Scheme};
use tepic_ccc::ccc::{AddressTranslationTable, CompressionReport};
use tepic_ccc::prelude::*;

fn mean(v: &[f64]) -> f64 {
    v.iter().sum::<f64>() / v.len() as f64
}

fn median(v: &[f64]) -> f64 {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = s.len();
    if n % 2 == 1 {
        s[n / 2]
    } else {
        (s[n / 2 - 1] + s[n / 2]) / 2.0
    }
}

fn reports() -> Vec<CompressionReport> {
    workloads::ALL
        .iter()
        .map(|w| CompressionReport::build(w.name, &w.compile().unwrap()))
        .collect()
}

/// Figure 5: Full compresses best on every benchmark; every scheme beats
/// the original; the tailored ISA sits in the middle of the field.
#[test]
fn fig5_full_wins_compression_everywhere() {
    for rep in reports() {
        let full = rep.row("full").unwrap().code_ratio;
        for s in ["byte", "stream", "stream_1", "tailored"] {
            let r = rep.row(s).unwrap().code_ratio;
            assert!(full < r, "{}: full {full} !< {s} {r}", rep.name);
            assert!(r < 1.0, "{}: {s} fails to compress", rep.name);
        }
    }
}

/// §2.2: combining strategies approaches the entropy limit — the Full
/// scheme's output cannot be far below the op-level entropy bound.
#[test]
fn full_compression_respects_entropy_bound() {
    use tinker_huffman::{entropy_bits, Dictionary};
    for w in &workloads::ALL {
        let p = w.compile().unwrap();
        let dict: Dictionary<u64> = p.op_words().into_iter().collect();
        let h = entropy_bits(dict.freqs());
        let out = tepic_ccc::ccc::schemes::full::FullScheme::default()
            .compress(&p)
            .unwrap();
        let bits_per_op = out.image.total_bytes() as f64 * 8.0 / p.num_ops() as f64;
        // Byte-aligned block starts add padding, so allow slack above the
        // entropy; but the encoded stream can never beat entropy by more
        // than the rounding noise.
        assert!(
            bits_per_op > h - 0.01,
            "{}: {bits_per_op:.2} bits/op below entropy {h:.2}",
            w.name
        );
        assert!(
            bits_per_op < h + 4.0,
            "{}: {bits_per_op:.2} bits/op far above entropy {h:.2}",
            w.name
        );
    }
}

/// Figure 10: the Full decoder is the largest of the Huffman family;
/// byte-wise has the smallest dictionary-bearing decoder; the tailored
/// PLA is orders smaller than the Full tree.
#[test]
fn fig10_decoder_complexity_ordering() {
    for rep in reports() {
        let full = rep.row("full").unwrap().decoder_transistors;
        let byte = rep.row("byte").unwrap().decoder_transistors;
        let tailored = rep.row("tailored").unwrap().decoder_transistors;
        assert!(full > byte, "{}: full {full} !> byte {byte}", rep.name);
        assert!(tailored * 10 < full, "{}: tailored not ≪ full", rep.name);
        assert!(tailored > 0, "{}: tailored decoder can't be free", rep.name);
    }
}

/// §3.3: the ATT adds a modest fraction to the image (paper: ≈15.5%).
#[test]
fn att_overhead_is_modest() {
    let mut fracs = Vec::new();
    for w in &workloads::ALL {
        let p = w.compile().unwrap();
        for scheme in standard_schemes() {
            let out = scheme.compress(&p).unwrap();
            let att = AddressTranslationTable::build(&p, &out.image);
            fracs.push(att.stored_bytes() as f64 / out.image.total_bytes() as f64);
        }
    }
    let avg = mean(&fracs);
    assert!(
        avg > 0.05 && avg < 0.30,
        "mean ATT overhead {avg} outside the plausible band"
    );
}

fn scaled_ipcs() -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    use tepic_ccc::ccc::schemes;
    let (mut ideal, mut base, mut comp, mut tail) = (vec![], vec![], vec![], vec![]);
    for w in &workloads::ALL {
        let (p, run) = w.compile_and_run().unwrap();
        let base_img = schemes::base::encode_base(&p);
        let tail_img = schemes::tailored::TailoredScheme
            .compress(&p)
            .unwrap()
            .image;
        let comp_img = schemes::full::FullScheme::default()
            .compress(&p)
            .unwrap()
            .image;
        let code = base_img.total_bytes();
        ideal.push(simulate(&p, &base_img, &run.trace, &FetchConfig::ideal()).ipc());
        base.push(
            simulate(
                &p,
                &base_img,
                &run.trace,
                &FetchConfig::scaled(EncodingClass::Base, code),
            )
            .ipc(),
        );
        comp.push(
            simulate(
                &p,
                &comp_img,
                &run.trace,
                &FetchConfig::scaled(EncodingClass::Compressed, code),
            )
            .ipc(),
        );
        tail.push(
            simulate(
                &p,
                &tail_img,
                &run.trace,
                &FetchConfig::scaled(EncodingClass::Tailored, code),
            )
            .ipc(),
        );
    }
    (ideal, base, comp, tail)
}

/// Figure 13's headline shape: Ideal bounds everything; Tailored beats
/// Base on average; Compressed achieves a median advantage over Base yet
/// loses on at least one benchmark (the misprediction-penalty story);
/// and Tailored's average exceeds Compressed's (the paper's conclusion).
#[test]
fn fig13_cache_study_shape() {
    let (ideal, base, comp, tail) = scaled_ipcs();
    for i in 0..ideal.len() {
        assert!(ideal[i] >= base[i] - 1e-9);
        assert!(ideal[i] >= comp[i] - 1e-9);
        assert!(ideal[i] >= tail[i] - 1e-9);
    }
    assert!(
        mean(&tail) > mean(&base),
        "tailored mean {} must beat base mean {}",
        mean(&tail),
        mean(&base)
    );
    assert!(
        median(&comp) > median(&base),
        "compressed median {} must beat base median {}",
        median(&comp),
        median(&base)
    );
    let comp_losses = comp.iter().zip(&base).filter(|(c, b)| c < b).count();
    assert!(
        comp_losses >= 1,
        "compressed should lose somewhere (mispredict penalty)"
    );
    assert!(
        mean(&tail) >= mean(&comp),
        "the paper's conclusion: tailored {} ≥ compressed {} on average",
        mean(&tail),
        mean(&comp)
    );
}

/// Figure 14: bus activity savings track the degree of compression.
#[test]
fn fig14_bus_flips_track_compression() {
    use tepic_ccc::ccc::schemes;
    let mut base_flips = 0u64;
    let mut comp_flips = 0u64;
    let mut tail_flips = 0u64;
    for w in &workloads::ALL {
        let (p, run) = w.compile_and_run().unwrap();
        let base_img = schemes::base::encode_base(&p);
        let tail_img = schemes::tailored::TailoredScheme
            .compress(&p)
            .unwrap()
            .image;
        let comp_img = schemes::full::FullScheme::default()
            .compress(&p)
            .unwrap()
            .image;
        let code = base_img.total_bytes();
        base_flips += simulate(
            &p,
            &base_img,
            &run.trace,
            &FetchConfig::scaled(EncodingClass::Base, code),
        )
        .bus_bit_flips;
        comp_flips += simulate(
            &p,
            &comp_img,
            &run.trace,
            &FetchConfig::scaled(EncodingClass::Compressed, code),
        )
        .bus_bit_flips;
        tail_flips += simulate(
            &p,
            &tail_img,
            &run.trace,
            &FetchConfig::scaled(EncodingClass::Tailored, code),
        )
        .bus_bit_flips;
    }
    assert!(
        comp_flips < base_flips,
        "compressed {comp_flips} !< base {base_flips}"
    );
    assert!(
        tail_flips < base_flips,
        "tailored {tail_flips} !< base {base_flips}"
    );
    // Stronger: the *most* compressed encoding saves the most.
    assert!(
        comp_flips < tail_flips,
        "compressed {comp_flips} !< tailored {tail_flips}"
    );
}

/// §2.3 in-text: tailored ops never exceed the original, and popular
/// full-scheme ops shrink drastically ("ADD went from 40 to 6 bits").
#[test]
fn intext_op_size_claims() {
    use tinker_huffman::{CodeBook, Dictionary};
    for w in workloads::ALL.iter().take(4) {
        let p = w.compile().unwrap();
        let spec = tepic_ccc::ccc::schemes::tailored::TailoredSpec::compute(&p);
        for op in p.ops() {
            assert!(spec.op_bits(op) <= 40, "{}: tailored op grew", w.name);
        }
        let dict: Dictionary<u64> = p.op_words().into_iter().collect();
        let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
        let shortest = (0..dict.len() as u32)
            .map(|s| book.len_of(s))
            .min()
            .unwrap();
        assert!(
            shortest <= 8,
            "{}: hottest op code is {} bits",
            w.name,
            shortest
        );
    }
}
