//! `tepic-ccd` — the compression-as-a-service daemon (DESIGN.md §17).
//!
//! A persistent std-only TCP server over the length-prefixed JSON
//! protocol: `compile`/`encode`/`simulate`/`faultsim` jobs from many
//! concurrent clients are coalesced per flight key, admitted through a
//! bounded queue (explicit `busy` past the depth threshold), sharded
//! across the worker pool, and served straight from the engine's
//! content-addressed artifact cache when warm. `metrics` dumps the
//! daemon's registry; `shutdown` drains gracefully (admitted jobs
//! finish, new connections are refused, the process exits 0).
//!
//! ```text
//! tepic-ccd [--addr <host:port>] [--jobs <N>] [--queue-depth <N>]
//!           [--cache-dir <dir>] [--no-cache] [--timeout-ms <N>]
//!           [--port-file <file>]
//! ```
//!
//! `--addr` defaults to `127.0.0.1:0` (ephemeral port; the bound
//! address is printed on stdout and, with `--port-file`, written
//! atomically to a file scripts can poll). The artifact cache defaults
//! to `target/ccc-artifacts`, shared with the one-shot CLI — a daemon
//! started after a `tepic-cc bench` run serves those artifacts warm.

use std::process::ExitCode;
use tepic_ccc::bench::engine::cache::write_atomic;
use tepic_ccc::bench::engine::{default_cache_dir, default_jobs, Engine};
use tepic_ccc::bench::serve::{ServeConfig, ServerHandle};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tepic-ccd [--addr <host:port>] [--jobs <N>] [--queue-depth <N>] \
         [--cache-dir <dir>] [--no-cache] [--timeout-ms <N>] [--port-file <file>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeConfig::default();
    let mut jobs = default_jobs();
    let mut cache_dir = default_cache_dir();
    let mut no_cache = false;
    let mut port_file: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => cfg.addr = v.clone(),
                None => return usage(),
            },
            "--jobs" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => jobs = n,
                _ => return usage(),
            },
            "--queue-depth" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => cfg.queue_depth = n,
                _ => return usage(),
            },
            "--cache-dir" => match it.next() {
                Some(v) => cache_dir = v.into(),
                None => return usage(),
            },
            "--no-cache" => no_cache = true,
            "--timeout-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => {
                    let t = Some(std::time::Duration::from_millis(n));
                    cfg.read_timeout = t;
                    cfg.write_timeout = t;
                }
                _ => return usage(),
            },
            "--port-file" => match it.next() {
                Some(v) => port_file = Some(v.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    cfg.jobs = jobs;

    let engine = if no_cache {
        Engine::uncached(jobs)
    } else {
        match Engine::with_cache_dir(jobs, &cache_dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("tepic-ccd: cannot open cache {}: {e}", cache_dir.display());
                return ExitCode::FAILURE;
            }
        }
    };

    let handle = match ServerHandle::start(engine, cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tepic-ccd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.local_addr();
    println!("tepic-ccd: listening on {addr} ({jobs} jobs)");
    if let Some(pf) = &port_file {
        if let Err(e) = write_atomic(pf, addr.to_string().as_bytes()) {
            eprintln!("tepic-ccd: cannot write {pf}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Blocks until a shutdown request drains the daemon.
    handle.join();
    println!("tepic-ccd: drained; exiting");
    ExitCode::SUCCESS
}
