//! `tepic-cc` — the command-line driver for the LEGO/TEPIC tool suite.
//!
//! ```text
//! tepic-cc run <file.tink>            compile and execute
//! tepic-cc disasm <file.tink>         compile and print the TEPIC listing
//! tepic-cc report <file.tink>         compression report (Fig 5/7/10 rows)
//! tepic-cc verilog <file.tink>        emit the tailored-decoder Verilog
//! tepic-cc sim <file.tink>            fetch-pipeline study (Fig 13 row)
//! tepic-cc stats <file.tink>          static + dynamic statistics
//! tepic-cc faultsim <file.tink>       fault-injection campaign over all schemes
//! ```
//!
//! With `-` as the file, source is read from stdin. `--no-opt` disables
//! the optimizer. `--seed <u64>` sets the fault-campaign PRNG seed
//! (default 42); equal seeds reproduce campaigns bit-for-bit.

use std::io::Read;
use std::process::ExitCode;
use tepic_ccc::ccc::pla::emit_tailored_decoder_verilog;
use tepic_ccc::ccc::schemes::tailored::TailoredSpec;
use tepic_ccc::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tepic-cc <run|disasm|report|verilog|sim|stats|faultsim> <file.tink|-> \
         [--no-opt] [--seed <u64>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return usage(),
    };
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let seed = match args.iter().position(|a| a == "--seed") {
        None => 42u64,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(s)) => s,
            Some(Err(_)) => {
                eprintln!("tepic-cc: --seed wants an unsigned 64-bit integer");
                return ExitCode::from(2);
            }
            None => {
                eprintln!("tepic-cc: --seed needs a value");
                return ExitCode::from(2);
            }
        },
    };

    let source = if file == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("tepic-cc: cannot read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tepic-cc: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let opts = lego::Options {
        optimize,
        ..lego::Options::default()
    };
    let program = match lego::compile(&source, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => match Emulator::new(&program).run(&Limits::default()) {
            Ok(r) => {
                print!("{}", r.output);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tepic-cc: runtime error: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => {
            print!("{}", program.listing());
            ExitCode::SUCCESS
        }
        "report" => {
            print!("{}", CompressionReport::build(file, &program));
            ExitCode::SUCCESS
        }
        "verilog" => {
            let spec = TailoredSpec::compute(&program);
            print!(
                "{}",
                emit_tailored_decoder_verilog(&spec, "tepic_tailored_decoder")
            );
            ExitCode::SUCCESS
        }
        "sim" => {
            let run = match Emulator::new(&program).run(&Limits::default()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("tepic-cc: runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base = schemes::base::encode_base(&program);
            let tail = schemes::tailored::TailoredScheme
                .compress(&program)
                .expect("tailored");
            let full = schemes::full::FullScheme::default()
                .compress(&program)
                .expect("full");
            println!(
                "{:<11} {:>7} {:>9} {:>8} {:>9}",
                "config", "IPC", "pred", "I$ hit", "flips"
            );
            for (name, img, cfg) in [
                ("ideal", &base, FetchConfig::ideal()),
                ("base", &base, FetchConfig::base()),
                ("tailored", &tail.image, FetchConfig::tailored()),
                ("compressed", &full.image, FetchConfig::compressed()),
            ] {
                let r = simulate(&program, img, &run.trace, &cfg);
                println!(
                    "{name:<11} {:>7.3} {:>8.1}% {:>7.1}% {:>9}",
                    r.ipc(),
                    r.pred_accuracy() * 100.0,
                    r.cache_hit_rate() * 100.0,
                    r.bus_bit_flips
                );
            }
            ExitCode::SUCCESS
        }
        "faultsim" => {
            let cfg = CampaignConfig {
                seed,
                ..CampaignConfig::default()
            };
            print!("{}", run_campaign(&program, &cfg).render());
            ExitCode::SUCCESS
        }
        "stats" => {
            println!("functions   : {}", program.funcs().len());
            println!("blocks      : {}", program.num_blocks());
            println!("operations  : {}", program.num_ops());
            println!("MultiOps    : {}", program.num_mops());
            println!(
                "static ILP  : {:.2} ops/MOP",
                program.num_ops() as f64 / program.num_mops() as f64
            );
            println!("code size   : {} bytes", program.code_size());
            println!("data size   : {} bytes", program.data().len());
            match Emulator::new(&program).run(&Limits::default()) {
                Ok(r) => {
                    println!("dyn ops     : {}", r.stats.ops);
                    println!("dyn blocks  : {}", r.stats.blocks);
                    println!("MOP density : {:.2}", r.stats.avg_mop_density());
                    println!("taken frac  : {:.2}", r.stats.taken_fraction);
                }
                Err(e) => println!("dyn         : <runtime error: {e}>"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
