//! `tepic-cc` — the command-line driver for the LEGO/TEPIC tool suite.
//!
//! ```text
//! tepic-cc run <file.tink>            compile and execute
//! tepic-cc disasm <file.tink>         compile and print the TEPIC listing
//! tepic-cc report <file.tink>         compression report (Fig 5/7/10 rows)
//! tepic-cc verilog <file.tink>        emit the tailored-decoder Verilog
//! tepic-cc sim <file.tink>            fetch-pipeline study (Fig 13 row)
//! tepic-cc stats <file.tink>          static + dynamic statistics
//! tepic-cc faultsim <file.tink>       fault-injection campaign over all schemes
//! tepic-cc bench [options]            the whole figure suite in one invocation
//! ```
//!
//! With `-` as the file, source is read from stdin. `--no-opt` disables
//! the optimizer. `--seed <u64>` sets the fault-campaign PRNG seed
//! (default 42); equal seeds reproduce campaigns bit-for-bit.
//!
//! Every subcommand that compiles goes through the shared prepared-
//! workload engine, so repeated invocations on the same source hit the
//! content-addressed artifact cache (`target/ccc-artifacts` by default;
//! `CCC_CACHE_DIR` relocates it, `CCC_NO_CACHE=1` disables it).
//!
//! `bench` options:
//!
//! ```text
//! --jobs <N>        worker threads (default: all cores; CCC_JOBS)
//! --no-cache        rebuild everything, skip the artifact cache
//! --cache-dir <d>   cache location (default target/ccc-artifacts)
//! --figures <list>  comma-separated subset (default: the core figures)
//! --all             every figure, table and extension experiment
//! --assert-warm     fail unless the run was served entirely from cache
//! ```

use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;
use tepic_ccc::bench::engine::Engine;
use tepic_ccc::bench::{figures, Prepared};
use tepic_ccc::ccc::pla::emit_tailored_decoder_verilog;
use tepic_ccc::ccc::schemes::tailored::TailoredSpec;
use tepic_ccc::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tepic-cc <run|disasm|report|verilog|sim|stats|faultsim> <file.tink|-> \
         [--no-opt] [--seed <u64>]\n\
         \x20      tepic-cc bench [--jobs <N>] [--no-cache] [--cache-dir <dir>] \
         [--figures <a,b,..>] [--all] [--assert-warm]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        return bench_cmd(&args[1..]);
    }
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return usage(),
    };
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let seed = match args.iter().position(|a| a == "--seed") {
        None => 42u64,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(s)) => s,
            Some(Err(_)) => {
                eprintln!("tepic-cc: --seed wants an unsigned 64-bit integer");
                return ExitCode::from(2);
            }
            None => {
                eprintln!("tepic-cc: --seed needs a value");
                return ExitCode::from(2);
            }
        },
    };

    let source = if file == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("tepic-cc: cannot read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tepic-cc: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let opts = lego::Options {
        optimize,
        ..lego::Options::default()
    };
    // The file's path names the cached artifacts; the key still hashes
    // the source text, so editing the file misses cleanly.
    let engine = Engine::from_env();
    let program = match engine.program(file, &source, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => match Emulator::new(&program).run(&Limits::default()) {
            Ok(r) => {
                print!("{}", r.output);
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("tepic-cc: runtime error: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => {
            print!("{}", program.listing());
            ExitCode::SUCCESS
        }
        "report" => {
            print!("{}", engine.report(file, &source, &opts, &program));
            ExitCode::SUCCESS
        }
        "verilog" => {
            let spec = TailoredSpec::compute(&program);
            print!(
                "{}",
                emit_tailored_decoder_verilog(&spec, "tepic_tailored_decoder")
            );
            ExitCode::SUCCESS
        }
        "sim" => {
            let trace = match engine.trace(file, &source, &opts, &program) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tepic-cc: runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base = schemes::base::encode_base(&program);
            let images: Vec<EncodedProgram> = match ["tailored", "full"]
                .iter()
                .map(|s| engine.image(file, &source, &opts, s, &program))
                .collect()
            {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("tepic-cc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:<11} {:>7} {:>9} {:>8} {:>9}",
                "config", "IPC", "pred", "I$ hit", "flips"
            );
            for (name, img, cfg) in [
                ("ideal", &base, FetchConfig::ideal()),
                ("base", &base, FetchConfig::base()),
                ("tailored", &images[0], FetchConfig::tailored()),
                ("compressed", &images[1], FetchConfig::compressed()),
            ] {
                let r = simulate(&program, img, &trace, &cfg);
                println!(
                    "{name:<11} {:>7.3} {:>8.1}% {:>7.1}% {:>9}",
                    r.ipc(),
                    r.pred_accuracy() * 100.0,
                    r.cache_hit_rate() * 100.0,
                    r.bus_bit_flips
                );
            }
            ExitCode::SUCCESS
        }
        "faultsim" => {
            let cfg = CampaignConfig {
                seed,
                ..CampaignConfig::default()
            };
            print!("{}", run_campaign(&program, &cfg).render());
            ExitCode::SUCCESS
        }
        "stats" => {
            println!("functions   : {}", program.funcs().len());
            println!("blocks      : {}", program.num_blocks());
            println!("operations  : {}", program.num_ops());
            println!("MultiOps    : {}", program.num_mops());
            println!(
                "static ILP  : {:.2} ops/MOP",
                program.num_ops() as f64 / program.num_mops() as f64
            );
            println!("code size   : {} bytes", program.code_size());
            println!("data size   : {} bytes", program.data().len());
            match engine.trace(file, &source, &opts, &program) {
                Ok(trace) => {
                    let stats = yula::TraceStats::compute(&program, &trace);
                    println!("dyn ops     : {}", stats.ops);
                    println!("dyn blocks  : {}", stats.blocks);
                    println!("MOP density : {:.2}", stats.avg_mop_density());
                    println!("taken frac  : {:.2}", stats.taken_fraction);
                }
                Err(e) => println!("dyn         : <runtime error: {e}>"),
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// The figure suite, as one flag-ordered list of (name, needs-reports,
/// render) entries. `--figures` picks by name; the default set is the
/// paper's core figures; `--all` adds the extensions.
const CORE_FIGURES: [&str; 8] = [
    "table1", "table2", "fig05", "fig07", "fig10", "fig13", "fig14", "diag",
];
const EXT_FIGURES: [&str; 8] = [
    "ablations",
    "sweep_cache",
    "stream_explorer",
    "ext_complex_units",
    "ext_entropy_limit",
    "ext_fault_campaign",
    "ext_gshare",
    "ext_tail_duplication",
];

fn render_figure(
    name: &str,
    prepared: &[Prepared],
    reports: &[CompressionReport],
) -> Option<String> {
    Some(match name {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig05" => figures::fig05(reports),
        "fig07" => figures::fig07(reports, prepared),
        "fig10" => figures::fig10(reports),
        "fig13" => figures::fig13(prepared),
        "fig14" => figures::fig14(prepared),
        "diag" => figures::diag(prepared),
        "ablations" => figures::ablations(prepared),
        "sweep_cache" => figures::sweep_cache(prepared),
        "stream_explorer" => figures::stream_explorer(prepared),
        "ext_complex_units" => figures::ext_complex_units(prepared),
        "ext_entropy_limit" => figures::ext_entropy_limit(prepared),
        "ext_fault_campaign" => figures::ext_fault_campaign(prepared, &CampaignConfig::default()),
        "ext_gshare" => figures::ext_gshare(prepared),
        "ext_tail_duplication" => figures::ext_tail_duplication(prepared),
        _ => return None,
    })
}

fn bench_cmd(args: &[String]) -> ExitCode {
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut figure_list: Option<Vec<String>> = None;
    let mut all = false;
    let mut assert_warm = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("tepic-cc bench: --jobs wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => no_cache = true,
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(d.clone()),
                None => {
                    eprintln!("tepic-cc bench: --cache-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--figures" => match it.next() {
                Some(list) => {
                    figure_list = Some(list.split(',').map(|s| s.trim().to_string()).collect())
                }
                None => {
                    eprintln!("tepic-cc bench: --figures needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--all" => all = true,
            "--assert-warm" => assert_warm = true,
            other => {
                eprintln!("tepic-cc bench: unknown option {other}");
                return usage();
            }
        }
    }

    let jobs = jobs
        .or_else(|| {
            std::env::var("CCC_JOBS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or_else(tepic_ccc::bench::engine::default_jobs);
    let engine = if no_cache {
        Engine::uncached(jobs)
    } else {
        let dir = cache_dir
            .map(std::path::PathBuf::from)
            .or_else(|| std::env::var("CCC_CACHE_DIR").ok().map(Into::into))
            .unwrap_or_else(tepic_ccc::bench::engine::default_cache_dir);
        match Engine::with_cache_dir(jobs, &dir) {
            Ok(e) => e,
            Err(err) => {
                eprintln!(
                    "tepic-cc bench: cannot open cache at {}: {err}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    let selected: Vec<String> = match figure_list {
        Some(list) => list,
        None if all => CORE_FIGURES
            .iter()
            .chain(EXT_FIGURES.iter())
            .map(|s| s.to_string())
            .collect(),
        None => CORE_FIGURES.iter().map(|s| s.to_string()).collect(),
    };
    for name in &selected {
        if !CORE_FIGURES.contains(&name.as_str()) && !EXT_FIGURES.contains(&name.as_str()) {
            eprintln!("tepic-cc bench: unknown figure {name}");
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "tepic-cc bench: {} figure(s), jobs={}, cache={}",
        selected.len(),
        engine.jobs(),
        if engine.is_cached() { "on" } else { "off" }
    );

    let t0 = Instant::now();
    let prepared = match engine.prepare_all() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = engine.reports(&prepared);
    let prepare_wall = t0.elapsed();

    let t1 = Instant::now();
    for name in &selected {
        let text = render_figure(name, &prepared, &reports).expect("validated above");
        println!("==================== {name} ====================");
        println!("{text}");
    }
    let render_wall = t1.elapsed();

    let snap = engine.snapshot();
    println!("==================== engine ====================");
    print!("{}", snap.render());
    println!(
        "  wall    prepare {:>9.1} ms   figures {:>9.1} ms   (jobs = {})",
        prepare_wall.as_secs_f64() * 1e3,
        render_wall.as_secs_f64() * 1e3,
        engine.jobs()
    );

    if assert_warm {
        let expected_images =
            (prepared.len() * tepic_ccc::bench::engine::MATRIX_SCHEMES.len()) as u64;
        if snap.misses() != 0 || snap.image_hits != expected_images {
            eprintln!(
                "tepic-cc bench: --assert-warm failed: {} misses, {}/{} image hits",
                snap.misses(),
                snap.image_hits,
                expected_images
            );
            return ExitCode::FAILURE;
        }
        println!("  warm-cache assertion held: 0 misses, {expected_images} image hits.");
    }
    ExitCode::SUCCESS
}
