//! `tepic-cc` — the command-line driver for the LEGO/TEPIC tool suite.
//!
//! ```text
//! tepic-cc run <file.tink>            compile and execute
//! tepic-cc disasm <file.tink>         compile and print the TEPIC listing
//! tepic-cc report <file.tink>         compression report (Fig 5/7/10 rows)
//! tepic-cc verilog <file.tink>        emit the tailored-decoder Verilog
//! tepic-cc sim <file.tink>            fetch-pipeline study (Fig 13 row)
//! tepic-cc stats <file.tink>          static + dynamic statistics
//! tepic-cc faultsim <file.tink>       fault-injection campaign over all schemes
//! tepic-cc bench [options]            the whole figure suite in one invocation
//! tepic-cc trace [options]            Chrome-trace + metrics snapshot of one run
//! tepic-cc chaos [options]            self-healing audit under injected faults
//! tepic-cc gen [options]              seeded synthetic workload corpus + calibration
//! tepic-cc perf [options]             run-ledger sentinel + cost attribution
//! tepic-cc loadgen [options]          hammer a running tepic-ccd daemon
//! ```
//!
//! With `-` as the file, source is read from stdin. `--no-opt` disables
//! the optimizer. `--seed <u64>` sets the fault-campaign PRNG seed
//! (default 42); equal seeds reproduce campaigns bit-for-bit.
//!
//! Every subcommand that compiles goes through the shared prepared-
//! workload engine, so repeated invocations on the same source hit the
//! content-addressed artifact cache (`target/ccc-artifacts` by default;
//! `CCC_CACHE_DIR` relocates it, `CCC_NO_CACHE=1` disables it).
//!
//! `bench` options:
//!
//! ```text
//! --jobs <N>        worker threads (default: all cores; CCC_JOBS)
//! --no-cache        rebuild everything, skip the artifact cache
//! --cache-dir <d>   cache location (default target/ccc-artifacts)
//! --figures <list>  comma-separated subset (default: the core figures)
//! --all             every figure, table and extension experiment
//! --assert-warm     fail unless the run was served entirely from cache
//! --lut-bits <l>    n[,n..] in 8..=16: add a decode panel sweeping the
//!                   first-level LUT size over each workload's op-word book
//! ```
//!
//! `trace` options (DESIGN.md §12):
//!
//! ```text
//! --workload <w>    a built-in workload name (required)
//! --scheme <s>      base|tailored|byte|stream|stream_1|full (default full)
//! --out <file>      Chrome trace-event JSON destination (default trace.json)
//! --check           validate the emitted trace against the metrics snapshot
//! ```
//!
//! `trace` always runs a cold (uncached) pipeline so the compile,
//! emulate and encode spans appear in the trace; the metrics snapshot
//! lands in `results/METRICS_<scheme>.json`. `CCC_TRACE_SMOKE=1` in the
//! environment implies `--check`.
//!
//! `chaos` options (DESIGN.md §13):
//!
//! ```text
//! --seed <u64>      base PRNG seed; run r uses seed+r (default 42)
//! --sites <spec>    failpoint spec, site:prob:mode[,..] (default: all classes)
//! --runs <N>        chaos runs after the clean baseline (default 2)
//! --jobs <N>        worker threads (default: all cores; CCC_JOBS)
//! --out <file>      report path (default results/CHAOS_report.json)
//! ```
//!
//! Each chaos run replays the full figure pipeline twice (a cold pass
//! on a scratch cache, then a warm pass over the survivors) with faults
//! injected at every registered site, then decodes every workload with
//! LUT faults forced. The run passes only if every figure is
//! byte-identical to the clean baseline and the `recover.*` counters
//! reconcile one-for-one against the injection log.
//!
//! `gen` options (DESIGN.md §14):
//!
//! ```text
//! --seed <u64>      corpus seed (default 42); equal seeds reproduce the
//!                   corpus and report bit-for-bit
//! --tier <t>        tiny|paper|10x|100x|1000x (default tiny; 1000x needs
//!                   CCC_GEN_1000X=1)
//! --flavor <f>      tepic|foreign (default tepic)
//! --out <dir>       corpus destination (default results/gen-corpus)
//! --report <file>   calibration report (default results/GEN_report.json)
//! --campaign        run a fault campaign over the first generated program
//! ```
//!
//! `gen` writes one `.tink` file per generated program plus a MANIFEST,
//! pushes the whole corpus through the prepared-workload engine (compile,
//! emulate, all five scheme encodings), and emits the calibration report:
//! generated-vs-target op mix per category with a 5 pp acceptance bound.
//! The exit code is non-zero if the generated mix lands out of band.
//! `CCC_GEN_SMOKE=1` in the environment implies `--campaign`.
//!
//! `perf` options (DESIGN.md §16):
//!
//! ```text
//! --check              judge the latest ledger record of every
//!                      (fingerprint, subcommand) group against its
//!                      history; non-zero exit on any regression
//! --attr               cold in-process `bench --all` pipeline with the
//!                      trace sink on; reconstructs the causal span
//!                      forest, prints the per-workload/per-scheme/
//!                      per-stage cost-attribution tree and the critical
//!                      path (also written to results/PERF_attr.txt)
//! --ledger <file>      ledger to read/write (default CCC_LEDGER or
//!                      results/history/ledger.jsonl)
//! --band <frac>        regression band vs. the baseline best
//!                      (default 0.5 = flag beyond 1.5x)
//! --min-samples <N>    baseline records required before judging
//! --inject-slowdown <f> append a synthetic copy of each group's latest
//!                      record degraded by factor f (test fixture)
//! --jobs <N>           worker threads for --attr
//! ```
//!
//! `loadgen` options (DESIGN.md §17):
//!
//! ```text
//! --addr <host:port>   a running tepic-ccd daemon (required)
//! --requests <N>       total requests across all connections (default 2000)
//! --conns <N>          concurrent client connections (default 8)
//! --seed <u64>         request-mix seed (default 42)
//! --hot-frac <f>       hot-pool draw fraction (default 0.8)
//! --hot-pool <N>       distinct hot (program, op, scheme) combos (default 8)
//! --out <file>         results JSON (default results/BENCH_serve.json)
//! --verify             recompute a sample of encode responses locally and
//!                      re-request every hot combo, asserting the daemon's
//!                      bytes are identical to one-shot CLI artifacts
//! --shutdown           send a shutdown op after the run and verify the
//!                      daemon drains (new connections refused)
//! --min-rps <f>        fail under this aggregate ok-throughput floor
//! --max-hot-p99-ns <N> fail over this warm-hit p99 latency ceiling
//! ```
//!
//! `loadgen` appends a `serve/loadgen` ledger record whose
//! `throughput_per_s` / `*_ns` samples feed the regression sentinel,
//! so serve-path slowdowns fail `perf --check` like any other group.
//!
//! Every subcommand appends one CRC-framed JSONL record (host/build
//! fingerprint, counters, per-stage rollups, wall-clock samples) to the
//! run ledger on success; `CCC_NO_LEDGER=1` disables the append,
//! `CCC_LEDGER` relocates the file.

use std::io::Read;
use std::process::ExitCode;
use std::time::Instant;
use tepic_ccc::bench::engine::cache::write_atomic;
use tepic_ccc::bench::engine::Engine;
use tepic_ccc::bench::{figures, history, Prepared};
use tepic_ccc::ccc::pla::emit_tailored_decoder_verilog;
use tepic_ccc::ccc::schemes::tailored::TailoredSpec;
use tepic_ccc::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tepic-cc <run|disasm|report|verilog|sim|stats|faultsim> <file.tink|-> \
         [--no-opt] [--seed <u64>]\n\
         \x20      tepic-cc bench [--jobs <N>] [--no-cache] [--cache-dir <dir>] \
         [--figures <a,b,..>] [--all] [--assert-warm] [--lut-bits <n,..>]\n\
         \x20      tepic-cc trace --workload <name> [--scheme <s>] [--out <file>] [--check]\n\
         \x20      tepic-cc chaos [--seed <u64>] [--sites <spec>] [--runs <N>] [--jobs <N>] \
         [--out <file>]\n\
         \x20      tepic-cc gen [--seed <u64>] [--tier <t>] [--flavor <f>] [--out <dir>] \
         [--report <file>] [--campaign]\n\
         \x20      tepic-cc perf [--check] [--attr] [--ledger <file>] [--band <frac>] \
         [--min-samples <N>] [--inject-slowdown <f>] [--jobs <N>]\n\
         \x20      tepic-cc loadgen --addr <host:port> [--requests <N>] [--conns <N>] \
         [--seed <u64>] [--hot-frac <f>] [--hot-pool <N>] [--out <file>] [--verify] \
         [--shutdown] [--min-rps <f>] [--max-hot-p99-ns <N>]"
    );
    ExitCode::from(2)
}

/// The compiled feature set, as recorded in ledger fingerprints: ledger
/// baselines from a simd build must not gate a baseline build.
fn build_features() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        ""
    }
}

/// The shared tail of every single-file subcommand: appends the run's
/// ledger record (fingerprint, engine counters, stage rollups,
/// wall-clock) and reports success. Failed runs never reach this, so
/// aborted-early wall times cannot poison the sentinel's baselines.
fn finish_file_cmd(cmd: &str, seed: u64, engine: &Engine, t0: Instant) -> ExitCode {
    let rec = history::engine_record(
        cmd,
        seed,
        build_features(),
        0,
        engine,
        t0.elapsed().as_nanos() as u64,
    );
    history::append_best_effort(&rec);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("bench") {
        return bench_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return trace_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("chaos") {
        return chaos_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("gen") {
        return gen_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("perf") {
        return perf_cmd(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("loadgen") {
        return loadgen_cmd(&args[1..]);
    }
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return usage(),
    };
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let seed = match args.iter().position(|a| a == "--seed") {
        None => 42u64,
        Some(i) => match args.get(i + 1).map(|v| v.parse::<u64>()) {
            Some(Ok(s)) => s,
            Some(Err(_)) => {
                eprintln!("tepic-cc: --seed wants an unsigned 64-bit integer");
                return ExitCode::from(2);
            }
            None => {
                eprintln!("tepic-cc: --seed needs a value");
                return ExitCode::from(2);
            }
        },
    };

    // The input's file stem joins the ledger group label so runs over
    // different programs never share a sentinel baseline.
    let stem = std::path::Path::new(file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("stdin");
    let cmd_group = format!("{cmd}/{stem}");

    let source = if file == "-" {
        let mut s = String::new();
        if std::io::stdin().read_to_string(&mut s).is_err() {
            eprintln!("tepic-cc: cannot read stdin");
            return ExitCode::FAILURE;
        }
        s
    } else {
        match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tepic-cc: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let opts = lego::Options {
        optimize,
        ..lego::Options::default()
    };
    // The file's path names the cached artifacts; the key still hashes
    // the source text, so editing the file misses cleanly.
    let t0 = Instant::now();
    let engine = Engine::from_env();
    let program = match engine.program(file, &source, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => match Emulator::new(&program).run(&Limits::default()) {
            Ok(r) => {
                print!("{}", r.output);
                finish_file_cmd(&cmd_group, seed, &engine, t0)
            }
            Err(e) => {
                eprintln!("tepic-cc: runtime error: {e}");
                ExitCode::FAILURE
            }
        },
        "disasm" => {
            print!("{}", program.listing());
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        "report" => {
            print!("{}", engine.report(file, &source, &opts, &program));
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        "verilog" => {
            let spec = TailoredSpec::compute(&program);
            print!(
                "{}",
                emit_tailored_decoder_verilog(&spec, "tepic_tailored_decoder")
            );
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        "sim" => {
            let trace = match engine.trace(file, &source, &opts, &program) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tepic-cc: runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let base = schemes::base::encode_base(&program);
            let images: Vec<EncodedProgram> = match ["tailored", "full"]
                .iter()
                .map(|s| engine.image(file, &source, &opts, s, &program))
                .collect()
            {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("tepic-cc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!(
                "{:<11} {:>7} {:>9} {:>8} {:>9}",
                "config", "IPC", "pred", "I$ hit", "flips"
            );
            for (name, img, cfg) in [
                ("ideal", &base, FetchConfig::ideal()),
                ("base", &base, FetchConfig::base()),
                ("tailored", &images[0], FetchConfig::tailored()),
                ("compressed", &images[1], FetchConfig::compressed()),
            ] {
                let r = simulate(&program, img, &trace, &cfg);
                println!(
                    "{name:<11} {:>7.3} {:>8.1}% {:>7.1}% {:>9}",
                    r.ipc(),
                    r.pred_accuracy() * 100.0,
                    r.cache_hit_rate() * 100.0,
                    r.bus_bit_flips
                );
            }
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        "faultsim" => {
            let cfg = CampaignConfig {
                seed,
                ..CampaignConfig::default()
            };
            let report = run_campaign(&program, &cfg);
            print!("{}", report.render());
            // Per-site outcomes also flow through the shared metrics
            // registry — the same reporting path bench and trace use.
            let registry = MetricsRegistry::new();
            report.record_metrics(&registry);
            println!();
            println!("metrics ({} series):", registry.len());
            print!("{}", registry.dump_text());
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        "stats" => {
            println!("functions   : {}", program.funcs().len());
            println!("blocks      : {}", program.num_blocks());
            println!("operations  : {}", program.num_ops());
            println!("MultiOps    : {}", program.num_mops());
            println!(
                "static ILP  : {:.2} ops/MOP",
                program.num_ops() as f64 / program.num_mops() as f64
            );
            println!("code size   : {} bytes", program.code_size());
            println!("data size   : {} bytes", program.data().len());
            match engine.trace(file, &source, &opts, &program) {
                Ok(trace) => {
                    let stats = yula::TraceStats::compute(&program, &trace);
                    println!("dyn ops     : {}", stats.ops);
                    println!("dyn blocks  : {}", stats.blocks);
                    println!("MOP density : {:.2}", stats.avg_mop_density());
                    println!("taken frac  : {:.2}", stats.taken_fraction);
                    let counts = trace.block_counts(program.num_blocks());
                    let mut hot: Vec<(usize, u64)> = counts
                        .iter()
                        .copied()
                        .enumerate()
                        .filter(|&(_, c)| c > 0)
                        .collect();
                    hot.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                    let top = 8.min(hot.len());
                    println!("hottest blocks (top {top} of {} executed):", hot.len());
                    for &(b, execs) in hot.iter().take(top) {
                        let ops = program.block_ops(b).len() as u64;
                        println!(
                            "  block {b:>4}: {execs:>10} execs x {ops:>2} ops = {:>12} dyn ops",
                            execs * ops
                        );
                    }
                }
                Err(e) => println!("dyn         : <runtime error: {e}>"),
            }
            let snap = engine.snapshot();
            let ms = |ns: u64| ns as f64 / 1e6;
            println!(
                "stage time  : compile {:.1} ms, emulate {:.1} ms (cold work this run)",
                ms(snap.compile_ns),
                ms(snap.emulate_ns),
            );
            finish_file_cmd(&cmd_group, seed, &engine, t0)
        }
        _ => usage(),
    }
}

/// The figure suite, as one flag-ordered list of (name, needs-reports,
/// render) entries. `--figures` picks by name; the default set is the
/// paper's core figures; `--all` adds the extensions.
const CORE_FIGURES: [&str; 8] = [
    "table1", "table2", "fig05", "fig07", "fig10", "fig13", "fig14", "diag",
];
const EXT_FIGURES: [&str; 8] = [
    "ablations",
    "sweep_cache",
    "stream_explorer",
    "ext_complex_units",
    "ext_entropy_limit",
    "ext_fault_campaign",
    "ext_gshare",
    "ext_tail_duplication",
];

fn render_figure(
    name: &str,
    prepared: &[Prepared],
    reports: &[CompressionReport],
) -> Option<String> {
    Some(match name {
        "table1" => figures::table1(),
        "table2" => figures::table2(),
        "fig05" => figures::fig05(reports),
        "fig07" => figures::fig07(reports, prepared),
        "fig10" => figures::fig10(reports),
        "fig13" => figures::fig13(prepared),
        "fig14" => figures::fig14(prepared),
        "diag" => figures::diag(prepared),
        "ablations" => figures::ablations(prepared),
        "sweep_cache" => figures::sweep_cache(prepared),
        "stream_explorer" => figures::stream_explorer(prepared),
        "ext_complex_units" => figures::ext_complex_units(prepared),
        "ext_entropy_limit" => figures::ext_entropy_limit(prepared),
        "ext_fault_campaign" => figures::ext_fault_campaign(prepared, &CampaignConfig::default()),
        "ext_gshare" => figures::ext_gshare(prepared),
        "ext_tail_duplication" => figures::ext_tail_duplication(prepared),
        _ => return None,
    })
}

fn bench_cmd(args: &[String]) -> ExitCode {
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut cache_dir: Option<String> = None;
    let mut figure_list: Option<Vec<String>> = None;
    let mut all = false;
    let mut assert_warm = false;
    let mut lut_bits: Vec<u32> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("tepic-cc bench: --jobs wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => no_cache = true,
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = Some(d.clone()),
                None => {
                    eprintln!("tepic-cc bench: --cache-dir needs a path");
                    return ExitCode::from(2);
                }
            },
            "--figures" => match it.next() {
                Some(list) => {
                    figure_list = Some(list.split(',').map(|s| s.trim().to_string()).collect())
                }
                None => {
                    eprintln!("tepic-cc bench: --figures needs a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--all" => all = true,
            "--assert-warm" => assert_warm = true,
            "--lut-bits" => match it.next() {
                Some(list) if list.split(',').all(|p| p.trim().parse::<u32>().is_ok()) => {
                    lut_bits = list
                        .split(',')
                        .map(|p| p.trim().parse::<u32>().unwrap().clamp(8, 16))
                        .collect();
                    lut_bits.dedup();
                }
                _ => {
                    eprintln!("tepic-cc bench: --lut-bits wants n[,n..] with n in 8..=16");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("tepic-cc bench: unknown option {other}");
                return usage();
            }
        }
    }

    let jobs = jobs
        .or_else(|| {
            std::env::var("CCC_JOBS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or_else(tepic_ccc::bench::engine::default_jobs);
    let engine = if no_cache {
        Engine::uncached(jobs)
    } else {
        let dir = cache_dir
            .map(std::path::PathBuf::from)
            .or_else(|| std::env::var("CCC_CACHE_DIR").ok().map(Into::into))
            .unwrap_or_else(tepic_ccc::bench::engine::default_cache_dir);
        match Engine::with_cache_dir(jobs, &dir) {
            Ok(e) => e,
            Err(err) => {
                eprintln!(
                    "tepic-cc bench: cannot open cache at {}: {err}",
                    dir.display()
                );
                return ExitCode::FAILURE;
            }
        }
    };

    // The figure selection joins the ledger group label — a fig05-only
    // run and the full core set are not comparable wall-clocks.
    let (selected, figure_label): (Vec<String>, String) = match figure_list {
        Some(list) => {
            let label = list.join("+");
            (list, label)
        }
        None if all => (
            CORE_FIGURES
                .iter()
                .chain(EXT_FIGURES.iter())
                .map(|s| s.to_string())
                .collect(),
            "all".to_string(),
        ),
        None => (
            CORE_FIGURES.iter().map(|s| s.to_string()).collect(),
            "core".to_string(),
        ),
    };
    for name in &selected {
        if !CORE_FIGURES.contains(&name.as_str()) && !EXT_FIGURES.contains(&name.as_str()) {
            eprintln!("tepic-cc bench: unknown figure {name}");
            return ExitCode::from(2);
        }
    }

    eprintln!(
        "tepic-cc bench: {} figure(s), jobs={}, cache={}",
        selected.len(),
        engine.jobs(),
        if engine.is_cached() { "on" } else { "off" }
    );

    let t0 = Instant::now();
    let prepared = match engine.prepare_all() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let reports = engine.reports(&prepared);
    let prepare_wall = t0.elapsed();

    let t1 = Instant::now();
    for name in &selected {
        let text = render_figure(name, &prepared, &reports).expect("validated above");
        println!("==================== {name} ====================");
        println!("{text}");
    }
    let render_wall = t1.elapsed();

    let snap = engine.snapshot();
    println!("==================== engine ====================");
    print!("{}", snap.render());
    println!(
        "  wall    prepare {:>9.1} ms   figures {:>9.1} ms   (jobs = {})",
        prepare_wall.as_secs_f64() * 1e3,
        render_wall.as_secs_f64() * 1e3,
        engine.jobs()
    );

    // Decode-effort panel: the real decompressor over every workload's
    // fully-compressed image, printed alongside the cache stats so one
    // invocation shows both where time went and what decoding cost.
    println!("==================== decode ====================");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>9} {:>7}",
        "workload", "blocks", "ops", "stall-bits", "LUT-long", "errors"
    );
    let mut tot = DecodeStats::default();
    for p in &prepared {
        match schemes::full::FullScheme::default().compress(&p.program) {
            Ok(out) => {
                let (_, ds) = simulate_decoded(
                    &p.program,
                    &p.compressed_img,
                    &p.trace,
                    &FetchConfig::compressed(),
                    out.codec.as_ref(),
                );
                println!(
                    "{:<10} {:>8} {:>10} {:>12} {:>9} {:>7}",
                    p.workload.name,
                    ds.blocks_decoded,
                    ds.ops_decoded,
                    ds.stall_bits,
                    ds.long_fallbacks,
                    ds.decode_errors
                );
                tot.blocks_decoded += ds.blocks_decoded;
                tot.ops_decoded += ds.ops_decoded;
                tot.decode_errors += ds.decode_errors;
                tot.long_fallbacks += ds.long_fallbacks;
                tot.stall_bits += ds.stall_bits;
            }
            Err(e) => println!("{:<10} <compress failed: {e}>", p.workload.name),
        }
    }
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>9} {:>7}",
        "total",
        tot.blocks_decoded,
        tot.ops_decoded,
        tot.stall_bits,
        tot.long_fallbacks,
        tot.decode_errors
    );

    // `--lut-bits`: sequential-LUT decode throughput per first-level
    // table size, over each workload's full-scheme op-word book (the
    // same sweep `cargo bench -p ccc-bench --bench decode_throughput
    // -- --lut-bits ..` runs over all schemes).
    if !lut_bits.is_empty() {
        use tepic_ccc::huffman::{BitReader, BitWriter, Dictionary, LutDecoder};
        println!("==================== lut-bits sweep ====================");
        let header: Vec<String> = lut_bits.iter().map(|b| format!("{b:>4}b MB/s",)).collect();
        println!("{:<10} {}", "workload", header.join("  "));
        for p in &prepared {
            let words = p.program.op_words();
            let dict: Dictionary<u64> = words.iter().copied().collect();
            let book = match CodeBook::bounded_from_freqs(dict.freqs(), 24) {
                Ok(b) => b,
                Err(e) => {
                    println!("{:<10} <book failed: {e}>", p.workload.name);
                    continue;
                }
            };
            let syms: Vec<u32> = words.iter().map(|w| dict.id_of(w).unwrap()).collect();
            let mut bw = BitWriter::new();
            for &s in &syms {
                book.encode_into(s, &mut bw);
            }
            let bytes = bw.into_bytes();
            let cols: Vec<String> = lut_bits
                .iter()
                .map(|&bits| {
                    let dec = LutDecoder::with_lut_bits(&book, bits);
                    // Best of a few timed passes: interference only adds
                    // time, so the minimum estimates the kernel's cost.
                    let mut best = f64::INFINITY;
                    for _ in 0..5 {
                        let t = Instant::now();
                        let out = dec
                            .decode_n(&mut BitReader::new(&bytes), syms.len())
                            .unwrap();
                        let el = t.elapsed().as_secs_f64();
                        std::hint::black_box(&out);
                        best = best.min(el);
                    }
                    format!("{:>9.1}", bytes.len() as f64 / best / 1e6)
                })
                .collect();
            println!("{:<10} {}", p.workload.name, cols.join("  "));
        }
    }

    if assert_warm {
        let expected_images =
            (prepared.len() * tepic_ccc::bench::engine::MATRIX_SCHEMES.len()) as u64;
        if snap.misses() != 0 || snap.image_hits != expected_images {
            eprintln!(
                "tepic-cc bench: --assert-warm failed: {} misses, {}/{} image hits",
                snap.misses(),
                snap.image_hits,
                expected_images
            );
            return ExitCode::FAILURE;
        }
        println!("  warm-cache assertion held: 0 misses, {expected_images} image hits.");
    }

    let mut rec = history::engine_record(
        &format!("bench/{figure_label}"),
        0,
        build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    );
    rec.samples.insert(
        "prepare_wall_ns".to_string(),
        prepare_wall.as_nanos() as f64,
    );
    rec.samples
        .insert("figures_wall_ns".to_string(), render_wall.as_nanos() as f64);
    history::append_best_effort(&rec);
    ExitCode::SUCCESS
}

fn trace_cmd(args: &[String]) -> ExitCode {
    use tepic_ccc::telemetry::{
        chrome_trace_json, metrics_snapshot_json, observe_fetch_histograms, Clock, MonotonicClock,
        TraceEvent, TraceMeta,
    };

    let t0 = Instant::now();

    let mut workload: Option<String> = None;
    let mut scheme = "full".to_string();
    let mut out_path = "trace.json".to_string();
    let mut check = std::env::var("CCC_TRACE_SMOKE").is_ok_and(|v| v == "1");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workload" => match it.next() {
                Some(w) => workload = Some(w.clone()),
                None => {
                    eprintln!("tepic-cc trace: --workload needs a name");
                    return ExitCode::from(2);
                }
            },
            "--scheme" => match it.next() {
                Some(s) => scheme = s.clone(),
                None => {
                    eprintln!("tepic-cc trace: --scheme needs a name");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("tepic-cc trace: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            "--check" => check = true,
            other => {
                eprintln!("tepic-cc trace: unknown option {other}");
                return usage();
            }
        }
    }
    let Some(workload) = workload else {
        eprintln!(
            "tepic-cc trace: --workload is required; known: {}",
            workloads::known_names()
        );
        return ExitCode::from(2);
    };
    // by_name_or_err's failure path lists every known benchmark, so a
    // typo'd name is a one-round-trip fix.
    let w = match workloads::by_name_or_err(&workload) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("tepic-cc trace: {e}");
            return ExitCode::from(2);
        }
    };
    if tepic_ccc::bench::engine::scheme_by_name(&scheme).is_none() {
        eprintln!("tepic-cc trace: unknown scheme {scheme}");
        return ExitCode::from(2);
    }

    // Always a cold engine: the compile/emulate/encode spans only exist
    // when the stages actually run, and a warm cache would skip them.
    let sink = SharedSink::new(1 << 20);
    let engine =
        Engine::uncached(tepic_ccc::bench::engine::default_jobs()).with_trace_sink(sink.clone());
    let opts = lego::Options::default();
    let program = match engine.program(w.name, w.source(), &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let btrace = match engine.trace(w.name, w.source(), &opts, &program) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tepic-cc trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let image = match engine.image(w.name, w.source(), &opts, &scheme, &program) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("tepic-cc trace: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Base and Tailored fetch uncompressed/re-laid-out code — no serial
    // decoder on their hit path; everything else decompresses for real.
    let clock = MonotonicClock::new();
    let (cfg, codec) = match scheme.as_str() {
        "base" => (FetchConfig::base(), None),
        "tailored" => (FetchConfig::tailored(), None),
        _ => {
            let codec_start = clock.now_ns();
            let out = match tepic_ccc::bench::engine::scheme_by_name(&scheme)
                .expect("validated above")
                .compress(&program)
            {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("tepic-cc trace: {scheme}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            sink.record(TraceEvent::Span {
                name: "codec",
                detail: format!("{}/{scheme}", w.name),
                id: engine.next_span_id(),
                parent: 0,
                start_ns: codec_start,
                dur_ns: clock.now_ns().saturating_sub(codec_start),
            });
            (FetchConfig::compressed(), Some(out.codec))
        }
    };

    let mut fetch_sink = sink.clone();
    let sim_start = clock.now_ns();
    let (result, dstats) = match &codec {
        Some(c) => {
            simulate_decoded_traced(&program, &image, &btrace, &cfg, c.as_ref(), &mut fetch_sink)
        }
        None => (
            simulate_traced(&program, &image, &btrace, &cfg, &mut fetch_sink),
            DecodeStats::default(),
        ),
    };
    let sim_ns = clock.now_ns().saturating_sub(sim_start);
    sink.record(TraceEvent::Span {
        name: "simulate",
        detail: format!("{}/{}", w.name, scheme),
        id: engine.next_span_id(),
        parent: 0,
        start_ns: sim_start,
        dur_ns: sim_ns,
    });

    let registry = MetricsRegistry::new();
    result.record_metrics(&registry);
    dstats.record_metrics(&registry);
    engine.snapshot().record_metrics(&registry);

    let meta = TraceMeta {
        workload: w.name.to_string(),
        scheme: scheme.clone(),
        counts: sink.counts(),
        dropped: sink.dropped(),
    };
    let events = sink.drain();
    // The instant events carry the stall/penalty/fill distributions the
    // counters flatten; fold them into histograms so the snapshot's
    // quantiles mean something.
    observe_fetch_histograms(&events, &registry);
    let trace_json = chrome_trace_json(&events, &meta);
    let metrics_json = metrics_snapshot_json(&registry, &meta);
    if let Err(e) = write_atomic(&out_path, trace_json.as_bytes()) {
        eprintln!("tepic-cc trace: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    // metrics_snapshot_name escapes injectively, so two distinct
    // scheme names can never collide on (or traverse out of) one
    // snapshot path; the matrix schemes keep their historical names.
    let metrics_path = format!(
        "results/{}",
        tepic_ccc::telemetry::metrics_snapshot_name(&scheme)
    );
    if let Err(e) = write_atomic(&metrics_path, metrics_json.as_bytes()) {
        eprintln!("tepic-cc trace: cannot write {metrics_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "trace: {} events ({} spans, {} dropped) -> {out_path}",
        events.len(),
        meta.counts.spans,
        meta.dropped
    );
    println!("metrics: {} series -> {metrics_path}", registry.len());
    println!(
        "fetch: IPC {:.3}, pred {:.1}%, I$ hit {:.1}%; decode: {} blocks, {} stall bits, {} LUT fallbacks",
        result.ipc(),
        result.pred_accuracy() * 100.0,
        result.cache_hit_rate() * 100.0,
        dstats.blocks_decoded,
        dstats.stall_bits,
        dstats.long_fallbacks
    );
    if check {
        match validate_trace(&trace_json, &metrics_json, &scheme) {
            Ok(()) => println!("check: trace/metrics reconciliation and span coverage held"),
            Err(e) => {
                eprintln!("tepic-cc trace: check failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Scheme and workload join the group label: a tailored-scheme trace
    // and a full-scheme trace have different cost shapes, and the
    // sentinel must only compare like with like.
    let mut rec = history::engine_record(
        &format!("trace/{}/{scheme}", w.name),
        0,
        build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    );
    rec.samples.insert("simulate_ns".to_string(), sim_ns as f64);
    history::append_best_effort(&rec);
    ExitCode::SUCCESS
}

/// The default chaos fault mix: every site class the engine registers,
/// at rates high enough to guarantee coverage over a full figure run
/// yet far below the retry budget's give-up horizon.
const DEFAULT_CHAOS_SITES: &str = "cache.read:0.2:io,cache.read:0.15:corrupt,\
                                   cache.write:0.2:io,cache.rename:0.1:io,\
                                   pool.job:0.1:panic,stage.compile:0.2:flaky,\
                                   stage.emulate:0.15:flaky,stage.encode:0.2:flaky,\
                                   stage.report:0.15:flaky,decode.lut:0.5:error";

/// Silences panic output for injected `pool.job` faults (the isolated
/// pool catches them; the default hook's backtraces would drown the
/// chaos summary) while leaving real panics loud.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
        if msg.is_some_and(|m| m.contains("injected failpoint")) {
            return;
        }
        default_hook(info);
    }));
}

/// Renders the core figure suite to one comparable string.
fn figure_suite_text(prepared: &[Prepared], reports: &[CompressionReport]) -> String {
    let mut s = String::new();
    for name in CORE_FIGURES {
        s.push_str("==================== ");
        s.push_str(name);
        s.push_str(" ====================\n");
        s.push_str(&render_figure(name, prepared, reports).expect("core figure"));
        s.push('\n');
    }
    s
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn chaos_cmd(args: &[String]) -> ExitCode {
    use std::sync::Arc;
    use tepic_ccc::bench::engine::RecoverySnapshot;
    use tepic_ccc::ccc::failpoint::{class_of, sites, FailMode, Failpoints, REQUIRED_CLASSES};

    let mut seed = 42u64;
    let mut sites_spec = DEFAULT_CHAOS_SITES.to_string();
    // CCC_CHAOS_SMOKE=1 is the CI gate: one chaos run, same assertions.
    let mut runs = if std::env::var("CCC_CHAOS_SMOKE").is_ok_and(|v| v == "1") {
        1
    } else {
        2
    };
    let mut jobs: Option<usize> = None;
    let mut out_path = "results/CHAOS_report.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => {
                    eprintln!("tepic-cc chaos: --seed wants an unsigned 64-bit integer");
                    return ExitCode::from(2);
                }
            },
            "--sites" => match it.next() {
                Some(s) => sites_spec = s.clone(),
                None => {
                    eprintln!("tepic-cc chaos: --sites needs a site:prob:mode[,..] spec");
                    return ExitCode::from(2);
                }
            },
            "--runs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => runs = n,
                _ => {
                    eprintln!("tepic-cc chaos: --runs wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("tepic-cc chaos: --jobs wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_path = p.clone(),
                None => {
                    eprintln!("tepic-cc chaos: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("tepic-cc chaos: unknown option {other}");
                return usage();
            }
        }
    }
    if let Err(e) = Failpoints::from_spec(&sites_spec, 0) {
        eprintln!("tepic-cc chaos: --sites: {e}");
        return ExitCode::from(2);
    }
    let jobs = jobs
        .or_else(|| {
            std::env::var("CCC_JOBS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or_else(tepic_ccc::bench::engine::default_jobs);
    quiet_injected_panics();
    let root = std::path::Path::new("target/ccc-chaos");

    // One pass of the full figure pipeline: fresh engine over `dir`,
    // optionally with an armed failpoint registry.
    let pass = |dir: &std::path::Path,
                fp: Option<&Arc<Failpoints>>|
     -> Result<(Vec<Prepared>, String, RecoverySnapshot), String> {
        let engine = Engine::with_cache_dir(jobs, dir)
            .map_err(|e| format!("cannot open cache at {}: {e}", dir.display()))?;
        let engine = match fp {
            Some(fp) => engine.with_failpoints(Arc::clone(fp)),
            None => engine,
        };
        let prepared = engine.prepare_all().map_err(|e| e.to_string())?;
        let reports = engine.reports(&prepared);
        let text = figure_suite_text(&prepared, &reports);
        Ok((prepared, text, engine.recovery()))
    };

    // The decode phase: the real decompressor over every workload's
    // full-Huffman image, with LUT faults injected when `fp` is armed.
    let decode_all = |prepared: &[Prepared],
                      fp: Option<&Failpoints>|
     -> Result<(Vec<FetchResult>, u64), String> {
        let mut out = Vec::with_capacity(prepared.len());
        let mut fallbacks = 0u64;
        for p in prepared {
            let full = schemes::full::FullScheme::default()
                .compress(&p.program)
                .map_err(|e| format!("{}: compress: {e}", p.workload.name))?;
            let cfg = FetchConfig::compressed();
            let (r, ds) = match fp {
                Some(fp) => simulate_decoded_injected(
                    &p.program,
                    &full.image,
                    &p.trace,
                    &cfg,
                    full.codec.as_ref(),
                    fp,
                ),
                None => {
                    simulate_decoded(&p.program, &full.image, &p.trace, &cfg, full.codec.as_ref())
                }
            };
            fallbacks += ds.reference_fallbacks;
            out.push(r);
        }
        Ok((out, fallbacks))
    };

    // Clean baseline: a cold run with no faults armed.
    eprintln!("tepic-cc chaos: baseline (jobs={jobs}, sites={sites_spec})");
    let clean_dir = root.join("clean");
    let _ = std::fs::remove_dir_all(&clean_dir);
    let (clean_prepared, baseline, _) = match pass(&clean_dir, None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tepic-cc chaos: baseline failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (clean_decode, _) = match decode_all(&clean_prepared, None) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("tepic-cc chaos: baseline decode failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let t0 = Instant::now();
    let mut all_ok = true;
    let mut coverage: Vec<(&'static str, u64)> = Vec::new();
    let mut run_jsons = Vec::new();
    for r in 0..runs {
        let run_seed = seed.wrapping_add(r as u64);
        let fp = match Failpoints::from_spec(&sites_spec, run_seed) {
            Ok(fp) => Arc::new(fp),
            Err(e) => {
                eprintln!("tepic-cc chaos: {e}");
                return ExitCode::FAILURE;
            }
        };
        let dir = root.join(format!("run-{r}"));
        let _ = std::fs::remove_dir_all(&dir);

        // Cold pass builds everything under fire; the warm pass re-reads
        // whatever survived, exercising the cache.read sites on real
        // entries; the decode phase forces the LUT fallback path.
        let mut error = String::new();
        let mut cold_identical = false;
        let mut warm_identical = false;
        let mut decode_identical = false;
        let mut fallbacks = 0u64;
        let mut recs: Vec<RecoverySnapshot> = Vec::new();
        match pass(&dir, Some(&fp)) {
            Err(e) => error = format!("cold pass: {e}"),
            Ok((prepared, text, rec)) => {
                cold_identical = text == baseline;
                recs.push(rec);
                match decode_all(&prepared, Some(&fp)) {
                    Err(e) => error = format!("decode: {e}"),
                    Ok((results, fb)) => {
                        decode_identical = results == clean_decode;
                        fallbacks = fb;
                        match pass(&dir, Some(&fp)) {
                            Err(e) => error = format!("warm pass: {e}"),
                            Ok((_, text, rec)) => {
                                warm_identical = text == baseline;
                                recs.push(rec);
                            }
                        }
                    }
                }
            }
        }

        // Reconcile: every injected fault must be accounted for by
        // exactly one recovery action (DESIGN.md §13).
        let rsum = |f: fn(&RecoverySnapshot) -> u64| recs.iter().map(f).sum::<u64>();
        let stage_fired: u64 = [
            sites::STAGE_COMPILE,
            sites::STAGE_EMULATE,
            sites::STAGE_ENCODE,
            sites::STAGE_REPORT,
        ]
        .iter()
        .map(|s| fp.fired(s, FailMode::Flaky))
        .sum();
        let checks: [(&str, u64, u64); 6] = [
            (
                "cache.read:io == transient read faults",
                fp.fired(sites::CACHE_READ, FailMode::Io),
                rsum(|x| x.cache_read_faults),
            ),
            (
                "cache.read:corrupt == quarantined entries",
                fp.fired(sites::CACHE_READ, FailMode::Corrupt),
                rsum(|x| x.quarantined),
            ),
            (
                "cache.{write,rename}:io == failed store attempts",
                fp.fired(sites::CACHE_WRITE, FailMode::Io)
                    + fp.fired(sites::CACHE_RENAME, FailMode::Io),
                rsum(|x| x.cache_write_faults),
            ),
            (
                "pool.job:panic == caught job panics",
                fp.fired(sites::POOL_JOB, FailMode::Panic),
                rsum(|x| x.job_panics),
            ),
            (
                "stage.*:flaky == stage faults retried",
                stage_fired,
                rsum(|x| x.stage_faults),
            ),
            (
                "decode.lut:error == reference fallbacks",
                fp.fired(sites::DECODE_LUT, FailMode::Error),
                fallbacks,
            ),
        ];
        let reconciled = checks.iter().all(|&(_, inj, rec)| inj == rec);
        for &(name, inj, rec) in &checks {
            if inj != rec {
                eprintln!(
                    "tepic-cc chaos: run {r}: MISMATCH {name}: injected {inj}, recovered {rec}"
                );
            }
        }

        // Injection census for the report, and class coverage.
        let log = fp.log();
        let mut census: Vec<(String, u64)> = Vec::new();
        for inj in &log {
            let key = format!("{}:{}", inj.site, inj.mode);
            match census.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => census.push((key, 1)),
            }
            let class = class_of(&inj.site);
            match coverage.iter_mut().find(|(c, _)| *c == class) {
                Some((_, n)) => *n += 1,
                None => coverage.push((class, 1)),
            }
        }
        census.sort();

        let ok =
            error.is_empty() && cold_identical && warm_identical && decode_identical && reconciled;
        all_ok &= ok;
        let verdict = |b: bool| if b { "identical" } else { "DIVERGED" };
        if error.is_empty() {
            println!(
                "chaos run {}/{runs} (seed {run_seed}): {} faults injected; figures cold={} warm={} decode={}; {}",
                r + 1,
                log.len(),
                verdict(cold_identical),
                verdict(warm_identical),
                verdict(decode_identical),
                if reconciled { "reconciled" } else { "NOT RECONCILED" },
            );
        } else {
            println!(
                "chaos run {}/{runs} (seed {run_seed}): FAILED: {error}",
                r + 1
            );
        }

        let recovery_totals: [(&str, u64); 11] = [
            ("cache_read_faults", rsum(|x| x.cache_read_faults)),
            ("cache_read_giveups", rsum(|x| x.cache_read_giveups)),
            ("quarantined", rsum(|x| x.quarantined)),
            ("cache_write_faults", rsum(|x| x.cache_write_faults)),
            ("cache_write_giveups", rsum(|x| x.cache_write_giveups)),
            ("job_panics", rsum(|x| x.job_panics)),
            ("job_retries", rsum(|x| x.job_retries)),
            ("job_giveups", rsum(|x| x.job_giveups)),
            ("stage_faults", rsum(|x| x.stage_faults)),
            ("stage_giveups", rsum(|x| x.stage_giveups)),
            ("reference_fallbacks", fallbacks),
        ];
        let injected_json = census
            .iter()
            .map(|(k, n)| format!("\"{}\": {n}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(", ");
        let recovery_json = recovery_totals
            .iter()
            .map(|(k, n)| format!("\"{k}\": {n}"))
            .collect::<Vec<_>>()
            .join(", ");
        run_jsons.push(format!(
            "    {{\n      \"seed\": {run_seed},\n      \"ok\": {ok},\n      \
             \"error\": \"{}\",\n      \"figures_cold_identical\": {cold_identical},\n      \
             \"figures_warm_identical\": {warm_identical},\n      \
             \"decode_identical\": {decode_identical},\n      \
             \"reconciled\": {reconciled},\n      \"total_injected\": {},\n      \
             \"injected\": {{{injected_json}}},\n      \"recovery\": {{{recovery_json}}}\n    }}",
            json_escape(&error),
            log.len(),
        ));
    }

    // Campaign-wide coverage: every required site class must have fired
    // at least once, or the run proved nothing about that class.
    coverage.sort();
    let mut missing = Vec::new();
    for class in REQUIRED_CLASSES {
        if !coverage.iter().any(|&(c, n)| c == class && n > 0) {
            missing.push(class);
        }
    }
    if !missing.is_empty() {
        eprintln!("tepic-cc chaos: no injected faults in class(es): {missing:?}");
        all_ok = false;
    }
    let coverage_json = coverage
        .iter()
        .map(|(c, n)| format!("\"{c}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let report = format!(
        "{{\n  \"seed\": {seed},\n  \"runs\": {runs},\n  \"jobs\": {jobs},\n  \
         \"sites\": \"{}\",\n  \"figures\": [{}],\n  \"coverage\": {{{coverage_json}}},\n  \
         \"runs_detail\": [\n{}\n  ],\n  \"ok\": {all_ok}\n}}\n",
        json_escape(&sites_spec),
        CORE_FIGURES
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        run_jsons.join(",\n"),
    );
    if let Err(e) = write_atomic(&out_path, report.as_bytes()) {
        eprintln!("tepic-cc chaos: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "chaos: {} run(s) in {:.1} s; coverage {:?}; report -> {out_path}",
        runs,
        t0.elapsed().as_secs_f64(),
        coverage,
    );
    if all_ok {
        println!("chaos: all figures byte-identical under fault injection; recovery reconciled.");
        // Smoke (one run) and full campaigns are different workloads to
        // the sentinel.
        let mode = if std::env::var("CCC_CHAOS_SMOKE").is_ok_and(|v| v == "1") {
            "smoke"
        } else {
            "full"
        };
        let rec = history::base_record(
            &format!("chaos/{mode}"),
            seed,
            build_features(),
            0,
            t0.elapsed().as_nanos() as u64,
        );
        history::append_best_effort(&rec);
        ExitCode::SUCCESS
    } else {
        eprintln!("tepic-cc chaos: FAILED (see {out_path})");
        ExitCode::FAILURE
    }
}

/// Cross-checks an emitted Chrome trace against its metrics snapshot:
/// both parse, every pipeline stage the traced scheme exercises has a
/// span, the span ids/parents form a well-formed forest, nothing was
/// dropped, and the per-kind event totals agree with the `fetch.*`
/// counters — the CLI-level version of the engine's internal
/// reconciliation.
fn validate_trace(trace_json: &str, metrics_json: &str, scheme: &str) -> Result<(), String> {
    use tepic_ccc::telemetry::{parse_json, JsonValue};
    let t = parse_json(trace_json).map_err(|e| format!("trace JSON: {e}"))?;
    let m = parse_json(metrics_json).map_err(|e| format!("metrics JSON: {e}"))?;
    let events = t
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("traceEvents missing")?;
    // Per-scheme span coverage: every scheme runs the engine stages and
    // the fetch simulation; the compressed schemes must additionally
    // show the codec-construction span (base and tailored fetch without
    // a serial decoder, so demanding it there would always fail).
    let mut required = vec!["compile", "emulate", "encode", "simulate"];
    if !matches!(scheme, "base" | "tailored") {
        required.push("codec");
    }
    for stage in required {
        let n = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("X")
                    && e.get("name").and_then(JsonValue::as_str) == Some(stage)
            })
            .count();
        if n == 0 {
            return Err(format!("no {stage} span in trace (scheme {scheme})"));
        }
    }
    // Causal integrity of the emitted spans: ids unique and non-zero,
    // every parent link resolving to a span in the same trace.
    let mut span_ids = Vec::new();
    for e in events.iter() {
        if e.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let args = e.get("args").ok_or("span without args")?;
        let id = args
            .get("id")
            .and_then(JsonValue::as_f64)
            .ok_or("span without id")?;
        if id == 0.0 {
            return Err("span with id 0".to_string());
        }
        if span_ids.contains(&id) {
            return Err(format!("duplicate span id {id}"));
        }
        span_ids.push(id);
    }
    for e in events.iter() {
        if e.get("ph").and_then(JsonValue::as_str) != Some("X") {
            continue;
        }
        let parent = e
            .get("args")
            .and_then(|a| a.get("parent"))
            .and_then(JsonValue::as_f64)
            .ok_or("span without parent")?;
        if parent != 0.0 && !span_ids.contains(&parent) {
            return Err(format!("span parent {parent} names no span"));
        }
    }
    let meta = t.get("metadata").ok_or("metadata missing")?;
    match meta.get("dropped").and_then(JsonValue::as_f64) {
        Some(0.0) => {}
        Some(n) => return Err(format!("{n} events dropped from the ring")),
        None => return Err("metadata.dropped missing".to_string()),
    }
    let counts = meta.get("counts").ok_or("metadata.counts missing")?;
    let counters = m
        .get("metrics")
        .and_then(|v| v.get("counters"))
        .ok_or("metrics.counters missing")?;
    let num = |obj: &JsonValue, k: &str| obj.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
    for (kind, metric) in [
        ("cache_hit", "fetch.cache_hits"),
        ("cache_miss", "fetch.cache_misses"),
        ("atb_hit", "fetch.atb_hits"),
        ("atb_miss", "fetch.atb_misses"),
        ("pred_correct", "fetch.pred_correct"),
        ("pred_wrong", "fetch.pred_wrong"),
        ("l0_hit", "fetch.buffer_hits"),
        ("l0_fill", "fetch.buffer_misses"),
        ("decode_stall", "fetch.buffer_misses"),
        ("integrity_fault", "fetch.integrity_faults"),
    ] {
        let traced = num(counts, kind);
        let counted = num(counters, metric);
        if traced != counted {
            return Err(format!("counts.{kind} = {traced} but {metric} = {counted}"));
        }
    }
    // Nothing dropped, so the instant events in the stream must match
    // the totals kind for kind.
    for kind in [
        "cache_hit",
        "cache_miss",
        "atb_hit",
        "atb_miss",
        "pred_correct",
        "pred_wrong",
        "l0_hit",
        "l0_fill",
        "decode_stall",
        "integrity_fault",
    ] {
        let streamed = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("i")
                    && e.get("name").and_then(JsonValue::as_str) == Some(kind)
            })
            .count() as f64;
        let total = num(counts, kind);
        if streamed != total {
            return Err(format!("{kind}: {streamed} in stream, {total} in totals"));
        }
    }
    Ok(())
}

fn gen_cmd(args: &[String]) -> ExitCode {
    use tepic_ccc::ccc::fault::{run_campaign, CampaignConfig};
    use tepic_ccc::workgen::{
        generate_corpus, CalibrationReport, CampaignSummary, Flavor, MixProfile, SchemeSites, Tier,
    };
    use tepic_ccc::yula::opmix::OpMix;

    let mut seed = 42u64;
    let mut tier = Tier::Tiny;
    let mut flavor = Flavor::Tepic;
    let mut out_dir = "results/gen-corpus".to_string();
    let mut report_path = "results/GEN_report.json".to_string();
    let mut campaign = std::env::var("CCC_GEN_SMOKE").is_ok_and(|v| v == "1");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => {
                    eprintln!("tepic-cc gen: --seed wants an unsigned 64-bit integer");
                    return ExitCode::from(2);
                }
            },
            "--tier" => match it.next().map(|t| Tier::by_name(t)) {
                Some(Some(t)) => tier = t,
                _ => {
                    let known = Tier::ALL.map(Tier::name).join("|");
                    eprintln!("tepic-cc gen: --tier wants one of {known}");
                    return ExitCode::from(2);
                }
            },
            "--flavor" => match it.next().map(|f| Flavor::by_name(f)) {
                Some(Some(f)) => flavor = f,
                _ => {
                    let known = Flavor::ALL.map(Flavor::name).join("|");
                    eprintln!("tepic-cc gen: --flavor wants one of {known}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(p) => out_dir = p.clone(),
                None => {
                    eprintln!("tepic-cc gen: --out needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--report" => match it.next() {
                Some(p) => report_path = p.clone(),
                None => {
                    eprintln!("tepic-cc gen: --report needs a path");
                    return ExitCode::from(2);
                }
            },
            "--campaign" => campaign = true,
            other => {
                eprintln!("tepic-cc gen: unknown option {other}");
                return usage();
            }
        }
    }

    let start = Instant::now();
    let corpus = match generate_corpus(seed, tier, flavor) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tepic-cc gen: {e}");
            return ExitCode::from(2);
        }
    };

    // Write the corpus: one .tink per program plus a manifest, all
    // deterministic so two equal-seed invocations are byte-identical.
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("tepic-cc gen: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let mut manifest = String::new();
    for gp in &corpus.programs {
        let path = format!("{out_dir}/{}.tink", gp.name);
        if let Err(e) = write_atomic(&path, gp.source.as_bytes()) {
            eprintln!("tepic-cc gen: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        manifest.push_str(&format!(
            "{} seed={} bytes={}\n",
            gp.name,
            gp.seed,
            gp.source.len()
        ));
    }
    if let Err(e) = write_atomic(format!("{out_dir}/MANIFEST.txt"), manifest.as_bytes()) {
        eprintln!("tepic-cc gen: cannot write manifest: {e}");
        return ExitCode::FAILURE;
    }

    // Everything below flows through the prepared-workload engine, so
    // the corpus exercises the same compile/emulate/encode pipeline (and
    // artifact cache) as the real benchmark suite.
    let engine = Engine::from_env();
    let prepared = match engine.prepare(&corpus.workloads()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc gen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let programs: Vec<&Program> = prepared.iter().map(|p| &p.program).collect();
    let dynamic_ops: u64 = prepared
        .iter()
        .map(|p| OpMix::dynamic_mix(&p.program, &p.trace).total())
        .sum();
    let scheme_sites = tepic_ccc::bench::engine::MATRIX_SCHEMES
        .iter()
        .map(|&scheme| {
            let image_bytes: u64 = prepared
                .iter()
                .map(|p| p.image(scheme).expect("matrix scheme").total_bytes() as u64)
                .sum();
            SchemeSites {
                scheme: scheme.to_string(),
                image_bytes,
                sites: image_bytes * 8,
            }
        })
        .collect();

    // The smoke campaign targets the first generated program: enough to
    // prove the fault machinery accepts synthetic inputs without paying
    // for a full sweep on every generation run.
    let campaign = campaign.then(|| {
        let cfg = CampaignConfig {
            seed,
            faults_per_target: 50,
        };
        let rep = run_campaign(&prepared[0].program, &cfg);
        CampaignSummary {
            seed: rep.seed,
            faults_per_target: rep.faults_per_target as u32,
            program: prepared[0].workload.name.to_string(),
            rows: rep
                .rows
                .iter()
                .map(|r| tepic_ccc::workgen::CampaignRow {
                    scheme: r.scheme.clone(),
                    detected: r.payload.detected,
                    contained: r.payload.contained,
                    sdc: r.payload.sdc,
                    masked: r.payload.masked,
                })
                .collect(),
        }
    });

    let report = CalibrationReport {
        seed,
        tier: tier.name().to_string(),
        flavor: flavor.name().to_string(),
        programs: corpus.programs.len(),
        source_bytes: corpus.source_bytes(),
        static_ops: programs.iter().map(|p| p.num_ops() as u64).sum(),
        blocks: programs.iter().map(|p| p.num_blocks() as u64).sum(),
        dynamic_ops,
        target: flavor.target(),
        measured_real: MixProfile::measured_real().clone(),
        generated_static: MixProfile::from_programs(programs.iter().copied()),
        generated_dynamic: MixProfile::from_traces(prepared.iter().map(|p| (&p.program, &p.trace))),
        threshold_pp: 5.0,
        scheme_sites,
        campaign,
    };

    if let Err(e) = write_atomic(&report_path, report.to_json().as_bytes()) {
        eprintln!("tepic-cc gen: cannot write {report_path}: {e}");
        return ExitCode::FAILURE;
    }

    print!("{}", report.render());
    println!(
        "wrote {} programs to {out_dir}, report to {report_path} ({:.1}s)",
        corpus.programs.len(),
        start.elapsed().as_secs_f64()
    );
    if report.ok() {
        let rec = history::engine_record(
            &format!("gen/{}", tier.name()),
            seed,
            build_features(),
            0,
            &engine,
            start.elapsed().as_nanos() as u64,
        );
        history::append_best_effort(&rec);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tepic-cc gen: generated mix out of band ({:.2} pp > {:.1} pp)",
            report.max_delta_pp(),
            report.threshold_pp
        );
        ExitCode::FAILURE
    }
}

fn perf_cmd(args: &[String]) -> ExitCode {
    use std::path::PathBuf;
    use tepic_ccc::bench::history::SentinelConfig;
    use tepic_ccc::telemetry::ledger;

    let mut do_check = false;
    let mut do_attr = false;
    let mut ledger_override: Option<PathBuf> = None;
    let mut cfg = SentinelConfig::default();
    let mut inject: Option<f64> = None;
    let mut jobs: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => do_check = true,
            "--attr" => do_attr = true,
            "--ledger" => match it.next() {
                Some(p) => ledger_override = Some(PathBuf::from(p)),
                None => {
                    eprintln!("tepic-cc perf: --ledger needs a path");
                    return ExitCode::from(2);
                }
            },
            "--band" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(b)) if b >= 0.0 => cfg.band = b,
                _ => {
                    eprintln!("tepic-cc perf: --band wants a non-negative fraction (0.5 = 1.5x)");
                    return ExitCode::from(2);
                }
            },
            "--min-samples" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => cfg.min_samples = n,
                _ => {
                    eprintln!("tepic-cc perf: --min-samples wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--inject-slowdown" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(f)) if f > 0.0 => inject = Some(f),
                _ => {
                    eprintln!("tepic-cc perf: --inject-slowdown wants a positive factor");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => jobs = Some(n),
                _ => {
                    eprintln!("tepic-cc perf: --jobs wants a positive integer");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("tepic-cc perf: unknown option {other}");
                return usage();
            }
        }
    }
    // The explicit flag wins over CCC_LEDGER; a CCC_NO_LEDGER run can
    // still *read* the default ledger — the variable gates appends, not
    // the sentinel.
    let path = ledger_override
        .or_else(ledger::ledger_path)
        .unwrap_or_else(|| PathBuf::from(ledger::DEFAULT_LEDGER_PATH));

    let mut ok = true;
    if let Some(factor) = inject {
        ok &= perf_inject(&path, factor);
    }
    if do_attr {
        let jobs = jobs
            .or_else(|| {
                std::env::var("CCC_JOBS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
            })
            .unwrap_or_else(tepic_ccc::bench::engine::default_jobs);
        ok &= perf_attr(jobs);
    }
    if do_check {
        ok &= perf_check(&path, &cfg);
    }
    if inject.is_none() && !do_attr && !do_check {
        ok = perf_summary(&path);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `perf --inject-slowdown`: appends a synthetic copy of each group's
/// latest record degraded by `factor` — the test fixture the perf smoke
/// uses to prove the sentinel actually fires.
fn perf_inject(path: &std::path::Path, factor: f64) -> bool {
    use std::collections::BTreeMap;
    use tepic_ccc::bench::history::{direction_of, Direction};
    use tepic_ccc::telemetry::{ledger, LedgerRecord};

    let outcome = match ledger::load(path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tepic-cc perf: cannot read {}: {e}", path.display());
            return false;
        }
    };
    if outcome.records.is_empty() {
        eprintln!(
            "tepic-cc perf: {} holds no records to degrade",
            path.display()
        );
        return false;
    }
    let mut latest: BTreeMap<String, LedgerRecord> = BTreeMap::new();
    for rec in outcome.records {
        let key = format!("{} :: {}", rec.fingerprint.key(), rec.subcommand);
        latest.insert(key, rec);
    }
    let mut appended = 0usize;
    for (_, mut rec) in latest {
        rec.wall_ns = (rec.wall_ns as f64 * factor) as u64;
        for (name, v) in rec.samples.iter_mut() {
            match direction_of(name) {
                Some(Direction::LowerIsBetter) => *v *= factor,
                Some(Direction::HigherIsBetter) => *v /= factor,
                None => {}
            }
        }
        if let Err(e) = ledger::append(path, &rec) {
            eprintln!("tepic-cc perf: cannot append to {}: {e}", path.display());
            return false;
        }
        appended += 1;
    }
    println!(
        "perf: appended {appended} synthetic record(s) degraded {factor:.2}x to {}",
        path.display()
    );
    true
}

/// `perf --check`: the regression sentinel. Judges the latest record of
/// every (fingerprint, subcommand) ledger group against that group's
/// history and reports false on any regression beyond the band.
fn perf_check(path: &std::path::Path, cfg: &tepic_ccc::bench::history::SentinelConfig) -> bool {
    use tepic_ccc::bench::history::SentinelStatus;
    use tepic_ccc::telemetry::ledger;

    let outcome = match ledger::load(path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tepic-cc perf: cannot read {}: {e}", path.display());
            return false;
        }
    };
    if outcome.skipped > 0 {
        eprintln!(
            "perf: note: skipped {} unreadable ledger line(s)",
            outcome.skipped
        );
    }
    if outcome.records.is_empty() {
        println!(
            "perf check: {} holds no records; nothing to judge",
            path.display()
        );
        return true;
    }
    let verdicts = history::check(&outcome.records, cfg);
    let (mut passed, mut fresh, mut regressions) = (0usize, 0usize, 0usize);
    for v in &verdicts {
        match &v.status {
            SentinelStatus::Pass => passed += 1,
            SentinelStatus::InsufficientHistory => fresh += 1,
            SentinelStatus::Regression { worse_by } => {
                regressions += 1;
                eprintln!(
                    "REGRESSION: {} / {}: latest {:.0} vs best {:.0} ({:.2}x worse; \
                     baseline median {:.0}, MAD {:.0}, n={})",
                    v.group, v.sample, v.latest, v.best, worse_by, v.median, v.mad, v.baseline_n
                );
            }
        }
    }
    println!(
        "perf check: {} record(s); {} sample(s): {} pass, {} without history, \
         {} regression(s) (band {:.0}%, min-samples {})",
        outcome.records.len(),
        verdicts.len(),
        passed,
        fresh,
        regressions,
        cfg.band * 100.0,
        cfg.min_samples
    );
    let serve_failures = serve_floor_check(&outcome.records, cfg);
    regressions == 0 && serve_failures == 0
}

/// Absolute throughput backstop for `serve/*` ledger groups, layered
/// under the relative sentinel (which needs history): the latest record
/// of every serve group must clear `max(CCC_SERVE_FLOOR_RPS, derived
/// historical floor)` on `throughput_per_s`. Returns the failure count.
fn serve_floor_check(
    records: &[tepic_ccc::telemetry::LedgerRecord],
    cfg: &tepic_ccc::bench::history::SentinelConfig,
) -> usize {
    use std::collections::BTreeMap;
    use tepic_ccc::telemetry::LedgerRecord;

    let env_floor = std::env::var("CCC_SERVE_FLOOR_RPS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(10.0);
    let mut latest: BTreeMap<String, &LedgerRecord> = BTreeMap::new();
    for rec in records {
        if rec.subcommand.starts_with("serve/") {
            let key = format!("{} :: {}", rec.fingerprint.key(), rec.subcommand);
            latest.insert(key, rec);
        }
    }
    let mut failures = 0usize;
    for (group, rec) in &latest {
        let Some(&rps) = rec.samples.get("throughput_per_s") else {
            continue;
        };
        let derived = history::derived_floor(
            records,
            &rec.fingerprint,
            &rec.subcommand,
            "throughput_per_s",
            cfg,
        )
        .unwrap_or(0.0);
        let floor = env_floor.max(derived);
        if rps < floor {
            eprintln!("SERVE FLOOR: {group}: throughput {rps:.1}/s under floor {floor:.1}/s");
            failures += 1;
        } else {
            println!("serve floor: {group}: throughput {rps:.1}/s >= {floor:.1}/s");
        }
    }
    failures
}

/// Bare `perf`: a one-screen inventory of the ledger's groups.
fn perf_summary(path: &std::path::Path) -> bool {
    use std::collections::BTreeMap;
    use tepic_ccc::telemetry::ledger;

    let outcome = match ledger::load(path) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("tepic-cc perf: cannot read {}: {e}", path.display());
            return false;
        }
    };
    let mut groups: BTreeMap<String, usize> = BTreeMap::new();
    for rec in &outcome.records {
        let key = format!("{} :: {}", rec.fingerprint.key(), rec.subcommand);
        *groups.entry(key).or_default() += 1;
    }
    println!(
        "ledger {}: {} record(s), {} skipped line(s), {} group(s)",
        path.display(),
        outcome.records.len(),
        outcome.skipped,
        groups.len()
    );
    for (g, n) in &groups {
        println!("  {n:>4}  {g}");
    }
    true
}

/// One line of the attribution tree, then the node's children sorted by
/// start time.
fn render_span_tree(
    out: &mut String,
    forest: &tepic_ccc::telemetry::SpanForest,
    node: &tepic_ccc::telemetry::SpanNode,
    depth: usize,
) {
    use std::fmt::Write as _;
    let label = if node.detail.is_empty() {
        node.name.to_string()
    } else {
        format!("{} {}", node.name, node.detail)
    };
    let _ = writeln!(
        out,
        "{:indent$}{label:<width$} {dur:>9.2} ms",
        "",
        indent = depth * 2,
        width = 36usize.saturating_sub(depth * 2),
        dur = node.dur_ns as f64 / 1e6
    );
    let mut kids: Vec<_> = forest.children_of(node.id).collect();
    kids.sort_by_key(|n| (n.start_ns, n.id));
    for k in kids {
        render_span_tree(out, forest, k, depth + 1);
    }
}

/// `perf --attr`: a cold in-process figure pipeline with the trace sink
/// on; reconstructs the causal span forest, cross-checks its per-stage
/// rollups *exactly* against the engine's stage timers, and prints the
/// per-workload / per-scheme / per-stage attribution tree plus the
/// critical path (also written to `results/PERF_attr.txt`).
fn perf_attr(jobs: usize) -> bool {
    use std::fmt::Write as _;
    use tepic_ccc::telemetry::SpanForest;

    eprintln!("tepic-cc perf: cold attribution run (jobs={jobs})");
    let sink = SharedSink::new(1 << 16);
    let engine = Engine::uncached(jobs).with_trace_sink(sink.clone());
    let t0 = Instant::now();
    let prepared = match engine.prepare_all() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("tepic-cc perf: {e}");
            return false;
        }
    };
    let reports = engine.reports(&prepared);
    let wall = t0.elapsed();
    std::hint::black_box(&reports);
    if sink.dropped() > 0 {
        eprintln!(
            "tepic-cc perf: {} event(s) dropped from the ring; span forest incomplete",
            sink.dropped()
        );
        return false;
    }
    let events = sink.drain();
    let forest = match SpanForest::build(&events) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("tepic-cc perf: span forest invalid: {e}");
            return false;
        }
    };

    // The attribution is only trustworthy if the span view and the
    // engine's own stage timers agree to the nanosecond — both sides
    // are fed the same start/duration pair, so any drift is a bug.
    let snap = engine.snapshot();
    let roll = forest.stage_rollup();
    let total_of = |stage: &str| roll.get(stage).map(|r| r.total_ns).unwrap_or(0);
    for (stage, timer_ns) in [
        ("compile", snap.compile_ns),
        ("emulate", snap.emulate_ns),
        ("encode", snap.encode_ns),
        ("report", snap.report_ns),
    ] {
        if total_of(stage) != timer_ns {
            eprintln!(
                "tepic-cc perf: {stage} span rollup {} ns != engine timer {} ns",
                total_of(stage),
                timer_ns
            );
            return false;
        }
    }

    let ms = |ns: u64| ns as f64 / 1e6;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "cost attribution — cold figure pipeline, jobs={jobs}, wall {:.1} ms",
        wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(text);
    for root in forest.roots() {
        render_span_tree(&mut text, &forest, root, 1);
    }
    let _ = writeln!(
        text,
        "\nper-stage rollup (reconciles exactly with the engine timers):"
    );
    for (stage, r) in &roll {
        let _ = writeln!(
            text,
            "  {stage:<12} {:>4}x {:>9.2} ms",
            r.count,
            ms(r.total_ns)
        );
    }
    let path = forest.critical_path();
    let _ = writeln!(text, "\ncritical path (the chain that bounded wall-clock):");
    for (i, n) in path.iter().enumerate() {
        let _ = writeln!(
            text,
            "  {}{} {} — {:.2} ms",
            "  ".repeat(i),
            n.name,
            n.detail,
            ms(n.dur_ns)
        );
    }

    print!("{text}");
    if let Err(e) = write_atomic("results/PERF_attr.txt", text.as_bytes()) {
        eprintln!("tepic-cc perf: cannot write results/PERF_attr.txt: {e}");
        return false;
    }
    println!(
        "attribution: {} span(s), critical path {} deep -> results/PERF_attr.txt",
        forest.nodes().len(),
        path.len()
    );

    let rec = history::engine_record(
        "perf_attr",
        0,
        build_features(),
        0,
        &engine,
        wall.as_nanos() as u64,
    );
    history::append_best_effort(&rec);
    true
}

/// One loadgen connection's view of a request/response exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServeOutcome {
    Ok,
    Busy,
    Error,
}

/// Sends one canonical job request over `stream` and classifies the
/// response. Returns the response bytes alongside so callers can check
/// byte-identity.
fn serve_roundtrip(
    stream: &mut std::net::TcpStream,
    req: &tepic_ccc::bench::serve::proto::Request,
) -> std::io::Result<(ServeOutcome, Vec<u8>)> {
    use tepic_ccc::bench::serve::proto::{read_frame, write_frame};

    write_frame(stream, req.canonical().as_bytes())?;
    let resp = read_frame(stream)
        .map_err(|e| std::io::Error::other(e.to_string()))?
        .ok_or_else(|| std::io::Error::other("daemon closed mid-exchange"))?;
    let text = String::from_utf8_lossy(&resp);
    let outcome = if text.contains("\"ok\":true") {
        ServeOutcome::Ok
    } else if text.contains("\"kind\":\"busy\"") {
        ServeOutcome::Busy
    } else {
        ServeOutcome::Error
    };
    Ok((outcome, resp))
}

fn mix_request(r: &tepic_ccc::workgen::ServeRequest) -> tepic_ccc::bench::serve::proto::Request {
    use tepic_ccc::bench::serve::proto::{JobOp, JobRequest, Request};
    Request::Job(JobRequest {
        op: JobOp::by_name(r.op).expect("servemix ops are valid"),
        name: r.name.clone(),
        scheme: r.scheme.to_string(),
        seed: r.seed,
        source: r.source.clone(),
    })
}

/// Exact percentile over a sorted latency slice (nearest-rank).
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// `tepic-cc loadgen`: hammers a running `tepic-ccd` with a seeded
/// mixed hot/cold request stream, records p50/p99 latency and req/s to
/// `results/BENCH_serve.json`, and appends a `serve/loadgen` ledger
/// record for the regression sentinel (DESIGN.md §17).
fn loadgen_cmd(args: &[String]) -> ExitCode {
    use std::collections::HashMap;
    use tepic_ccc::bench::serve::proto::Request;
    use tepic_ccc::workgen::{request_mix, MixParams};

    let t0 = Instant::now();
    let mut addr: Option<String> = None;
    let mut requests = 2000usize;
    let mut conns = 8usize;
    let mut seed = 42u64;
    let mut hot_frac = 0.8f64;
    let mut hot_pool = 8usize;
    let mut out_path = "results/BENCH_serve.json".to_string();
    let mut verify = false;
    let mut do_shutdown = false;
    let mut min_rps = 0.0f64;
    let mut max_hot_p99_ns = u64::MAX;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = Some(v.clone()),
                None => return usage(),
            },
            "--requests" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => requests = n,
                _ => return usage(),
            },
            "--conns" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => conns = n,
                _ => return usage(),
            },
            "--seed" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => seed = n,
                _ => return usage(),
            },
            "--hot-frac" => match it.next().map(|v| v.parse()) {
                Some(Ok(f)) => hot_frac = f,
                _ => return usage(),
            },
            "--hot-pool" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) if n > 0 => hot_pool = n,
                _ => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => return usage(),
            },
            "--verify" => verify = true,
            "--shutdown" => do_shutdown = true,
            "--min-rps" => match it.next().map(|v| v.parse()) {
                Some(Ok(f)) => min_rps = f,
                _ => return usage(),
            },
            "--max-hot-p99-ns" => match it.next().map(|v| v.parse()) {
                Some(Ok(n)) => max_hot_p99_ns = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        eprintln!("tepic-cc loadgen: --addr is required (a running tepic-ccd)");
        return ExitCode::from(2);
    };

    let params = MixParams {
        hot_fraction: hot_frac,
        hot_pool,
        ..MixParams::default()
    };
    let mix = request_mix(seed, requests, &params);
    let hot_combos: Vec<_> = {
        let mut seen = std::collections::HashSet::new();
        mix.iter()
            .filter(|r| r.hot && seen.insert(r.name.clone()))
            .cloned()
            .collect()
    };

    // Warmup: build every hot artifact once, serially, and keep the
    // response bytes — the measured phase then exercises the *warm*
    // path for hot requests, and --verify re-checks these exact bytes.
    let mut warm_bytes: HashMap<String, Vec<u8>> = HashMap::new();
    {
        let mut stream = match std::net::TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tepic-cc loadgen: cannot connect to {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in &hot_combos {
            match serve_roundtrip(&mut stream, &mix_request(r)) {
                Ok((ServeOutcome::Ok, bytes)) => {
                    warm_bytes.insert(r.name.clone(), bytes);
                }
                Ok((outcome, bytes)) => {
                    eprintln!(
                        "tepic-cc loadgen: warmup {} failed ({outcome:?}): {}",
                        r.name,
                        String::from_utf8_lossy(&bytes)
                    );
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("tepic-cc loadgen: warmup i/o error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "loadgen: warmed {} hot combo(s) on {addr}; firing {} request(s) over {} connection(s)",
        hot_combos.len(),
        mix.len(),
        conns
    );

    // Measured phase: the mix split round-robin across `conns`
    // synchronous connections, each timing every exchange.
    let chunks: Vec<Vec<tepic_ccc::workgen::ServeRequest>> = {
        let mut cs: Vec<Vec<_>> = (0..conns).map(|_| Vec::new()).collect();
        for (i, r) in mix.iter().enumerate() {
            cs[i % conns].push(r.clone());
        }
        cs
    };
    let measure_start = Instant::now();
    // Per connection: (hot?, latency-ns) per ok response, busy count,
    // error count.
    type ConnStats = (Vec<(bool, u64)>, usize, usize);
    let per_conn: Vec<ConnStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut lat: Vec<(bool, u64)> = Vec::with_capacity(chunk.len());
                    let (mut busy, mut errors) = (0usize, 0usize);
                    let Ok(mut stream) = std::net::TcpStream::connect(&addr) else {
                        return (lat, busy, chunk.len());
                    };
                    for r in chunk {
                        let req = mix_request(r);
                        let t = Instant::now();
                        match serve_roundtrip(&mut stream, &req) {
                            Ok((ServeOutcome::Ok, _)) => {
                                lat.push((r.hot, t.elapsed().as_nanos() as u64));
                            }
                            Ok((ServeOutcome::Busy, _)) => busy += 1,
                            Ok((ServeOutcome::Error, _)) => errors += 1,
                            Err(_) => {
                                errors += 1;
                                break;
                            }
                        }
                    }
                    (lat, busy, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread"))
            .collect()
    });
    let wall_ns = measure_start.elapsed().as_nanos() as u64;

    let mut hot_lat: Vec<u64> = Vec::new();
    let mut cold_lat: Vec<u64> = Vec::new();
    let (mut busy, mut errors) = (0usize, 0usize);
    for (lat, b, e) in &per_conn {
        busy += b;
        errors += e;
        for &(hot, ns) in lat {
            if hot {
                hot_lat.push(ns);
            } else {
                cold_lat.push(ns);
            }
        }
    }
    hot_lat.sort_unstable();
    cold_lat.sort_unstable();
    let ok = hot_lat.len() + cold_lat.len();
    let throughput = ok as f64 / (wall_ns.max(1) as f64 / 1e9);
    let (hot_p50, hot_p99) = (percentile_ns(&hot_lat, 0.5), percentile_ns(&hot_lat, 0.99));
    let (cold_p50, cold_p99) = (
        percentile_ns(&cold_lat, 0.5),
        percentile_ns(&cold_lat, 0.99),
    );
    println!(
        "loadgen: {ok} ok / {busy} busy / {errors} error(s) in {:.2}s -> {throughput:.1} req/s",
        wall_ns as f64 / 1e9
    );
    println!(
        "latency: hot p50 {:.3} ms p99 {:.3} ms ({} reqs); cold p50 {:.3} ms p99 {:.3} ms ({} reqs)",
        hot_p50 as f64 / 1e6,
        hot_p99 as f64 / 1e6,
        hot_lat.len(),
        cold_p50 as f64 / 1e6,
        cold_p99 as f64 / 1e6,
        cold_lat.len()
    );

    // --verify: warm hits must be byte-identical to the warmup
    // responses, and encode responses must carry exactly the image
    // bytes a one-shot CLI pipeline produces for the same source.
    if verify {
        let mut stream = match std::net::TcpStream::connect(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tepic-cc loadgen: verify connect failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in &hot_combos {
            match serve_roundtrip(&mut stream, &mix_request(r)) {
                Ok((ServeOutcome::Ok, bytes)) => {
                    if warm_bytes.get(&r.name) != Some(&bytes) {
                        eprintln!(
                            "tepic-cc loadgen: VERIFY FAILED: warm re-request of {} \
                             returned different bytes than its first build",
                            r.name
                        );
                        return ExitCode::FAILURE;
                    }
                }
                _ => {
                    eprintln!("tepic-cc loadgen: verify re-request of {} failed", r.name);
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut checked = 0usize;
        for r in hot_combos.iter().filter(|r| r.op == "encode").take(3) {
            let Some(bytes) = warm_bytes.get(&r.name) else {
                continue;
            };
            if !verify_encode_response(r, bytes) {
                return ExitCode::FAILURE;
            }
            checked += 1;
        }
        println!(
            "verify: {} warm re-request(s) byte-identical; {checked} encode image(s) match \
             one-shot CLI artifacts",
            hot_combos.len()
        );
    }

    // Results JSON + ledger record (the sentinel's serve/* group).
    let json = format!(
        concat!(
            "{{\"requests\":{},\"conns\":{},\"seed\":{},\"hot_fraction\":{},",
            "\"ok\":{},\"busy\":{},\"errors\":{},\"wall_ns\":{},\"throughput_per_s\":{:.3},",
            "\"hot\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}},",
            "\"cold\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}}}"
        ),
        requests,
        conns,
        seed,
        hot_frac,
        ok,
        busy,
        errors,
        wall_ns,
        throughput,
        hot_lat.len(),
        hot_p50,
        hot_p99,
        cold_lat.len(),
        cold_p50,
        cold_p99,
    );
    if let Err(e) = write_atomic(&out_path, json.as_bytes()) {
        eprintln!("tepic-cc loadgen: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("results -> {out_path}");

    let mut rec = history::base_record(
        "serve/loadgen",
        seed,
        build_features(),
        0,
        t0.elapsed().as_nanos() as u64,
    );
    rec.samples
        .insert("throughput_per_s".to_string(), throughput);
    rec.samples.insert("hot_p50_ns".to_string(), hot_p50 as f64);
    rec.samples.insert("hot_p99_ns".to_string(), hot_p99 as f64);
    rec.samples
        .insert("cold_p50_ns".to_string(), cold_p50 as f64);
    rec.samples
        .insert("cold_p99_ns".to_string(), cold_p99 as f64);
    for (name, v) in [
        ("serve.ok", ok as u64),
        ("serve.busy", busy as u64),
        ("serve.errors", errors as u64),
    ] {
        rec.counters.insert(name.to_string(), v);
    }
    history::append_best_effort(&rec);

    // --shutdown: graceful drain — the daemon acks, finishes admitted
    // jobs, and stops accepting; new connections must be refused.
    if do_shutdown {
        let drained = (|| -> std::io::Result<()> {
            let mut stream = std::net::TcpStream::connect(&addr)?;
            let (outcome, _) = serve_roundtrip(&mut stream, &Request::Shutdown)?;
            if outcome != ServeOutcome::Ok {
                return Err(std::io::Error::other("shutdown op rejected"));
            }
            // A fresh job on the already-open connection must be
            // refused — either a typed draining error, or an i/o error
            // because the drained daemon already exited and tore the
            // connection down. Both prove no new job was served; only
            // an Ok response is a failure.
            let probe = mix_request(&mix[0]);
            match serve_roundtrip(&mut stream, &probe) {
                Ok((ServeOutcome::Ok, _)) => Err(std::io::Error::other(
                    "daemon accepted a job while draining",
                )),
                Ok(_) | Err(_) => Ok(()),
            }
        })();
        match drained {
            Ok(()) => println!("shutdown: daemon draining; no new jobs accepted"),
            Err(e) => {
                eprintln!("tepic-cc loadgen: drain verification failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    if throughput < min_rps {
        eprintln!("tepic-cc loadgen: FLOOR: {throughput:.1} req/s under --min-rps {min_rps:.1}");
        failed = true;
    }
    if hot_p99 > max_hot_p99_ns {
        eprintln!(
            "tepic-cc loadgen: FLOOR: hot p99 {hot_p99} ns over --max-hot-p99-ns {max_hot_p99_ns}"
        );
        failed = true;
    }
    if errors > 0 {
        eprintln!("tepic-cc loadgen: {errors} request(s) failed");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recomputes an encode response's image locally (compile + compress,
/// the exact one-shot CLI pipeline) and compares byte-for-byte with
/// what the daemon served.
fn verify_encode_response(r: &tepic_ccc::workgen::ServeRequest, resp: &[u8]) -> bool {
    use tepic_ccc::bench::serve::proto::from_hex;

    let text = String::from_utf8_lossy(resp);
    let parsed = match tepic_ccc::telemetry::parse_json(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "tepic-cc loadgen: VERIFY FAILED: {}: unparseable response: {e}",
                r.name
            );
            return false;
        }
    };
    let Some(hex) = parsed.get("image_hex").and_then(|v| v.as_str()) else {
        eprintln!(
            "tepic-cc loadgen: VERIFY FAILED: {}: encode response lacks image_hex",
            r.name
        );
        return false;
    };
    let Some(served) = from_hex(hex) else {
        eprintln!("tepic-cc loadgen: VERIFY FAILED: {}: bad image_hex", r.name);
        return false;
    };
    let program = match lego::compile(&r.source, &lego::Options::default()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!(
                "tepic-cc loadgen: VERIFY FAILED: {}: local compile: {e}",
                r.name
            );
            return false;
        }
    };
    let out = match tepic_ccc::bench::engine::scheme_by_name(r.scheme)
        .expect("mix schemes are valid")
        .compress(&program)
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!(
                "tepic-cc loadgen: VERIFY FAILED: {}: local compress: {e}",
                r.name
            );
            return false;
        }
    };
    let local = tepic_ccc::ccc::encoded_to_bytes(&out.image);
    if local != served {
        eprintln!(
            "tepic-cc loadgen: VERIFY FAILED: {}: daemon image ({} bytes) differs from \
             one-shot CLI image ({} bytes)",
            r.name,
            served.len(),
            local.len()
        );
        return false;
    }
    true
}
