//! # tepic-ccc — compiler-driven cached code compression for embedded VLIW
//!
//! A full reproduction of Larin & Conte, *Compiler-Driven Cached Code
//! Compression Schemes for Embedded ILP Processors* (MICRO-32, 1999), as
//! a Rust workspace. This facade crate re-exports every layer:
//!
//! * [`isa`] — the TEPIC 40-bit VLIW instruction set (formats, MOPs,
//!   program images);
//! * [`huffman`] — canonical + length-limited Huffman coding and the
//!   decoder-complexity model;
//! * [`ir`] / [`lego`] — the LEGO optimizing compiler (Tink frontend,
//!   optimizer, treegions, linear-scan allocation, VLIW scheduling);
//! * [`yula`] — the emulator producing dynamic block traces;
//! * [`ccc`] — the paper's contribution: byte/stream/full Huffman
//!   compression, the tailored encoder, ATT generation, decoder cost
//!   models and Verilog emission;
//! * [`fetch`] — the IFetch simulator (banked ICache, ATB + branch
//!   prediction, L0 buffer, Table-1 cycle model, bus power);
//! * [`workloads`] — eight SPECint95-class benchmark stand-ins;
//! * [`bench`] — the experiment harness: the parallel prepared-workload
//!   engine with its content-addressed artifact cache, and the pure
//!   figure renderers;
//! * [`telemetry`] — the unified observability layer: metrics registry,
//!   structured trace sinks, Chrome-trace/JSON exporters and clock
//!   injection (DESIGN.md §12);
//! * [`workgen`] — the seeded synthetic Tink workload generator with
//!   op-mix calibration against the real corpus and scalable corpus
//!   tiers (DESIGN.md §14).
//!
//! # Quickstart
//!
//! ```
//! use tepic_ccc::prelude::*;
//!
//! // Compile a Tink program, run it, compress it, and measure.
//! let program = lego::compile(
//!     "fn main() { var i; for (i = 0; i < 100; i = i + 1) { print(i); } }",
//!     &lego::Options::default(),
//! ).unwrap();
//! let run = Emulator::new(&program).run(&Limits::default()).unwrap();
//! let full = schemes::full::FullScheme::default().compress(&program).unwrap();
//! assert!(full.image.total_bytes() < program.code_size());
//! let ipc = simulate(&program, &full.image, &run.trace, &FetchConfig::compressed()).ipc();
//! assert!(ipc > 0.0 && ipc <= 6.0);
//! ```

pub use ccc_bench as bench;
pub use ccc_core as ccc;
pub use ccc_telemetry as telemetry;
pub use ccc_workgen as workgen;
pub use ifetch_sim as fetch;
pub use lego;
pub use tepic_isa as isa;
pub use tinker_huffman as huffman;
pub use tinker_ir as ir;
pub use tinker_workloads as workloads;
pub use yula;

/// Convenient top-level imports for examples and downstream users.
pub mod prelude {
    pub use ccc_core::{
        fault::{run_campaign, CampaignConfig, CampaignReport},
        schemes::{self, Scheme},
        AddressTranslationTable, CompressionReport, EncodedProgram,
    };
    pub use ccc_telemetry::{MetricsRegistry, RingSink, SharedSink, TraceSink};
    pub use ifetch_sim::{
        simulate, simulate_decoded, simulate_decoded_injected, simulate_decoded_traced,
        simulate_traced, DecodeStats, EncodingClass, FetchConfig, FetchResult, PenaltyTable,
    };
    pub use lego;
    pub use tepic_isa::Program;
    pub use tinker_huffman::CodeBook;
    pub use tinker_workloads as workloads;
    pub use yula::{Emulator, Limits};
}
