//! Calibration: op-mix profiles and the generated-vs-measured report.
//!
//! The generator's promise is statistical — a corpus whose op mix
//! tracks the real suite's within a few percentage points. That claim
//! is only worth having if it is *measured*, so every generation run
//! ends in a [`CalibrationReport`]: the target profile, the real-corpus
//! profile re-measured from the in-repo compiler, the generated static
//! and dynamic mixes, and the per-category deltas against a hard
//! threshold (5 pp, the acceptance bound asserted in CI).

use std::fmt::Write as _;
use std::sync::OnceLock;
use tepic_isa::Program;
use yula::opmix::{OpCategory, OpMix};
use yula::BlockTrace;

/// The deliberately-skewed "foreign ISA" target (ialu, cmp, float,
/// load, store, ctrl, sys): markedly denser memory traffic and lighter
/// control than TEPIC code, in the shape of unrolled load/store RISC
/// profiles. The skew is chosen to stay inside what the Tink compiler
/// can express — its mov/immediate tax floors the integer-ALU share
/// near 72% no matter what the source looks like, so a "55% ialu"
/// fantasy target would just saturate the steering.
pub const FOREIGN_TARGET: [f64; 7] = [0.733, 0.018, 0.004, 0.100, 0.058, 0.082, 0.005];

/// An op-mix profile: fractions by category in [`OpCategory::ALL`]
/// order, summing to 1 (or all-zero for an empty measurement).
#[derive(Debug, Clone, PartialEq)]
pub struct MixProfile {
    /// Fractions in (ialu, cmp, float, load, store, ctrl, sys) order.
    pub fractions: [f64; 7],
}

impl MixProfile {
    /// Normalizes raw category counts into fractions.
    pub fn from_counts(counts: &[u64; 7]) -> MixProfile {
        let total: u64 = counts.iter().sum();
        let mut fractions = [0.0; 7];
        if total > 0 {
            for i in 0..7 {
                fractions[i] = counts[i] as f64 / total as f64;
            }
        }
        MixProfile { fractions }
    }

    /// Aggregate *static* mix over a set of compiled programs.
    pub fn from_programs<'a>(programs: impl IntoIterator<Item = &'a Program>) -> MixProfile {
        let mut counts = [0u64; 7];
        for p in programs {
            let m = OpMix::static_mix(p);
            for (i, &c) in OpCategory::ALL.iter().enumerate() {
                counts[i] += m.count(c);
            }
        }
        MixProfile::from_counts(&counts)
    }

    /// Aggregate *dynamic* mix over (program, trace) pairs.
    pub fn from_traces<'a>(
        pairs: impl IntoIterator<Item = (&'a Program, &'a BlockTrace)>,
    ) -> MixProfile {
        let mut counts = [0u64; 7];
        for (p, t) in pairs {
            let m = OpMix::dynamic_mix(p, t);
            for (i, &c) in OpCategory::ALL.iter().enumerate() {
                counts[i] += m.count(c);
            }
        }
        MixProfile::from_counts(&counts)
    }

    /// The real eight-workload corpus's static mix, measured once per
    /// process by compiling `tinker_workloads::ALL` through the
    /// in-repo compiler — the calibration target tracks the compiler
    /// instead of fossilizing a constant.
    pub fn measured_real() -> &'static MixProfile {
        static REAL: OnceLock<MixProfile> = OnceLock::new();
        REAL.get_or_init(|| {
            let programs: Vec<Program> = tinker_workloads::ALL
                .iter()
                .map(|w| {
                    w.compile()
                        .unwrap_or_else(|e| panic!("real workload {}: {e}", w.name))
                })
                .collect();
            MixProfile::from_programs(&programs)
        })
    }

    /// This category's share in percent.
    pub fn pct(&self, i: usize) -> f64 {
        self.fractions[i] * 100.0
    }

    /// Signed per-category deltas vs `other`, in percentage points.
    pub fn delta_pp(&self, other: &MixProfile) -> [f64; 7] {
        let mut d = [0.0; 7];
        for (i, v) in d.iter_mut().enumerate() {
            *v = (self.fractions[i] - other.fractions[i]) * 100.0;
        }
        d
    }

    /// Largest absolute per-category delta vs `other`, in pp.
    pub fn max_delta_pp(&self, other: &MixProfile) -> f64 {
        self.delta_pp(other)
            .iter()
            .fold(0.0f64, |m, d| m.max(d.abs()))
    }
}

/// Fault-injection surface per scheme over the generated corpus: how
/// many image bytes (and so flippable bit sites) each encoding exposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeSites {
    /// Scheme name (`byte`, `stream`, `stream_1`, `full`, `tailored`).
    pub scheme: String,
    /// Encoded image bytes, summed over the corpus.
    pub image_bytes: u64,
    /// Single-bit fault sites (`image_bytes * 8`).
    pub sites: u64,
}

/// One scheme's fault-campaign outcome tallies (mirrors
/// `ccc_core::fault::Tally`, carried as plain integers so this crate
/// stays independent of `ccc-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignRow {
    /// Scheme name.
    pub scheme: String,
    /// Faults caught by an integrity check.
    pub detected: u64,
    /// Faults contained to the faulted block.
    pub contained: u64,
    /// Silent data corruptions.
    pub sdc: u64,
    /// Faults with no observable effect.
    pub masked: u64,
}

/// A fault campaign run against a generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSummary {
    /// The campaign's RNG seed.
    pub seed: u64,
    /// Injections per (scheme, target-region) pair.
    pub faults_per_target: u32,
    /// Which generated program was targeted.
    pub program: String,
    /// Per-scheme tallies.
    pub rows: Vec<CampaignRow>,
}

/// The generation run's ground-truth summary: identity, corpus size,
/// and generated-vs-target op mix with pass/fail deltas.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Corpus seed.
    pub seed: u64,
    /// Tier name.
    pub tier: String,
    /// Flavor name.
    pub flavor: String,
    /// Program count.
    pub programs: usize,
    /// Total `.tink` source bytes.
    pub source_bytes: u64,
    /// Total static ops across compiled programs.
    pub static_ops: u64,
    /// Total cache blocks across compiled programs.
    pub blocks: u64,
    /// Total dynamic ops across emulated runs.
    pub dynamic_ops: u64,
    /// The flavor's steering target.
    pub target: MixProfile,
    /// The real corpus's measured static mix.
    pub measured_real: MixProfile,
    /// The generated corpus's static mix.
    pub generated_static: MixProfile,
    /// The generated corpus's dynamic mix.
    pub generated_dynamic: MixProfile,
    /// Acceptance bound on the worst per-category delta, in pp.
    pub threshold_pp: f64,
    /// Per-scheme encoded-image fault surface (empty if not computed).
    pub scheme_sites: Vec<SchemeSites>,
    /// Optional fault-campaign summary (smoke runs).
    pub campaign: Option<CampaignSummary>,
}

impl CalibrationReport {
    /// Worst per-category |generated static − target| in pp.
    pub fn max_delta_pp(&self) -> f64 {
        self.generated_static.max_delta_pp(&self.target)
    }

    /// Whether the corpus lands within the acceptance bound.
    pub fn ok(&self) -> bool {
        self.max_delta_pp() <= self.threshold_pp
    }

    /// Renders the report as deterministic JSON (stable key order, no
    /// timestamps — two identical runs produce byte-identical files).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        let _ = write!(
            s,
            "{{\n  \"seed\": {},\n  \"tier\": \"{}\",\n  \"flavor\": \"{}\",\n  \
             \"programs\": {},\n  \"source_bytes\": {},\n  \"static_ops\": {},\n  \
             \"blocks\": {},\n  \"dynamic_ops\": {},\n  \"threshold_pp\": {:.1},\n  \
             \"max_delta_pp\": {:.4},\n  \"ok\": {},\n  \"categories\": [",
            self.seed,
            self.tier,
            self.flavor,
            self.programs,
            self.source_bytes,
            self.static_ops,
            self.blocks,
            self.dynamic_ops,
            self.threshold_pp,
            self.max_delta_pp(),
            self.ok()
        );
        let deltas = self.generated_static.delta_pp(&self.target);
        for (i, c) in OpCategory::ALL.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"category\": \"{}\", \"target_pct\": {:.4}, \
                 \"generated_static_pct\": {:.4}, \"generated_dynamic_pct\": {:.4}, \
                 \"measured_real_pct\": {:.4}, \"delta_pp\": {:.4}}}",
                if i == 0 { "" } else { "," },
                c.label(),
                self.target.pct(i),
                self.generated_static.pct(i),
                self.generated_dynamic.pct(i),
                self.measured_real.pct(i),
                deltas[i]
            );
        }
        s.push_str("\n  ],\n  \"scheme_sites\": [");
        for (i, sc) in self.scheme_sites.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"scheme\": \"{}\", \"image_bytes\": {}, \"sites\": {}}}",
                if i == 0 { "" } else { "," },
                sc.scheme,
                sc.image_bytes,
                sc.sites
            );
        }
        if self.scheme_sites.is_empty() {
            s.push(']');
        } else {
            s.push_str("\n  ]");
        }
        match &self.campaign {
            None => s.push_str(",\n  \"campaign\": null\n}"),
            Some(c) => {
                let _ = write!(
                    s,
                    ",\n  \"campaign\": {{\"seed\": {}, \"faults_per_target\": {}, \
                     \"program\": \"{}\", \"rows\": [",
                    c.seed, c.faults_per_target, c.program
                );
                for (i, r) in c.rows.iter().enumerate() {
                    let _ = write!(
                        s,
                        "{}\n    {{\"scheme\": \"{}\", \"detected\": {}, \"contained\": {}, \
                         \"sdc\": {}, \"masked\": {}}}",
                        if i == 0 { "" } else { "," },
                        r.scheme,
                        r.detected,
                        r.contained,
                        r.sdc,
                        r.masked
                    );
                }
                s.push_str("\n  ]}\n}");
            }
        }
        s.push('\n');
        s
    }

    /// Renders a human-readable calibration table.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = writeln!(
            s,
            "corpus seed={} tier={} flavor={}: {} programs, {} static ops, {} blocks, {} dynamic ops",
            self.seed, self.tier, self.flavor, self.programs, self.static_ops, self.blocks,
            self.dynamic_ops
        );
        let _ = writeln!(
            s,
            "{:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "category", "target%", "gen-st%", "gen-dyn%", "real%", "delta-pp"
        );
        let deltas = self.generated_static.delta_pp(&self.target);
        for (i, c) in OpCategory::ALL.iter().enumerate() {
            let _ = writeln!(
                s,
                "{:<8} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>+9.2}",
                c.label(),
                self.target.pct(i),
                self.generated_static.pct(i),
                self.generated_dynamic.pct(i),
                self.measured_real.pct(i),
                deltas[i]
            );
        }
        let _ = writeln!(
            s,
            "max delta {:.2} pp (threshold {:.1} pp): {}",
            self.max_delta_pp(),
            self.threshold_pp,
            if self.ok() { "OK" } else { "OUT OF BAND" }
        );
        for sc in &self.scheme_sites {
            let _ = writeln!(
                s,
                "scheme {:<9} image {:>9} B  fault sites {:>10}",
                sc.scheme, sc.image_bytes, sc.sites
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_normalizes() {
        let p = MixProfile::from_counts(&[50, 0, 0, 25, 25, 0, 0]);
        assert!((p.fractions[0] - 0.5).abs() < 1e-12);
        assert!((p.fractions[3] - 0.25).abs() < 1e-12);
        let z = MixProfile::from_counts(&[0; 7]);
        assert_eq!(z.fractions, [0.0; 7]);
    }

    #[test]
    fn deltas_are_signed_pp() {
        let a = MixProfile {
            fractions: [0.6, 0.1, 0.0, 0.1, 0.1, 0.1, 0.0],
        };
        let b = MixProfile {
            fractions: [0.5, 0.2, 0.0, 0.1, 0.1, 0.1, 0.0],
        };
        let d = a.delta_pp(&b);
        assert!((d[0] - 10.0).abs() < 1e-9);
        assert!((d[1] + 10.0).abs() < 1e-9);
        assert!((a.max_delta_pp(&b) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn measured_real_is_plausible_and_memoized() {
        let real = MixProfile::measured_real();
        let total: f64 = real.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions sum to 1: {total}");
        assert!(real.fractions[0] > 0.5, "TEPIC code is ialu-heavy");
        assert!(real.fractions[5] > 0.05, "and has real control flow");
        assert!(std::ptr::eq(real, MixProfile::measured_real()), "memoized");
    }

    #[test]
    fn report_json_is_wellformed_and_deterministic() {
        let real = MixProfile::measured_real().clone();
        let rep = CalibrationReport {
            seed: 42,
            tier: "tiny".into(),
            flavor: "tepic".into(),
            programs: 2,
            source_bytes: 100,
            static_ops: 500,
            blocks: 60,
            dynamic_ops: 100_000,
            target: real.clone(),
            measured_real: real.clone(),
            generated_static: real.clone(),
            generated_dynamic: real,
            threshold_pp: 5.0,
            scheme_sites: vec![SchemeSites {
                scheme: "byte".into(),
                image_bytes: 1000,
                sites: 8000,
            }],
            campaign: Some(CampaignSummary {
                seed: 1,
                faults_per_target: 4,
                program: "gen-tepic-42-0000".into(),
                rows: vec![CampaignRow {
                    scheme: "full".into(),
                    detected: 3,
                    contained: 1,
                    sdc: 0,
                    masked: 4,
                }],
            }),
        };
        assert!(rep.ok(), "identical profiles have zero delta");
        let j = rep.to_json();
        assert_eq!(j, rep.to_json(), "deterministic");
        assert!(j.contains("\"max_delta_pp\": 0.0000"));
        assert!(j.contains("\"scheme\": \"byte\""));
        assert!(j.contains("\"campaign\": {"));
        assert!(rep.render().contains("OK"));
        // Crude structural check: balanced braces/brackets.
        let opens = j.matches(['{', '[']).count();
        let closes = j.matches(['}', ']']).count();
        assert_eq!(opens, closes, "balanced: {j}");
    }

    #[test]
    fn foreign_target_sums_to_one() {
        let total: f64 = FOREIGN_TARGET.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }
}
