//! Seeded request mixes for the `tepic-ccd` load generator.
//!
//! A serving benchmark needs traffic with a controlled temperature: a
//! small **hot pool** of programs requested over and over (these hit
//! the daemon's artifact cache and single-flight layer) and a long
//! tail of **cold** one-off programs (each forces a real build). This
//! module derives both from one seed with the same SplitMix64
//! discipline as corpus generation, so a mix is exactly reproducible
//! from `(seed, count, params)`.
//!
//! Scheme and op weights are fixed here rather than taken from the
//! serving layer (`ccc-workgen` sits below `ccc-bench` in the crate
//! DAG and cannot name its types).

use crate::{generate_program, splitmix64, Flavor, GenParams};

/// Scheme names a generated request may carry, mirroring the bench
/// matrix (`ccc_bench::engine::MATRIX_SCHEMES`).
pub const MIX_SCHEMES: [&str; 5] = ["byte", "stream", "stream_1", "full", "tailored"];

/// Request operations, with their draw weights (encode-heavy, the
/// daemon's cheapest cacheable op, plus a real simulate share).
const OP_WEIGHTS: [(&str, u32); 4] = [
    ("encode", 5),
    ("simulate", 3),
    ("compile", 1),
    ("faultsim", 1),
];

/// One generated request: a program plus the op/scheme to ask for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Program name (stable per underlying program).
    pub name: String,
    /// Tink source text.
    pub source: String,
    /// Operation name (`compile`/`encode`/`simulate`/`faultsim`).
    pub op: &'static str,
    /// Scheme name from [`MIX_SCHEMES`].
    pub scheme: &'static str,
    /// Fault seed (only `faultsim` consumes it).
    pub seed: u64,
    /// True when this request was drawn from the hot pool.
    pub hot: bool,
}

/// Mix shape.
#[derive(Debug, Clone)]
pub struct MixParams {
    /// Fraction of requests drawn from the hot pool, in `[0, 1]`.
    pub hot_fraction: f64,
    /// Number of distinct (program, op, scheme) combinations in the
    /// hot pool.
    pub hot_pool: usize,
    /// Program-generation flavor.
    pub flavor: Flavor,
}

impl Default for MixParams {
    fn default() -> MixParams {
        MixParams {
            hot_fraction: 0.8,
            hot_pool: 8,
            flavor: Flavor::Tepic,
        }
    }
}

/// Generates a deterministic request mix: `count` requests, roughly
/// `hot_fraction` of them repeats of the `hot_pool` hot combinations,
/// the rest unique cold programs. Hot requests with equal index into
/// the pool are byte-identical (same name, source, op, scheme, seed) —
/// exactly what the daemon's single-flight and cache layers key on.
pub fn request_mix(seed: u64, count: usize, params: &MixParams) -> Vec<ServeRequest> {
    let gen_params = GenParams::for_flavor(params.flavor);
    let mut state = seed ^ 0x5EED_F00D_CAFE_B0BA;
    let pool_n = params.hot_pool.max(1);

    // The hot pool: small programs, each pinned to one op + scheme so a
    // repeat is a true warm hit.
    let hot_pool: Vec<ServeRequest> = (0..pool_n)
        .map(|i| {
            let pseed = splitmix64(&mut state);
            let name = format!("srv-hot-{}-{seed}-{i:04}", params.flavor.name());
            let p = generate_program(pseed, &gen_params, &name);
            let op = weighted_op(splitmix64(&mut state));
            let scheme = MIX_SCHEMES[(splitmix64(&mut state) % MIX_SCHEMES.len() as u64) as usize];
            ServeRequest {
                name: p.name,
                source: p.source,
                op,
                scheme,
                seed: splitmix64(&mut state),
                hot: true,
            }
        })
        .collect();

    let hot_cut = (params.hot_fraction.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
    let mut cold_index = 0usize;
    (0..count)
        .map(|_| {
            if splitmix64(&mut state) <= hot_cut {
                let pick = (splitmix64(&mut state) % pool_n as u64) as usize;
                hot_pool[pick].clone()
            } else {
                let pseed = splitmix64(&mut state);
                let name = format!("srv-cold-{}-{seed}-{cold_index:06}", params.flavor.name());
                cold_index += 1;
                let p = generate_program(pseed, &gen_params, &name);
                let op = weighted_op(splitmix64(&mut state));
                let scheme =
                    MIX_SCHEMES[(splitmix64(&mut state) % MIX_SCHEMES.len() as u64) as usize];
                ServeRequest {
                    name: p.name,
                    source: p.source,
                    op,
                    scheme,
                    seed: splitmix64(&mut state),
                    hot: false,
                }
            }
        })
        .collect()
}

fn weighted_op(draw: u64) -> &'static str {
    let total: u32 = OP_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut x = (draw % total as u64) as u32;
    for (op, w) in OP_WEIGHTS {
        if x < w {
            return op;
        }
        x -= w;
    }
    OP_WEIGHTS[0].0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_is_deterministic_and_respects_shape() {
        let params = MixParams::default();
        let a = request_mix(42, 400, &params);
        let b = request_mix(42, 400, &params);
        assert_eq!(a, b, "same seed reproduces the identical mix");
        assert_ne!(a, request_mix(43, 400, &params), "seed matters");
        assert_eq!(a.len(), 400);

        let hot = a.iter().filter(|r| r.hot).count();
        let frac = hot as f64 / a.len() as f64;
        assert!(
            (frac - params.hot_fraction).abs() < 0.1,
            "hot fraction {frac} far from target {}",
            params.hot_fraction
        );

        // Hot requests reuse at most hot_pool distinct names; cold
        // requests are pairwise distinct.
        let hot_names: HashSet<&str> = a
            .iter()
            .filter(|r| r.hot)
            .map(|r| r.name.as_str())
            .collect();
        assert!(hot_names.len() <= params.hot_pool);
        let cold: Vec<&str> = a
            .iter()
            .filter(|r| !r.hot)
            .map(|r| r.name.as_str())
            .collect();
        let cold_set: HashSet<&&str> = cold.iter().collect();
        assert_eq!(cold.len(), cold_set.len(), "cold names are unique");

        // Every op and scheme comes from the declared sets.
        for r in &a {
            assert!(["compile", "encode", "simulate", "faultsim"].contains(&r.op));
            assert!(MIX_SCHEMES.contains(&r.scheme));
        }
        // A 400-request draw exercises more than one op and scheme.
        assert!(a.iter().map(|r| r.op).collect::<HashSet<_>>().len() > 1);
        assert!(a.iter().map(|r| r.scheme).collect::<HashSet<_>>().len() > 1);
    }

    #[test]
    fn hot_requests_are_byte_identical_repeats() {
        let a = request_mix(7, 200, &MixParams::default());
        let mut by_name: std::collections::HashMap<&str, &ServeRequest> =
            std::collections::HashMap::new();
        for r in a.iter().filter(|r| r.hot) {
            let prev = by_name.entry(r.name.as_str()).or_insert(r);
            assert_eq!(*prev, r, "hot repeats must be identical requests");
        }
    }

    #[test]
    fn generated_hot_programs_compile() {
        let mix = request_mix(
            1,
            1,
            &MixParams {
                hot_pool: 2,
                ..MixParams::default()
            },
        );
        let p = lego::compile(&mix[0].source, &lego::Options::default()).expect("compiles");
        assert!(p.num_ops() > 0);
    }
}
