//! # ccc-workgen — seeded synthetic Tink workload generation
//!
//! Everything the reproduction measures — compression ratios, fetch
//! cycles, fault-campaign outcomes — was, until this crate, measured on
//! the same eight hand-ported `.tink` workloads. `ccc-workgen` grows
//! that corpus without growing the trust problem: it emits **seeded,
//! fully deterministic** Tink programs whose *operation mix* is steered
//! toward a target profile calibrated against the real corpus (measured
//! through `yula::opmix`), so a thousand generated programs stress the
//! pipeline with the same statistical shape the paper's figures depend
//! on — or, with the foreign flavor, deliberately *not* that shape.
//!
//! Guarantees, by construction:
//!
//! * **Determinism** — same seed + params ⇒ byte-identical `.tink`
//!   source. The generator is a pure function of a 64-bit seed; no
//!   clocks, no host randomness, no hash-map iteration.
//! * **Termination** — only bounded `for` loops with constant trips,
//!   and a call DAG (a function only calls lower-indexed functions),
//!   so every program halts within a computable step budget.
//! * **Compilability** — emission is structured (declared variables,
//!   masked in-bounds indices, parenthesized precedence), so every
//!   program parses and lowers through `lego`.
//!
//! The whole-pipeline properties (compile → emulate → encode →
//! fetch-simulate; per-scheme bit-identical round-trips; warm-cache
//! fingerprint reproduction) are asserted over generated corpora in
//! `tests/workgen.rs` at the workspace root.
//!
//! # Corpus tiers
//!
//! | tier | programs | use |
//! |---|---|---|
//! | `tiny` | 2 | CI smoke, unit tests |
//! | `paper` | 8 | same scale as the hand-written suite |
//! | `10x` | 80 | property suite, engine stress |
//! | `100x` | 800 | cache/pool scale studies |
//! | `1000x` | 8000 | gated behind `CCC_GEN_1000X=1` |
//!
//! # Example
//!
//! ```
//! use ccc_workgen::{generate_corpus, Flavor, Tier};
//!
//! let corpus = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
//! assert_eq!(corpus.programs.len(), 2);
//! // Deterministic: regenerating yields byte-identical source.
//! let again = generate_corpus(42, Tier::Tiny, Flavor::Tepic).unwrap();
//! assert_eq!(corpus.programs[0].source, again.programs[0].source);
//! // And every program compiles through LEGO.
//! let p = lego::compile(&corpus.programs[0].source, &lego::Options::default()).unwrap();
//! assert!(p.num_ops() > 0);
//! ```

mod calibrate;
mod gen;
pub mod servemix;

pub use calibrate::{
    CalibrationReport, CampaignRow, CampaignSummary, MixProfile, SchemeSites, FOREIGN_TARGET,
};
pub use gen::generate_program;
pub use servemix::{request_mix, MixParams, ServeRequest, MIX_SCHEMES};

use std::fmt;
use tinker_workloads::Workload;

/// Corpus size tiers, as multiples of the eight-workload paper suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Two programs — CI smoke and unit tests.
    Tiny,
    /// Eight programs — the scale of the hand-written suite.
    Paper,
    /// Eighty programs — the property-suite tier.
    TenX,
    /// Eight hundred programs — engine/cache stress.
    HundredX,
    /// Eight thousand programs — gated behind `CCC_GEN_1000X=1`.
    ThousandX,
}

impl Tier {
    /// Every tier, smallest first.
    pub const ALL: [Tier; 5] = [
        Tier::Tiny,
        Tier::Paper,
        Tier::TenX,
        Tier::HundredX,
        Tier::ThousandX,
    ];

    /// The tier's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Tiny => "tiny",
            Tier::Paper => "paper",
            Tier::TenX => "10x",
            Tier::HundredX => "100x",
            Tier::ThousandX => "1000x",
        }
    }

    /// Parses a CLI tier name.
    pub fn by_name(name: &str) -> Option<Tier> {
        Tier::ALL.iter().copied().find(|t| t.name() == name)
    }

    /// How many programs the tier holds.
    pub fn program_count(self) -> usize {
        match self {
            Tier::Tiny => 2,
            Tier::Paper => 8,
            Tier::TenX => 80,
            Tier::HundredX => 800,
            Tier::ThousandX => 8000,
        }
    }

    /// Whether the tier needs the `CCC_GEN_1000X=1` opt-in (it prepares
    /// eight thousand programs — deliberate, never accidental).
    pub fn is_gated(self) -> bool {
        self == Tier::ThousandX
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Op-mix flavor: whose statistical shape the corpus imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// Calibrated to the measured static op-mix of the real eight-
    /// workload corpus (re-measured at generation time, so the target
    /// tracks the in-repo compiler).
    Tepic,
    /// A deliberately skewed "foreign ISA" profile — denser control and
    /// memory traffic, in the spirit of the compressed-RISC studies
    /// (Hirvola's entropy-coded RISC-V; RVCoreP-32IC) — to stress
    /// dictionary construction away from the TEPIC defaults.
    Foreign,
}

impl Flavor {
    /// Both flavors.
    pub const ALL: [Flavor; 2] = [Flavor::Tepic, Flavor::Foreign];

    /// The flavor's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Tepic => "tepic",
            Flavor::Foreign => "foreign",
        }
    }

    /// Parses a CLI flavor name.
    pub fn by_name(name: &str) -> Option<Flavor> {
        Flavor::ALL.iter().copied().find(|f| f.name() == name)
    }

    /// The op-mix profile this flavor steers toward.
    pub fn target(self) -> MixProfile {
        match self {
            Flavor::Tepic => MixProfile::measured_real().clone(),
            Flavor::Foreign => MixProfile {
                fractions: FOREIGN_TARGET,
            },
        }
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Shape parameters for one generated program. [`GenParams::for_flavor`]
/// gives the calibrated defaults; every knob is public for sweeps.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Target op-mix fractions, in [`yula::opmix::OpCategory::ALL`]
    /// order (ialu, cmp, float, load, store, ctrl, sys).
    pub target: [f64; 7],
    /// Helper-function count range (inclusive).
    pub funcs: (u32, u32),
    /// Estimated static-op budget range per program (inclusive).
    pub ops_budget: (u32, u32),
    /// Multiplier on the score of emitting an `if` (branchiness).
    pub branchiness: f64,
    /// Multiplier on the score of emitting a bounded `for` loop.
    pub loopiness: f64,
    /// Maximum loop-nesting depth inside one function.
    pub max_loop_nest: u32,
    /// Maximum call-chain depth (a function calls only functions at
    /// most this many indices below it).
    pub max_call_depth: u32,
    /// Trip-count range for main's driver loop (inclusive).
    pub main_trip: (u32, u32),
    /// Maximum trip count for generated inner loops.
    pub loop_trip_max: u32,
}

impl GenParams {
    /// Calibrated defaults for a flavor.
    pub fn for_flavor(flavor: Flavor) -> GenParams {
        let target = flavor.target().fractions;
        match flavor {
            Flavor::Tepic => GenParams {
                target,
                funcs: (4, 8),
                ops_budget: (280, 560),
                branchiness: 1.0,
                loopiness: 1.0,
                max_loop_nest: 2,
                max_call_depth: 3,
                main_trip: (6, 14),
                loop_trip_max: 24,
            },
            Flavor::Foreign => GenParams {
                target,
                funcs: (5, 9),
                ops_budget: (280, 560),
                branchiness: 1.35,
                loopiness: 1.1,
                max_loop_nest: 2,
                max_call_depth: 4,
                main_trip: (6, 14),
                loop_trip_max: 20,
            },
        }
    }
}

/// One generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenProgram {
    /// Stable corpus-unique name (`gen-<flavor>-<seed>-<index>`).
    pub name: String,
    /// The per-program seed (derived from the corpus seed and index).
    pub seed: u64,
    /// The Tink source text.
    pub source: String,
}

impl GenProgram {
    /// Leaks this program into a `'static` [`Workload`] so it can flow
    /// through the prepared-workload engine and the fault campaign.
    pub fn workload(&self, flavor: Flavor) -> &'static Workload {
        Workload::leaked(
            self.name.clone(),
            format!("synthetic {flavor} workload (seed {})", self.seed),
            self.source.clone(),
        )
    }
}

/// A generated corpus: the tier's worth of programs plus the identity
/// that reproduces it.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The corpus seed.
    pub seed: u64,
    /// The size tier.
    pub tier: Tier,
    /// The op-mix flavor.
    pub flavor: Flavor,
    /// The generated programs, in index order.
    pub programs: Vec<GenProgram>,
}

impl Corpus {
    /// Leaks every program into `'static` [`Workload`]s (engine fuel).
    pub fn workloads(&self) -> Vec<&'static Workload> {
        self.programs
            .iter()
            .map(|p| p.workload(self.flavor))
            .collect()
    }

    /// Total source bytes across the corpus.
    pub fn source_bytes(&self) -> u64 {
        self.programs.iter().map(|p| p.source.len() as u64).sum()
    }
}

/// Why a corpus could not be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The `1000x` tier was requested without `CCC_GEN_1000X=1`.
    TierGated(Tier),
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::TierGated(t) => write!(
                f,
                "tier {t} generates {} programs and is gated: set CCC_GEN_1000X=1 to opt in",
                t.program_count()
            ),
        }
    }
}

impl std::error::Error for GenError {}

/// SplitMix64 — derives independent per-program seeds from the corpus
/// seed so programs are decorrelated but individually reproducible.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates a full corpus: `tier.program_count()` programs, each from
/// its own derived seed, steered toward the flavor's op-mix target.
///
/// # Errors
///
/// [`GenError::TierGated`] for the `1000x` tier without the
/// `CCC_GEN_1000X=1` opt-in.
pub fn generate_corpus(seed: u64, tier: Tier, flavor: Flavor) -> Result<Corpus, GenError> {
    if tier.is_gated() && !std::env::var("CCC_GEN_1000X").is_ok_and(|v| v == "1") {
        return Err(GenError::TierGated(tier));
    }
    let params = GenParams::for_flavor(flavor);
    let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
    let programs = (0..tier.program_count())
        .map(|i| {
            let pseed = splitmix64(&mut state);
            let name = format!("gen-{}-{seed}-{i:04}", flavor.name());
            generate_program(pseed, &params, &name)
        })
        .collect();
    Ok(Corpus {
        seed,
        tier,
        flavor,
        programs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        for t in Tier::ALL {
            assert_eq!(Tier::by_name(t.name()), Some(t));
        }
        assert_eq!(Tier::by_name("11x"), None);
        assert!(Tier::ThousandX.is_gated());
        assert!(!Tier::HundredX.is_gated());
    }

    #[test]
    fn flavor_names_round_trip() {
        for f in Flavor::ALL {
            assert_eq!(Flavor::by_name(f.name()), Some(f));
        }
        assert_eq!(Flavor::by_name("mips"), None);
    }

    #[test]
    fn gated_tier_refuses_without_env() {
        // The test env never sets CCC_GEN_1000X.
        let err = generate_corpus(1, Tier::ThousandX, Flavor::Tepic).unwrap_err();
        assert!(err.to_string().contains("CCC_GEN_1000X"));
    }

    #[test]
    fn corpus_is_deterministic_and_programs_distinct() {
        let a = generate_corpus(7, Tier::Tiny, Flavor::Tepic).unwrap();
        let b = generate_corpus(7, Tier::Tiny, Flavor::Tepic).unwrap();
        assert_eq!(a.programs, b.programs, "same seed, same corpus");
        assert_ne!(
            a.programs[0].source, a.programs[1].source,
            "derived seeds decorrelate programs"
        );
        let c = generate_corpus(8, Tier::Tiny, Flavor::Tepic).unwrap();
        assert_ne!(a.programs[0].source, c.programs[0].source);
    }

    #[test]
    fn splitmix_is_stable() {
        let mut s = 42;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        let mut s2 = 42;
        assert_eq!(splitmix64(&mut s2), a);
    }
}
