//! The generator proper: deficit-steered, halting-by-construction
//! Tink emission.
//!
//! The central loop scores a menu of statement templates against the
//! current op-mix *deficit* (target fraction minus estimated emitted
//! fraction, per category) and emits the best-scoring one, so the
//! program converges on the target profile as it grows instead of
//! sampling from a fixed distribution and hoping. Estimates use a
//! per-template signature of post-compilation op counts, tuned against
//! `yula::opmix` measurements of actual generated corpora.
//!
//! Termination is structural, not statistical: loops are `for` with
//! constant trip counts, calls go strictly to lower-indexed helpers
//! (a DAG) and only from loop-free call sites, and each helper's
//! estimated dynamic cost is capped, so the whole program's step count
//! is bounded at emission time.
//!
//! Compile-safety rules baked into every template: all expressions are
//! fully parenthesized (Tink's `&` binds *looser* than `<`), array
//! indices are masked with the array's power-of-two length minus one,
//! there is no `/` or `%` anywhere (runtime divisors can trap), and
//! all arithmetic stays in wrapping i32 / bounded f32 range.

use crate::{GenParams, GenProgram};

const N_CAT: usize = 7;

/// Per-template signatures: estimated compiled op counts by category
/// (ialu, cmp, float, load, store, ctrl, sys). These are the steering
/// model, not ground truth — the calibration report measures reality.
const SIG_ALU: [f64; N_CAT] = [11.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
const SIG_LOAD: [f64; N_CAT] = [8.5, 0.0, 0.0, 3.2, 0.2, 0.0, 0.0];
/// Loop-var indexed loads: unmasked addressing, two loads per statement.
const SIG_LOADV: [f64; N_CAT] = [8.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0];
const SIG_STORE: [f64; N_CAT] = [5.5, 0.0, 0.0, 0.3, 2.8, 0.0, 0.0];
const SIG_STOREV: [f64; N_CAT] = [7.0, 0.0, 0.0, 0.0, 3.0, 0.0, 0.0];
const SIG_FLOAT: [f64; N_CAT] = [13.0, 0.0, 3.5, 0.3, 0.3, 0.0, 0.0];
const SIG_SYS: [f64; N_CAT] = [7.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0];
const SIG_IF: [f64; N_CAT] = [14.0, 1.0, 0.0, 0.0, 0.0, 2.5, 0.0];
const SIG_LOOP: [f64; N_CAT] = [17.0, 1.0, 0.0, 0.5, 0.5, 4.0, 0.0];
/// Micro-branch signatures carry the full measured cost of header +
/// body (tplprobe): the alu variant is by far the densest control
/// source (3 ctrl in ~8 ops); the mem variants pay a phi/address tax.
const SIG_MICRO: [f64; N_CAT] = [8.5, 1.0, 0.0, 0.1, 0.1, 3.0, 0.0];
const SIG_MB_ALU: [f64; N_CAT] = [8.0, 1.0, 0.0, 0.0, 0.0, 3.0, 0.0];
const SIG_MB_LOAD: [f64; N_CAT] = [18.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0];
const SIG_MB_STORE: [f64; N_CAT] = [18.8, 1.0, 0.0, 0.0, 2.0, 3.0, 0.0];
const SIG_CALL: [f64; N_CAT] = [9.0, 0.0, 0.0, 2.0, 1.0, 1.2, 0.0];
const SIG_RET: [f64; N_CAT] = [3.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0];
/// Hidden-cost model: every emitted statement drags extra integer ops
/// the templates cannot see — phi copies at joins, address and constant
/// materialization, call glue. Measured corpus-wide as (actual static
/// ops) / (charged ops) - 1, attributed entirely to `ialu`.
const HIDDEN_IALU_RATE: f64 = 0.22;
const SIG_PROLOGUE: [f64; N_CAT] = [10.0, 0.0, 0.0, 2.0, 1.0, 0.0, 0.0];

/// Per-category urgency weights for the steering score. IntAlu is
/// structurally over-supplied by every template (the compiler's mov
/// and immediate-materialization tax lands there), so its inevitable
/// surplus is damped; control and memory density are the categories
/// only specific templates can supply, so their deficits shout.
const STEER_WEIGHT: [f64; N_CAT] = [0.5, 1.2, 1.0, 4.2, 3.4, 4.5, 1.5];

fn mass(sig: &[f64; N_CAT]) -> f64 {
    sig.iter().sum()
}

/// Cap on one helper's estimated dynamic cost (ops per invocation).
/// Keeps call-DAG fan-out from compounding into runaway step counts.
const HELPER_DYN_CAP: f64 = 20_000.0;

/// xorshift64* — the program-body RNG. Distinct from the corpus-level
/// SplitMix64 so per-program streams are independent of corpus layout.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo <= hi);
        lo + (self.next() % (hi - lo + 1) as u64) as u32
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A small varied literal — the constants that keep CSE from
    /// merging structurally identical templates.
    fn konst(&mut self) -> u32 {
        self.range(3, 251)
    }
}

/// Global deficit tracker: target fractions vs estimated emitted ops.
struct Steer {
    target: [f64; N_CAT],
    est: [f64; N_CAT],
}

impl Steer {
    fn new(target: [f64; N_CAT]) -> Steer {
        Steer {
            target,
            est: [0.0; N_CAT],
        }
    }

    fn charge(&mut self, sig: &[f64; N_CAT]) {
        for (e, s) in self.est.iter_mut().zip(sig) {
            *e += s;
        }
    }

    /// Dot of the template's normalized signature with the per-category
    /// deficit: positive when the template supplies what's short.
    fn score(&self, sig: &[f64; N_CAT]) -> f64 {
        let total: f64 = self.est.iter().sum::<f64>().max(1.0);
        let m = mass(sig);
        let mut sc = 0.0;
        for i in 0..N_CAT {
            sc += sig[i] / m * STEER_WEIGHT[i] * (self.target[i] - self.est[i] / total);
        }
        sc
    }
}

/// One function body under construction.
struct Body {
    text: String,
    /// Static ops charged to this function so far.
    spent: f64,
    /// Estimated dynamic ops for one invocation.
    dyn_cost: f64,
    /// Product of enclosing loop trip counts at the emission point.
    mult: f64,
    loop_depth: u32,
    /// Enclosing loop variables with their (exclusive) trip bounds —
    /// indexing `gw0[(v + k)]` needs no mask when `bound + k` fits.
    loop_vars: Vec<(String, u32)>,
}

impl Body {
    fn line(&mut self, indent: usize, s: &str) {
        for _ in 0..indent {
            self.text.push_str("    ");
        }
        self.text.push_str(s);
        self.text.push('\n');
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Alu,
    Load,
    Store,
    Float,
    If,
    Loop,
    Micro,
}

struct Gen<'p> {
    rng: Rng,
    steer: Steer,
    params: &'p GenParams,
    /// Program-unique counter for loop variable names.
    var_ctr: u32,
}

/// Generates one program from its seed. Pure: same `(seed, params,
/// name)` ⇒ byte-identical source.
///
/// Generation is closed-loop: the statement templates steer toward the
/// target mix, but the compiler adds costs no template model can see —
/// phi copies at joins, caller-save spills, address materialization —
/// and those scale with context (live variables), not with the
/// statement. So after emitting a draft we compile it, measure the
/// actual category mix, fold the residual back into the steering
/// target, and regenerate from the same seed. Three correction rounds
/// (integral control with unit gain) land the mix within a couple of
/// points of what the template menu can express. Compilation is
/// deterministic, so reproducibility is unaffected.
pub fn generate_program(seed: u64, params: &GenParams, name: &str) -> GenProgram {
    let mut tuned = params.clone();
    let mut source = emit(seed, &tuned, name);
    for _ in 0..3 {
        let Ok(p) = lego::compile(&source, &lego::Options::default()) else {
            break;
        };
        let measured = crate::calibrate::MixProfile::from_programs([&p]).fractions;
        let maxd = (0..N_CAT)
            .map(|i| (measured[i] - params.target[i]).abs())
            .fold(0.0f64, f64::max);
        if maxd <= 0.035 {
            break;
        }
        let mut sum = 0.0;
        for (i, t) in tuned.target.iter_mut().enumerate() {
            *t = (*t + (params.target[i] - measured[i])).max(0.001);
            sum += *t;
        }
        for v in &mut tuned.target {
            *v /= sum;
        }
        source = emit(seed, &tuned, name);
    }
    GenProgram {
        name: name.to_string(),
        seed,
        source,
    }
}

/// One open-loop emission pass.
fn emit(seed: u64, params: &GenParams, name: &str) -> String {
    let mut g = Gen {
        rng: Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15),
        steer: Steer::new(params.target),
        params,
        var_ctr: 0,
    };
    g.program(seed, name)
}

impl Gen<'_> {
    fn program(&mut self, seed: u64, name: &str) -> String {
        let n_funcs = self.rng.range(
            self.params.funcs.0,
            self.params.funcs.1.max(self.params.funcs.0),
        ) as usize;
        let budget = self
            .rng
            .range(self.params.ops_budget.0, self.params.ops_budget.1) as f64;
        // Main's fixed machinery (init loop, driver loop, once-calls)
        // takes a slice off the top; helpers split the rest.
        let helper_budget = budget * 0.80 / n_funcs as f64;

        let mut src = String::with_capacity(8 * 1024);
        src.push_str(&format!(
            "// {name}: synthetic workload, seed {seed:#018x}\n\
             // generated by ccc-workgen; do not edit by hand\n\
             global gw0[256];\n\
             global gw1[512];\n\
             bglobal gb0[256];\n\
             fglobal gf0[64];\n\n"
        ));

        // The lowest-indexed functions are leaf predicates: tiny
        // guard-return functions with no body budget. Real code is full
        // of them (accessors, comparisons, clamps) and they are the
        // densest control-op source the generator has — a call, a
        // branch or two, and multiple returns in under twenty ops.
        let n_pred = 1 + n_funcs / 3;
        let mut dyn_costs: Vec<f64> = Vec::with_capacity(n_pred + n_funcs);
        for idx in 0..n_pred {
            let (text, cost) = self.predicate(idx);
            dyn_costs.push(cost);
            src.push_str(&text);
            src.push('\n');
        }
        for idx in n_pred..n_pred + n_funcs {
            let share = helper_budget * (0.75 + 0.5 * self.rng.unit());
            let (text, cost) = self.helper(idx, n_pred, share, &dyn_costs);
            dyn_costs.push(cost);
            src.push_str(&text);
            src.push('\n');
        }

        src.push_str(&self.main_fn(budget * 0.20, &dyn_costs));
        if std::env::var("GEN_DEBUG").is_ok() {
            let total: f64 = self.steer.est.iter().sum();
            eprintln!(
                "charged {:?} total {total:.0}",
                self.steer.est.map(|v| (v * 10.0).round() / 10.0)
            );
        }
        src
    }

    /// One leaf predicate: a guard chain over the two arguments with an
    /// early return per guard. No steered body, no calls, trivially
    /// bounded dynamic cost.
    fn predicate(&mut self, idx: usize) -> (String, f64) {
        let mut b = Body {
            text: String::new(),
            spent: 0.0,
            dyn_cost: 0.0,
            mult: 1.0,
            loop_depth: 0,
            loop_vars: Vec::new(),
        };
        b.line(0, &format!("fn h{idx}(a, b) {{"));
        let n_guards = self.rng.range(1, 2);
        for _ in 0..n_guards {
            let k = self.rng.konst();
            let (cond, val) = match self.rng.range(0, 3) {
                0 => (format!("((a + {k}) > b)"), format!("((a - b) + {k})")),
                1 => (format!("(b < {k})"), format!("(b + {k})")),
                2 => (format!("((b - {k}) > a)"), format!("(a + {k})")),
                _ => (format!("(a < (b - {k}))"), format!("((b - a) - {k})")),
            };
            b.line(1, &format!("if {cond} {{"));
            b.line(2, &format!("return {val};"));
            b.line(1, "}");
            self.charge(&mut b, &[3.0, 1.0, 0.0, 0.0, 0.0, 2.0, 0.0]);
            self.charge(&mut b, &SIG_RET);
        }
        let kf = self.rng.konst();
        b.line(1, &format!("return ((a + b) + {kf});"));
        self.charge(&mut b, &SIG_RET);
        b.line(0, "}");
        (b.text, b.dyn_cost.max(12.0))
    }

    /// One helper: `fn h<idx>(a, b) { ... return (s + t); }`.
    /// Calls only helpers with lower indices (termination by DAG).
    fn helper(
        &mut self,
        idx: usize,
        n_pred: usize,
        share: f64,
        dyn_costs: &[f64],
    ) -> (String, f64) {
        let mut b = Body {
            text: String::new(),
            spent: 0.0,
            dyn_cost: 0.0,
            mult: 1.0,
            loop_depth: 0,
            loop_vars: Vec::new(),
        };
        b.line(0, &format!("fn h{idx}(a, b) {{"));
        let (k1, k2) = (self.rng.konst(), self.rng.konst());
        b.line(1, &format!("var s = ((a + {k1}) + gw0[(b & 255)]);"));
        b.line(1, &format!("var t = (b + {k2});"));
        b.line(1, "var x = (s & 255);");
        self.charge(&mut b, &SIG_PROLOGUE);
        if self.rng.range(0, 9) < 6 {
            self.stmt_sys(&mut b, 1);
        }

        // Call sites: loop-free, top-of-body, to lower indices only,
        // and dyn-capped so DAG fan-out stays bounded. Leaf predicates
        // are cheap, so every helper leans on one or two of them; calls
        // into other full helpers stay within the depth window.
        for _ in 0..self.rng.range(1, 2) {
            let j = self.rng.range(0, n_pred as u32 - 1) as usize;
            let kp = self.rng.konst();
            if self.rng.range(0, 1) == 0 {
                b.line(1, &format!("s = (s + h{j}((t + {kp}), s));"));
            } else {
                b.line(1, &format!("t = (t + h{j}(s, (x + {kp})));"));
            }
            self.charge(&mut b, &SIG_CALL);
            b.dyn_cost += dyn_costs[j];
        }
        if idx > n_pred {
            let lo = idx
                .saturating_sub(self.params.max_call_depth as usize)
                .max(n_pred);
            for _ in 0..self.rng.range(0, 2) {
                let j = self.rng.range(lo as u32, idx as u32 - 1) as usize;
                if b.dyn_cost + dyn_costs[j] + 4.0 > HELPER_DYN_CAP {
                    continue;
                }
                if self.rng.range(0, 1) == 0 {
                    b.line(1, &format!("s = (s + h{j}((t + gw1[(s & 511)]), s));"));
                } else {
                    b.line(1, &format!("t = (t + h{j}(s, (t + gb0[(s & 255)])));"));
                }
                self.charge(&mut b, &SIG_CALL);
                b.dyn_cost += dyn_costs[j];
            }
        }

        for _ in 0..self.rng.range(0, 2) {
            let ke = self.rng.konst();
            let cond = match self.rng.range(0, 2) {
                0 => format!("((s - t) > {ke})"),
                1 => format!("(t < {ke})"),
                _ => format!("((t - {ke}) > s)"),
            };
            b.line(1, &format!("if {cond} {{"));
            b.line(2, &format!("return ((s - t) + {ke});"));
            b.line(1, "}");
            self.charge(&mut b, &SIG_IF);
            self.charge(&mut b, &SIG_RET);
        }
        self.emit_block(&mut b, 1, share);
        b.line(1, "return (s + t);");
        self.charge(&mut b, &SIG_RET);
        b.line(0, "}");
        (b.text, b.dyn_cost)
    }

    /// `main`: seed the global arrays, touch every helper once (keeps
    /// the whole DAG live), run a driver loop over a rotating subset,
    /// then print the accumulator (keeps everything else live).
    fn main_fn(&mut self, share: f64, dyn_costs: &[f64]) -> String {
        let mut b = Body {
            text: String::new(),
            spent: 0.0,
            dyn_cost: 0.0,
            mult: 1.0,
            loop_depth: 0,
            loop_vars: Vec::new(),
        };
        b.line(0, "fn main() {");
        b.line(1, &format!("var s = {};", self.rng.konst()));
        b.line(1, &format!("var t = {};", self.rng.konst()));
        b.line(1, "var acc = 0;");
        b.line(1, "var x = (s & 255);");
        self.charge(&mut b, &[5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);

        // Array-seeding loop: every later load reads varied data.
        let (ka, kb, kc) = (self.rng.konst(), self.rng.konst(), self.rng.konst() | 1);
        b.line(1, "var i;");
        b.line(1, "for (i = 0; i < 256; i = (i + 1)) {");
        b.line(2, &format!("gw0[(i & 255)] = ((i * 37) + {ka});"));
        b.line(2, &format!("gw1[(i & 511)] = ((i ^ {kb}) * 5);"));
        b.line(2, &format!("gw1[((i + 256) & 511)] = ((i * {kc}) ^ i);"));
        b.line(2, "gb0[(i & 255)] = (i & 255);");
        b.line(2, "gf0[(i & 63)] = float((i & 63));");
        b.line(1, "}");
        self.charge(&mut b, &[16.0, 1.0, 1.0, 0.0, 5.0, 2.0, 0.0]);
        b.dyn_cost += 256.0 * 22.0;

        // Touch every helper once so none is dead code.
        for (k, &cost) in dyn_costs.iter().enumerate() {
            let kk = self.rng.konst();
            b.line(1, &format!("acc = (acc + h{k}((acc + {kk}), (s + {k})));"));
            self.charge(&mut b, &SIG_CALL);
            b.dyn_cost += cost;
        }

        self.stmt_sys(&mut b, 1);

        // Driver loop: trip count sized so the whole program lands in
        // the target dynamic-op window.
        let subset: Vec<usize> = {
            let n = dyn_costs.len();
            let take = n.min(3);
            (0..take).map(|i| n - 1 - i).collect()
        };
        let per_iter: f64 = subset.iter().map(|&k| dyn_costs[k] + 5.0).sum::<f64>() + 10.0;
        let target_dyn = self.rng.range(60_000, 240_000) as f64;
        let want = ((target_dyn - b.dyn_cost) / per_iter).max(2.0) as u32;
        let trip = want.clamp(self.params.main_trip.0, self.params.main_trip.1);
        b.line(1, "var j;");
        b.line(1, &format!("for (j = 0; j < {trip}; j = (j + 1)) {{"));
        for &k in &subset {
            let kk = self.rng.konst();
            b.line(2, &format!("acc = (acc + h{k}((j + {kk}), (acc + {k})));"));
        }
        b.line(2, "s = (s + (acc >> 3));");
        b.line(1, "}");
        self.charge(&mut b, &SIG_LOOP);
        for _ in &subset {
            self.charge(&mut b, &SIG_CALL);
        }
        b.dyn_cost += trip as f64 * per_iter;

        // Steered filler at main's top level (the only place Sys
        // templates are legal — they run once, keeping the dynamic
        // sys share near the measured ~0%).
        self.emit_block(&mut b, 1, share);

        b.line(1, "print(((acc ^ s) + t));");
        self.charge(&mut b, &[2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        b.line(0, "}");
        b.text
    }

    fn charge(&mut self, b: &mut Body, sig: &[f64; N_CAT]) {
        let m = mass(sig);
        let hidden = HIDDEN_IALU_RATE * m;
        self.steer.charge(sig);
        self.steer.est[0] += hidden;
        b.spent += m + hidden;
        b.dyn_cost += (m + hidden) * b.mult;
    }

    /// Emits steered statements until `budget` static ops are spent.
    fn emit_block(&mut self, b: &mut Body, indent: usize, budget: f64) {
        let stop = b.spent + budget;
        while b.spent < stop {
            let remaining = stop - b.spent;
            let kind = self.pick_kind(b, remaining);
            match kind {
                Kind::Alu => self.stmt_alu(b, indent),
                Kind::Load => self.stmt_load(b, indent),
                Kind::Store => self.stmt_store(b, indent),
                Kind::Float => self.stmt_float(b, indent),
                Kind::If => self.stmt_if(b, indent, remaining),
                Kind::Loop => self.stmt_loop(b, indent, remaining),
                Kind::Micro => self.stmt_micro(b, indent),
            }
        }
    }

    fn pick_kind(&mut self, b: &Body, remaining: f64) -> Kind {
        let mut best = Kind::Alu;
        let mut best_score = f64::NEG_INFINITY;
        let structured_ok = remaining >= 16.0;
        let loop_ok = structured_ok
            && b.loop_depth < self.params.max_loop_nest
            && b.dyn_cost + b.mult * 200.0 < HELPER_DYN_CAP * 4.0;
        // Inside a loop, memory templates index by the loop variable —
        // cheaper and more idiomatic — so bias toward them there.
        let in_loop = !b.loop_vars.is_empty();
        let mem_bias = if in_loop { 1.5 } else { 1.0 };
        let load_sig = if in_loop { &SIG_LOADV } else { &SIG_LOAD };
        let store_sig = if in_loop { &SIG_STOREV } else { &SIG_STORE };
        let menu: [(Kind, &[f64; N_CAT], f64, bool); 7] = [
            (Kind::Alu, &SIG_ALU, 1.0, true),
            (Kind::Load, load_sig, mem_bias, true),
            (Kind::Store, store_sig, mem_bias, true),
            (Kind::Float, &SIG_FLOAT, 1.0, true),
            (Kind::If, &SIG_IF, self.params.branchiness, structured_ok),
            (Kind::Loop, &SIG_LOOP, self.params.loopiness, loop_ok),
            (
                Kind::Micro,
                &SIG_MICRO,
                self.params.branchiness,
                remaining >= 6.0,
            ),
        ];
        for (kind, sig, weight, ok) in menu {
            if !ok {
                continue;
            }
            let sc = self.steer.score(sig) * weight + 0.012 * self.rng.unit();
            if sc > best_score {
                best_score = sc;
                best = kind;
            }
        }
        best
    }

    fn stmt_alu(&mut self, b: &mut Body, indent: usize) {
        let k1 = self.rng.konst();
        let line = match self.rng.range(0, 5) {
            0 => format!("s = ((s + t) - {k1});"),
            1 => format!("t = ((t + {k1}) + s);"),
            2 => format!(
                "s = (((s * {}) + t) - {k1});",
                (self.rng.range(1, 15) << 1) + 1
            ),
            3 => format!("t = (t - (s + {k1}));"),
            4 => format!("s = ((s + t) + {k1});"),
            _ => format!("t = ((t + (s << {})) - {k1});", self.rng.range(1, 5)),
        };
        b.line(indent, &line);
        self.charge(b, &SIG_ALU);
    }

    fn stmt_load(&mut self, b: &mut Body, indent: usize) {
        let (line, sig): (String, &[f64; N_CAT]) =
            if let Some((v, bound)) = b.loop_vars.last().cloned() {
                let k = self.rng.range(0, 255 - bound.min(255));
                let line = match self.rng.range(0, 2) {
                    0 => format!("t = ((t + gw0[({v} + {k})]) + (gb0[{v}] + gw1[{v}]));"),
                    1 => format!("s = ((s + gw1[({v} + {k})]) + (gw0[{v}] - gb0[{v}]));"),
                    _ => format!("t = ((t + gw0[({v} + {k})]) + (gw1[{v}] + gw0[{v}]));"),
                };
                (line, &SIG_LOADV)
            } else {
                let k = self.rng.range(3, 250);
                let line = match self.rng.range(0, 3) {
                    0 => format!("t = (t + (gw0[x] + gw1[(x + {k})]));"),
                    1 => format!("s = ((s + gb0[x]) + (gw0[x] + gw1[(x + {k})]));"),
                    2 => "x = ((x + t) & 255); t = (t + (gw0[x] + gb0[x]));".to_string(),
                    _ => format!("t = ((t + gw0[x]) + (gw1[(x + {k})] - gb0[x]));"),
                };
                (line, &SIG_LOAD)
            };
        b.line(indent, &line);
        self.charge(b, sig);
    }

    fn stmt_store(&mut self, b: &mut Body, indent: usize) {
        let (line, sig): (String, &[f64; N_CAT]) =
            if let Some((v, bound)) = b.loop_vars.last().cloned() {
                let k = self.rng.range(0, 255 - bound.min(255));
                let line = match self.rng.range(0, 1) {
                    0 => format!("gw1[({v} + {k})] = (s + t); gb0[{v}] = (t & 255); gw0[{v}] = s;"),
                    _ => format!("gw0[({v} + {k})] = t; gw1[{v}] = s; gb0[{v}] = (s & 255);"),
                };
                (line, &SIG_STOREV)
            } else {
                let k1 = self.rng.range(3, 250);
                let line = match self.rng.range(0, 2) {
                    0 => format!("gw0[x] = t; gw1[(x + {k1})] = s; gb0[x] = (t & 255);"),
                    1 => format!("gw1[(x + {k1})] = (gw0[x] + {k1}); gw0[x] = s; gw1[x] = t;"),
                    _ => format!("x = ((x + s) & 255); gw0[x] = s; gw1[(x + {k1})] = t;"),
                };
                (line, &SIG_STORE)
            };
        b.line(indent, &line);
        self.charge(b, sig);
    }

    fn stmt_float(&mut self, b: &mut Body, indent: usize) {
        let k = self.rng.konst();
        let line = match self.rng.range(0, 2) {
            0 => format!("s = (s + int((float((s & 31)) + float(((t + {k}) & 15)))));"),
            1 => "gf0[(s & 63)] = (gf0[(t & 63)] + 1.5);".to_string(),
            _ => format!("t = (t + int((gf0[((s + {k}) & 63)] + 1.5)));"),
        };
        b.line(indent, &line);
        self.charge(b, &SIG_FLOAT);
    }

    fn stmt_sys(&mut self, b: &mut Body, indent: usize) {
        b.line(
            indent,
            &format!("putc((65 + (s & {})));", self.rng.range(7, 25)),
        );
        self.charge(b, &SIG_SYS);
    }

    fn stmt_if(&mut self, b: &mut Body, indent: usize, remaining: f64) {
        let k2 = self.rng.konst();
        let cond = match self.rng.range(0, 4) {
            0 => "(s < t)".to_string(),
            1 => format!("((s + {k2}) > t)"),
            2 => format!("(t < {k2})"),
            3 => format!("((t - {k2}) > s)"),
            _ => format!(
                "((s & {}) < {})",
                self.rng.range(3, 63),
                self.rng.range(2, 48)
            ),
        };
        b.line(indent, &format!("if {cond} {{"));
        self.charge(b, &SIG_IF);
        // Small fixed-size bodies: real code is branch-dense (one
        // branch per ~15 ops in the hand-written suite), so control
        // headers must come frequently, not wrap huge regions.
        let body = (5.0 + 6.0 * self.rng.unit()).min(remaining.max(5.0));
        self.emit_block(b, indent + 1, body);
        if self.rng.range(0, 1) == 0 {
            b.line(indent, "} else {");
            let els = 5.0 + 4.0 * self.rng.unit();
            self.emit_block(b, indent + 1, els);
        }
        b.line(indent, "}");
    }

    /// A micro-branch: one-line `if` with a cheap un-masked compare and a
    /// single-statement body. Real code is branch-dense (one control op
    /// per ~15 total), and big `if` regions dilute that — these supply
    /// control density without dragging a whole block behind them. The
    /// body statement is itself deficit-steered between alu/load/store
    /// so a micro-branch can pay down two categories at once.
    /// A micro-branch: one-line `if` with a cheap un-masked compare and a
    /// single-statement body. Real code is branch-dense (one control op
    /// per ~15 total), and big `if` regions dilute that — these supply
    /// control density without dragging a whole block behind them. The
    /// body statement is itself deficit-steered between alu/load/store
    /// so a micro-branch can pay down two categories at once.
    fn stmt_micro(&mut self, b: &mut Body, indent: usize) {
        let k = self.rng.konst();
        let cond = match self.rng.range(0, 3) {
            0 => "(s < t)".to_string(),
            1 => format!("((s + {k}) > t)"),
            2 => format!("(t < {k})"),
            _ => format!("((t + {k}) > s)"),
        };
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, sig) in [&SIG_MB_ALU, &SIG_MB_LOAD, &SIG_MB_STORE]
            .into_iter()
            .enumerate()
        {
            let sc = self.steer.score(sig) + 0.012 * self.rng.unit();
            if sc > best_score {
                best_score = sc;
                best = i;
            }
        }
        let kb = self.rng.konst();
        let (body, sig): (String, &[f64; N_CAT]) = match best {
            1 => (
                if let Some((v, bound)) = b.loop_vars.last().cloned() {
                    let ko = self.rng.range(0, 255 - bound.min(255));
                    format!("t = (t + (gw0[({v} + {ko})] + gb0[{v}]));")
                } else if self.rng.range(0, 1) == 0 {
                    "t = (t + (gw0[x] + gb0[x]));".to_string()
                } else {
                    "s = (s + (gw1[x] + gw0[x]));".to_string()
                },
                &SIG_MB_LOAD,
            ),
            2 => (
                if self.rng.range(0, 1) == 0 {
                    format!("gw1[(x + {kb})] = (s + {kb}); gw0[x] = s;")
                } else {
                    "gb0[x] = (t & 255); gw1[x] = t;".to_string()
                },
                &SIG_MB_STORE,
            ),
            _ => (
                if self.rng.range(0, 1) == 0 {
                    format!("s = (s + {kb});")
                } else {
                    format!("t = (t - {kb});")
                },
                &SIG_MB_ALU,
            ),
        };
        b.line(indent, &format!("if {cond} {{ {body} }}"));
        self.charge(b, sig);
    }

    fn stmt_loop(&mut self, b: &mut Body, indent: usize, remaining: f64) {
        let v = format!("i{}", self.var_ctr);
        self.var_ctr += 1;
        let mut trip = if b.loop_depth == 0 {
            self.rng.range(4, self.params.loop_trip_max.max(5))
        } else {
            self.rng.range(3, 8)
        };
        let body = (5.0 + 8.0 * self.rng.unit()).min(remaining.max(5.0));
        // Shrink the trip if the projected dynamic cost would blow the
        // function cap; below 2 iterations a loop is pointless — fall
        // back to a straight-line statement.
        let per_iter = b.mult * (body + 7.0);
        while trip > 2 && b.dyn_cost + trip as f64 * per_iter > HELPER_DYN_CAP {
            trip /= 2;
        }
        if trip < 2 {
            self.stmt_alu(b, indent);
            return;
        }
        let k = self.rng.konst() | 1;
        b.line(indent, &format!("var {v};"));
        b.line(
            indent,
            &format!("for ({v} = 0; {v} < {trip}; {v} = ({v} + 1)) {{"),
        );
        self.charge(b, &SIG_LOOP);
        b.dyn_cost += trip as f64 * b.mult * 4.0;
        let saved_mult = b.mult;
        b.mult *= trip as f64;
        b.loop_depth += 1;
        b.loop_vars.push((v.clone(), trip));
        b.line(indent + 1, &format!("s = (s + ({v} + {k}));"));
        self.charge(b, &[2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        self.emit_block(b, indent + 1, body);
        b.loop_vars.pop();
        b.loop_depth -= 1;
        b.mult = saved_mult;
        b.line(indent, "}");
    }
}
