//! Scratch probe: measure the true compiled op-mix cost of each
//! generator template by compiling a function with N copies and
//! diffing against a baseline. Used to tune `gen.rs` signatures.

use yula::opmix::{OpCategory, OpMix};

fn counts(src: &str) -> [i64; 7] {
    let p = lego::compile(src, &lego::Options::default()).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let m = OpMix::static_mix(&p);
    let mut c = [0i64; 7];
    for (i, &cat) in OpCategory::ALL.iter().enumerate() {
        c[i] = m.count(cat) as i64;
    }
    c
}

fn wrap(body: &str) -> String {
    format!(
        "global gw0[256];\nglobal gw1[512];\nbglobal gb0[256];\nfglobal gf0[64];\n\
         fn h0(a, b) {{\n var s = ((a ^ 11) + 22);\n var t = ((b * 7) ^ 33);\n{body}\n return (s + t);\n}}\n\
         fn main() {{ print(h0(3, 4)); }}\n"
    )
}

fn probe(name: &str, stmt_fn: impl Fn(usize) -> String) {
    let n = 16;
    let base = wrap("");
    let mut body = String::new();
    for i in 0..n {
        body.push_str(&stmt_fn(i));
        body.push('\n');
    }
    let with = wrap(&body);
    let (b, w) = (counts(&base), counts(&with));
    print!("{name:<10}");
    for i in 0..7 {
        print!(" {:>6.2}", (w[i] - b[i]) as f64 / n as f64);
    }
    println!();
}

fn opkind_histogram() {
    use std::collections::BTreeMap;
    let params = ccc_workgen::GenParams::for_flavor(ccc_workgen::Flavor::Tepic);
    let gp = ccc_workgen::generate_program(12345, &params, "histo");
    let p = lego::compile(&gp.source, &lego::Options::default()).unwrap();
    let mut h: BTreeMap<String, u64> = BTreeMap::new();
    {
        for op in p.ops() {
            use tepic_isa::OpKind::*;
            let key = match &op.kind {
                IntAlu { op, .. } => format!("IntAlu/{op:?}"),
                IntCmp { .. } => "IntCmp".into(),
                FloatCmp { .. } => "FloatCmp".into(),
                LoadImm { .. } => "LoadImm".into(),
                Float { .. } => "Float".into(),
                CvtIf { .. } => "CvtIf".into(),
                CvtFi { .. } => "CvtFi".into(),
                other => format!("{other:?}")
                    .split([' ', '{'])
                    .next()
                    .unwrap()
                    .to_string(),
            };
            *h.entry(key).or_default() += 1;
        }
    }
    let total: u64 = h.values().sum();
    println!("generated program op histogram ({total} ops):");
    for (k, v) in &h {
        println!(
            "  {k:<18} {v:>5}  {:>5.1}%",
            100.0 * *v as f64 / total as f64
        );
    }
}

fn histo_of(p: &tepic_isa::Program, label: &str) {
    use std::collections::BTreeMap;
    let mut h: BTreeMap<String, u64> = BTreeMap::new();
    for op in p.ops() {
        use tepic_isa::OpKind::*;
        let key = match &op.kind {
            IntAlu { op, .. } => format!("IntAlu/{op:?}"),
            IntCmp { .. } => "IntCmp".into(),
            FloatCmp { .. } => "FloatCmp".into(),
            LoadImm { .. } => "LoadImm".into(),
            Float { .. } => "Float".into(),
            CvtIf { .. } => "CvtIf".into(),
            CvtFi { .. } => "CvtFi".into(),
            other => format!("{other:?}")
                .split([' ', '{'])
                .next()
                .unwrap()
                .to_string(),
        };
        *h.entry(key).or_default() += 1;
    }
    let total: u64 = h.values().sum();
    println!("{label} ({total} ops):");
    for (k, v) in &h {
        println!(
            "  {k:<18} {v:>5}  {:>5.1}%",
            100.0 * *v as f64 / total as f64
        );
    }
}

fn main() {
    for name in ["compress", "gcc"] {
        let w = tinker_workloads::by_name(name).unwrap();
        histo_of(&w.compile().unwrap(), name);
    }
    opkind_histogram();
    {
        let b = counts(&wrap(""));
        let total: i64 = b.iter().sum();
        println!("baseline abs: {b:?} total {total}");
        let one = counts("fn main() { print(3); }");
        let t1: i64 = one.iter().sum();
        println!("minimal main: {one:?} total {t1}");
    }
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "template", "ialu", "cmp", "float", "load", "store", "ctrl", "sys"
    );
    probe("alu0", |i| {
        format!(
            "s = (((s * {}) + (t ^ {})) - {});",
            2 * i + 3,
            100 + i,
            200 + i
        )
    });
    probe("alu1", |i| {
        format!("t = ((t + (s << {})) ^ {});", (i % 7) + 1, 300 + i)
    });
    probe("alu2", |i| {
        format!("s = ((s ^ (t >> {})) + {});", (i % 7) + 1, 400 + i)
    });
    probe("alu3", |i| {
        format!(
            "t = (((t | {}) & {}) + (s * {}));",
            10 + i,
            500 + i,
            2 * i + 5
        )
    });
    probe("loadw0", |i| {
        format!("t = (t + gw0[((s ^ {}) & 255)]);", 600 + i)
    });
    probe("loadw1", |i| {
        format!("s = (s ^ gw1[((t + {}) & 511)]);", 700 + i)
    });
    probe("loadb", |i| {
        format!("t = (t + gb0[((s + {}) & 255)]);", 800 + i)
    });
    probe("loadw_s", |i| {
        format!("t = ((t + {}) + gw0[(s & 255)]);", 810 + i)
    });
    probe("storew0", |i| {
        format!("gw1[((s + {}) & 511)] = (t ^ {});", 900 + i, i)
    });
    probe("storew1", |i| {
        format!("gw0[((t ^ {}) & 255)] = (s + {});", 1000 + i, i)
    });
    probe("storeb", |i| {
        format!("gb0[((s + {}) & 255)] = ((t + {}) & 255);", 1100 + i, i)
    });
    probe("float0", |i| {
        format!(
            "s = (s ^ int((float((s & 31)) + float(((t + {}) & 15)))));",
            1200 + i
        )
    });
    probe("float1", |i| {
        format!("gf0[((s + {}) & 63)] = (float((t & 31)) * 0.5);", 1300 + i)
    });
    probe("float2", |i| {
        format!("t = (t + int((gf0[((s ^ {}) & 63)] + 1.5)));", 1400 + i)
    });
    probe("sys", |i| format!("putc((65 + (s & {})));", (i % 19) + 7));
    probe("quadload", |_i| {
        "t = ((gw0[(s & 255)] + gw1[(t & 511)]) + (gb0[(s & 255)] - gw0[(t & 255)]));".to_string()
    });
    probe("triload", |_i| {
        "s = ((gw0[(t & 255)] + gb0[(t & 255)]) + gw1[(s & 511)]);".to_string()
    });
    probe("dualload", |_i| {
        "t = (gw0[(s & 255)] + gb0[(s & 255)]);".to_string()
    });
    probe("cheapst", |_i| "gw0[(s & 255)] = s;".to_string());
    probe("dualst", |_i| {
        "gw0[(s & 255)] = t; gw1[(t & 511)] = s;".to_string()
    });
    probe("ldst", |i| {
        format!("gw1[(s & 511)] = (gw0[(s & 255)] + {});", 3000 + i)
    });
    probe("mif_alu", |i| {
        format!("if (s < t) {{ s = (s + {}); }}", 1700 + i)
    });
    probe("mif_alu2", |i| {
        format!("if (t < {}) {{ t = (t ^ (s + {})); }}", 1800 + i, i)
    });
    probe("mif_load", |i| {
        format!(
            "if ((s + {}) > t) {{ t = (t + gw0[(s & 255)]); }}",
            1900 + i
        )
    });
    probe("mif_store", |i| {
        format!(
            "if ((t ^ {}) > s) {{ gw1[(t & 511)] = (s + {}); }}",
            2000 + i,
            i
        )
    });
    probe("if_then", |i| {
        format!(
            "if (((s & {}) + {}) < (t & {})) {{ s = (s + {}); }}",
            (i % 61) + 3,
            1500 + i,
            (i % 59) + 3,
            i
        )
    });
    probe("if_else", |i| {
        format!(
            "if ((s & {}) > ((t ^ {}) & {})) {{ s = (s + {}); }} else {{ t = (t ^ {}); }}",
            (i % 61) + 3,
            1600 + i,
            (i % 59) + 3,
            i,
            i
        )
    });
    probe("loop", |i| {
        format!(
            "var z{i};\nfor (z{i} = 0; z{i} < {}; z{i} = (z{i} + 1)) {{ s = (s + (z{i} * {})); }}",
            (i % 20) + 4,
            2 * i + 3
        )
    });
    // Call+ret overhead: measure a program with N tiny callees.
    {
        let n = 8;
        let mut src = String::from("fn c0(a, b) { return (a + b); }\n");
        let mut main = String::from("fn main() { var s = 1;\n");
        for i in 1..=n {
            src.push_str(&format!("fn c{i}(a, b) {{ return ((a + {i}) ^ b); }}\n"));
            main.push_str(&format!("s = (s + c{i}(s, {i}));\n"));
        }
        main.push_str("print(s); }\n");
        src.push_str(&main);
        let c = counts(&src);
        println!("call+fn   per-callee:");
        print!("{:<10}", "callfn");
        for v in c {
            print!(" {:>6.2}", v as f64 / n as f64);
        }
        println!();
    }
}
