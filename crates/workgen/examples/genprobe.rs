//! Calibration probe: generate a corpus, compile + run everything, and
//! print the generated-vs-target mix table. This is the tool used to
//! tune the signature table in `gen.rs` — run it after changing any
//! statement template.
//!
//! ```sh
//! cargo run --release -p ccc-workgen --example genprobe -- [seed] [tier] [flavor]
//! ```

use ccc_workgen::{generate_corpus, CalibrationReport, Flavor, MixProfile, Tier};
use yula::{Emulator, Limits};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let tier = args
        .get(2)
        .and_then(|s| Tier::by_name(s))
        .unwrap_or(Tier::Paper);
    let flavor = args
        .get(3)
        .and_then(|s| Flavor::by_name(s))
        .unwrap_or(Flavor::Tepic);

    let opts = lego::Options::default();
    let corpus = generate_corpus(seed, tier, flavor).unwrap();
    let mut programs = Vec::new();
    let mut traces = Vec::new();
    let mut dyn_ops = 0u64;
    let mut static_ops = 0u64;
    let mut dyn_min = u64::MAX;
    let mut dyn_max = 0u64;
    for gp in &corpus.programs {
        let p = lego::compile(&gp.source, &opts)
            .unwrap_or_else(|e| panic!("{}: {e}\n{}", gp.name, gp.source));
        let r = Emulator::new(&p)
            .run(&Limits { max_ops: 5_000_000 })
            .unwrap_or_else(|e| panic!("{}: {e}", gp.name));
        static_ops += p.num_ops() as u64;
        dyn_ops += r.stats.ops;
        dyn_min = dyn_min.min(r.stats.ops);
        dyn_max = dyn_max.max(r.stats.ops);
        programs.push(p);
        traces.push(r.trace);
    }

    let report = CalibrationReport {
        seed,
        tier: tier.name().to_string(),
        flavor: flavor.name().to_string(),
        programs: corpus.programs.len(),
        source_bytes: corpus.source_bytes(),
        static_ops,
        blocks: programs.iter().map(|p| p.num_blocks() as u64).sum(),
        dynamic_ops: dyn_ops,
        target: flavor.target(),
        measured_real: MixProfile::measured_real().clone(),
        generated_static: MixProfile::from_programs(&programs),
        generated_dynamic: MixProfile::from_traces(programs.iter().zip(traces.iter())),
        threshold_pp: 5.0,
        scheme_sites: Vec::new(),
        campaign: None,
    };
    print!("{}", report.render());
    println!(
        "per-program static avg {} ops; dynamic min {dyn_min} max {dyn_max}",
        static_ops / programs.len() as u64
    );
}
