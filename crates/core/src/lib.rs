//! # ccc-core — compiler-driven cached code compression
//!
//! The primary contribution of Larin & Conte (MICRO-32, 1999): program-
//! specific re-encodings of TEPIC code images that shrink the embedded
//! system ROM while remaining executable through a redesigned instruction
//! fetch path.
//!
//! Two families are implemented, exactly as in the paper §2:
//!
//! * **Huffman compression** of the original 40-bit encoding with three
//!   alphabet choices — [`schemes::byte`] (the code segment as a byte
//!   stream), [`schemes::stream`] (independent Huffman streams split at
//!   fixed field boundaries, Figure 3; six configurations including the
//!   paper's `stream` and `stream_1`), and [`schemes::full`] (one whole
//!   operation per symbol — best compression, biggest decoder);
//! * **Tailored encoding** ([`schemes::tailored`]) — every field shrunk
//!   to the minimum width the program needs, opcodes/registers densely
//!   renumbered, reserved fields dropped; *uncompressed but compact*, so
//!   the pipeline decoder consumes it directly (§2.3).
//!
//! Supporting machinery: byte-aligned block layout ([`EncodedProgram`]),
//! the Address Translation Table ([`att`]), decoder hardware cost models
//! ([`DecoderCost`], paper §3.5 Figures 9–10) with synthesizable-Verilog
//! emission for the tailored decoder ([`pla`]), and a comparison report
//! over all schemes ([`report`], Figures 5 and 7). The robustness
//! substrate lives here too: deterministic fault-injection sites
//! ([`failpoint`]) and the bounded retry/backoff policy ([`retry`]) the
//! self-healing bench engine runs on (DESIGN.md §13).
//!
//! # Example
//!
//! ```
//! use ccc_core::schemes::{self, Scheme};
//!
//! let p = lego::compile(
//!     "fn main() { var i; for (i = 0; i < 9; i = i + 1) { print(i); } }",
//!     &lego::Options::default(),
//! ).unwrap();
//! let full = schemes::full::FullScheme::default().compress(&p).unwrap();
//! assert!(full.image.total_bytes() < p.code_size());
//! assert!(full.verify_roundtrip(&p));
//! ```

pub mod att;
pub mod encoded;
pub mod failpoint;
pub mod fault;
pub mod integrity;
pub mod pla;
pub mod report;
pub mod retry;
pub mod schemes;
pub mod serialize;

pub use att::{AddressTranslationTable, AttEntry, ATT_ENTRY_BYTES};
pub use encoded::{DecoderCost, EncodedProgram, SchemeKind};
pub use failpoint::{FailMode, Failpoints, Injection};
pub use fault::{CampaignConfig, CampaignReport, FaultInjector, FaultKind, FaultTarget, Outcome};
pub use integrity::{crc32, crc8, parity_fold, IntegrityError};
pub use report::{CompressionReport, SchemeRow};
pub use retry::{RetryPolicy, RetryTrace};
pub use serialize::{
    encoded_from_bytes, encoded_to_bytes, report_from_bytes, report_to_bytes, CODEC_VERSION,
};
