//! Encoded program images: the common shape every scheme produces.
//!
//! Whatever the encoding, the fetch path needs the same facts (paper
//! §3.3): the byte address where each block starts (block starts are
//! byte-aligned; ops within a block are packed back to back), each
//! block's encoded size, and the raw bytes (for the memory-bus bit-flip
//! power model).

use std::fmt;
use tinker_huffman::DecoderComplexity;

/// Which encoding produced an image.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// The original, uncompressed 40-bit encoding (5 bytes per op).
    Base,
    /// Byte-wise Huffman.
    Byte,
    /// Stream-based Huffman with a named configuration.
    Stream(String),
    /// Whole-op ("Full") Huffman.
    Full,
    /// Tailored (program-specific compact) encoding.
    Tailored,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeKind::Base => write!(f, "base"),
            SchemeKind::Byte => write!(f, "byte"),
            SchemeKind::Stream(name) => write!(f, "{name}"),
            SchemeKind::Full => write!(f, "full"),
            SchemeKind::Tailored => write!(f, "tailored"),
        }
    }
}

/// Hardware cost of the decode machinery a scheme requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecoderCost {
    /// No extra decoder (the Base encoding).
    None,
    /// Huffman tree decoder(s) — one [`DecoderComplexity`] per table
    /// (stream schemes have several). Cost per paper Figure 9's model.
    Huffman(Vec<DecoderComplexity>),
    /// Tailored PLA decoder: `(inputs, product_terms, outputs)`.
    Pla {
        inputs: u32,
        terms: u32,
        outputs: u32,
    },
}

impl DecoderCost {
    /// Total transistor estimate.
    pub fn transistors(&self) -> u128 {
        match self {
            DecoderCost::None => 0,
            DecoderCost::Huffman(parts) => parts.iter().map(|p| p.transistors()).sum(),
            DecoderCost::Pla {
                inputs,
                terms,
                outputs,
            } => crate::pla::pla_transistors(*inputs, *terms, *outputs),
        }
    }

    /// Total dictionary entries across all tables (k in the paper).
    pub fn dictionary_entries(&self) -> usize {
        match self {
            DecoderCost::None | DecoderCost::Pla { .. } => 0,
            DecoderCost::Huffman(parts) => parts.iter().map(|p| p.k).sum(),
        }
    }
}

/// One encoded code segment.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedProgram {
    /// Producing scheme.
    pub kind: SchemeKind,
    /// The encoded code segment; block starts are byte-aligned.
    pub bytes: Vec<u8>,
    /// Byte offset of each block's first operation.
    pub block_start: Vec<u64>,
    /// Encoded size of each block in bytes (including the final byte's
    /// padding bits).
    pub block_bytes: Vec<u32>,
    /// Decode hardware cost.
    pub decoder: DecoderCost,
}

impl EncodedProgram {
    /// Total encoded code-segment size in bytes.
    pub fn total_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio against an original size (encoded/original;
    /// lower is better — the paper's "percent of original size").
    pub fn ratio(&self, original_bytes: usize) -> f64 {
        if original_bytes == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / original_bytes as f64
    }

    /// Byte range `[start, end)` of a block in this image's address
    /// space.
    pub fn block_range(&self, block: usize) -> (u64, u64) {
        let s = self.block_start[block];
        (s, s + self.block_bytes[block] as u64)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_start.len()
    }

    /// Structural sanity: blocks are in order, non-overlapping, within
    /// the byte buffer.
    pub fn check_layout(&self) -> bool {
        let mut prev_end = 0u64;
        for b in 0..self.num_blocks() {
            let (s, e) = self.block_range(b);
            if s < prev_end || e < s {
                return false;
            }
            prev_end = e;
        }
        prev_end <= self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(kind: SchemeKind) -> EncodedProgram {
        EncodedProgram {
            kind,
            bytes: vec![0; 10],
            block_start: vec![0, 4],
            block_bytes: vec![4, 6],
            decoder: DecoderCost::None,
        }
    }

    #[test]
    fn ratio_and_ranges() {
        let e = dummy(SchemeKind::Full);
        assert_eq!(e.total_bytes(), 10);
        assert!((e.ratio(20) - 0.5).abs() < 1e-12);
        assert_eq!(e.block_range(1), (4, 10));
        assert!(e.check_layout());
    }

    #[test]
    fn layout_check_catches_overlap() {
        let mut e = dummy(SchemeKind::Byte);
        e.block_start = vec![0, 2];
        assert!(!e.check_layout(), "block 1 starts inside block 0");
    }

    #[test]
    fn decoder_cost_sums_parts() {
        let parts = vec![
            DecoderComplexity { n: 4, k: 10, m: 8 },
            DecoderComplexity { n: 4, k: 10, m: 8 },
        ];
        let one = parts[0].transistors();
        let cost = DecoderCost::Huffman(parts);
        assert_eq!(cost.transistors(), 2 * one);
        assert_eq!(cost.dictionary_entries(), 20);
        assert_eq!(DecoderCost::None.transistors(), 0);
    }

    #[test]
    fn scheme_kind_display() {
        assert_eq!(
            SchemeKind::Stream("stream_1".into()).to_string(),
            "stream_1"
        );
        assert_eq!(SchemeKind::Tailored.to_string(), "tailored");
    }
}
