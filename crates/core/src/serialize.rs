//! Wire serialization of encoded images and compression reports
//! (artifact-cache format).
//!
//! The prepared-workload engine caches each `(workload, scheme)` cell of
//! the preparation matrix as one [`EncodedProgram`] payload, and the
//! whole-program scheme comparison as one [`CompressionReport`] payload.
//! The layouts are explicit (see [`tepic_isa::wire`]); [`CODEC_VERSION`]
//! stamps both, and cache keys include it, so changing any scheme's
//! output or this byte format invalidates every stale entry.

use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use crate::report::{CompressionReport, SchemeRow};
use tepic_isa::wire::{WireError, WireReader, WireWriter};
use tinker_huffman::DecoderComplexity;

/// Version stamp covering the compression codecs *and* the wire layouts
/// below. Bump whenever any scheme's emitted bytes, the ATT layout, the
/// decoder cost model, or these serializers change.
pub const CODEC_VERSION: u32 = 1;

const KIND_BASE: u8 = 0;
const KIND_BYTE: u8 = 1;
const KIND_STREAM: u8 = 2;
const KIND_FULL: u8 = 3;
const KIND_TAILORED: u8 = 4;

const DEC_NONE: u8 = 0;
const DEC_HUFFMAN: u8 = 1;
const DEC_PLA: u8 = 2;

/// Serializes an encoded image into the artifact-cache wire format.
pub fn encoded_to_bytes(e: &EncodedProgram) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(CODEC_VERSION);
    match &e.kind {
        SchemeKind::Base => w.put_u8(KIND_BASE),
        SchemeKind::Byte => w.put_u8(KIND_BYTE),
        SchemeKind::Stream(name) => {
            w.put_u8(KIND_STREAM);
            w.put_str(name);
        }
        SchemeKind::Full => w.put_u8(KIND_FULL),
        SchemeKind::Tailored => w.put_u8(KIND_TAILORED),
    }
    w.put_bytes(&e.bytes);
    w.put_len(e.block_start.len());
    for &s in &e.block_start {
        w.put_u64(s);
    }
    for &b in &e.block_bytes {
        w.put_u32(b);
    }
    match &e.decoder {
        DecoderCost::None => w.put_u8(DEC_NONE),
        DecoderCost::Huffman(parts) => {
            w.put_u8(DEC_HUFFMAN);
            w.put_len(parts.len());
            for p in parts {
                w.put_u32(p.n);
                w.put_len(p.k);
                w.put_u32(p.m);
            }
        }
        DecoderCost::Pla {
            inputs,
            terms,
            outputs,
        } => {
            w.put_u8(DEC_PLA);
            w.put_u32(*inputs);
            w.put_u32(*terms);
            w.put_u32(*outputs);
        }
    }
    w.into_bytes()
}

/// Deserializes an image written by [`encoded_to_bytes`].
///
/// # Errors
///
/// [`WireError`] on truncation, bad tags, version mismatch, or a block
/// table that fails [`EncodedProgram::check_layout`].
pub fn encoded_from_bytes(bytes: &[u8]) -> Result<EncodedProgram, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u32()?;
    if version != CODEC_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = match r.get_u8()? {
        KIND_BASE => SchemeKind::Base,
        KIND_BYTE => SchemeKind::Byte,
        KIND_STREAM => SchemeKind::Stream(r.get_str()?.to_string()),
        KIND_FULL => SchemeKind::Full,
        KIND_TAILORED => SchemeKind::Tailored,
        t => return Err(WireError::BadTag(t)),
    };
    let payload = r.get_bytes()?.to_vec();
    let nblocks = r.get_len()?;
    let mut block_start = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        block_start.push(r.get_u64()?);
    }
    let mut block_bytes = Vec::with_capacity(nblocks);
    for _ in 0..nblocks {
        block_bytes.push(r.get_u32()?);
    }
    let decoder = match r.get_u8()? {
        DEC_NONE => DecoderCost::None,
        DEC_HUFFMAN => {
            let n = r.get_len()?;
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                parts.push(DecoderComplexity {
                    n: r.get_u32()?,
                    k: r.get_len()?,
                    m: r.get_u32()?,
                });
            }
            DecoderCost::Huffman(parts)
        }
        DEC_PLA => DecoderCost::Pla {
            inputs: r.get_u32()?,
            terms: r.get_u32()?,
            outputs: r.get_u32()?,
        },
        t => return Err(WireError::BadTag(t)),
    };
    if !r.is_exhausted() {
        return Err(WireError::Invalid("trailing bytes after image".into()));
    }
    let e = EncodedProgram {
        kind,
        bytes: payload,
        block_start,
        block_bytes,
        decoder,
    };
    if !e.check_layout() {
        return Err(WireError::Invalid("block layout check failed".into()));
    }
    Ok(e)
}

/// Serializes a compression report into the artifact-cache wire format.
pub fn report_to_bytes(rep: &CompressionReport) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(CODEC_VERSION);
    w.put_str(&rep.name);
    w.put_len(rep.original_bytes);
    w.put_len(rep.rows.len());
    for row in &rep.rows {
        w.put_str(&row.scheme);
        w.put_len(row.code_bytes);
        w.put_u64(row.code_ratio.to_bits());
        w.put_len(row.att_bytes);
        w.put_u64(row.total_ratio.to_bits());
        w.put_u64(row.decoder_transistors as u64);
        w.put_u64((row.decoder_transistors >> 64) as u64);
        w.put_len(row.dictionary_entries);
    }
    w.into_bytes()
}

/// Deserializes a report written by [`report_to_bytes`].
///
/// # Errors
///
/// [`WireError`] on truncation, trailing bytes or version mismatch.
pub fn report_from_bytes(bytes: &[u8]) -> Result<CompressionReport, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u32()?;
    if version != CODEC_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let name = r.get_str()?.to_string();
    let original_bytes = r.get_len()?;
    let nrows = r.get_len()?;
    let mut rows = Vec::with_capacity(nrows);
    for _ in 0..nrows {
        let scheme = r.get_str()?.to_string();
        let code_bytes = r.get_len()?;
        let code_ratio = f64::from_bits(r.get_u64()?);
        let att_bytes = r.get_len()?;
        let total_ratio = f64::from_bits(r.get_u64()?);
        let lo = r.get_u64()? as u128;
        let hi = r.get_u64()? as u128;
        let dictionary_entries = r.get_len()?;
        rows.push(SchemeRow {
            scheme,
            code_bytes,
            code_ratio,
            att_bytes,
            total_ratio,
            decoder_transistors: (hi << 64) | lo,
            dictionary_entries,
        });
    }
    if !r.is_exhausted() {
        return Err(WireError::Invalid("trailing bytes after report".into()));
    }
    Ok(CompressionReport {
        name,
        original_bytes,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> EncodedProgram {
        EncodedProgram {
            kind: SchemeKind::Stream("stream_1".into()),
            bytes: vec![1, 2, 3, 4, 5, 6, 7],
            block_start: vec![0, 3],
            block_bytes: vec![3, 4],
            decoder: DecoderCost::Huffman(vec![
                DecoderComplexity { n: 9, k: 120, m: 8 },
                DecoderComplexity { n: 4, k: 9, m: 16 },
            ]),
        }
    }

    #[test]
    fn encoded_roundtrip_identity() {
        for img in [
            sample_image(),
            EncodedProgram {
                kind: SchemeKind::Tailored,
                bytes: vec![0xAA; 11],
                block_start: vec![0],
                block_bytes: vec![11],
                decoder: DecoderCost::Pla {
                    inputs: 10,
                    terms: 70,
                    outputs: 33,
                },
            },
            EncodedProgram {
                kind: SchemeKind::Base,
                bytes: vec![],
                block_start: vec![],
                block_bytes: vec![],
                decoder: DecoderCost::None,
            },
        ] {
            let bytes = encoded_to_bytes(&img);
            assert_eq!(encoded_from_bytes(&bytes).unwrap(), img);
        }
    }

    #[test]
    fn encoded_rejects_truncation_and_garbage() {
        let bytes = encoded_to_bytes(&sample_image());
        assert!(encoded_from_bytes(&bytes[..bytes.len() - 2]).is_err());
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(encoded_from_bytes(&extra).is_err());
        let mut vers = bytes;
        vers[0] = 0xEE;
        assert!(matches!(
            encoded_from_bytes(&vers),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn encoded_rejects_bad_layout() {
        let mut img = sample_image();
        img.block_start = vec![0, 2]; // overlaps block 0 (3 bytes)
        let bytes = encoded_to_bytes(&img);
        assert!(matches!(
            encoded_from_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn report_roundtrip_identity() {
        let rep = CompressionReport {
            name: "perl".into(),
            original_bytes: 12345,
            rows: vec![SchemeRow {
                scheme: "full".into(),
                code_bytes: 3700,
                code_ratio: 0.2997,
                att_bytes: 512,
                total_ratio: 0.3412,
                decoder_transistors: u128::from(u64::MAX) * 7,
                dictionary_entries: 431,
            }],
        };
        let bytes = report_to_bytes(&rep);
        assert_eq!(report_from_bytes(&bytes).unwrap(), rep);
    }
}
