//! Bounded retry with exponential backoff, on injectable time.
//!
//! The self-healing engine retries *transient* infrastructure failures —
//! a cache read that hit an I/O error, a flaky stage build, a poisoned
//! pool job — a bounded number of times with exponentially growing
//! delays. All timing flows through the injectable
//! [`Clock`]/[`Sleeper`] pair from `ccc-telemetry`: production pairs a
//! [`MonotonicClock`](ccc_telemetry::MonotonicClock) with a
//! [`ThreadSleeper`](ccc_telemetry::ThreadSleeper); tests hand one
//! [`FakeClock`](ccc_telemetry::FakeClock) in as both, which turns every
//! backoff sleep into a fake-time advance and makes the exact retry
//! schedule assertable to the nanosecond. See DESIGN.md §13.
//!
//! Policy semantics: `max_attempts` bounds the *total* number of tries
//! (first try included). After failed attempt `k` (1-based) the policy
//! sleeps `min(base_delay_ns * multiplier^(k-1), max_delay_ns)` before
//! trying again; after attempt `max_attempts` it gives up and returns
//! the final error. Deterministic (no jitter) by design — reproducible
//! schedules matter more here than thundering-herd avoidance, and the
//! chaos harness depends on them.

use ccc_telemetry::{Clock, Sleeper};
use std::fmt;

/// A bounded exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, first try included. `0` is treated as `1`.
    pub max_attempts: u32,
    /// Delay before the second attempt, in nanoseconds.
    pub base_delay_ns: u64,
    /// Backoff growth factor per failed attempt.
    pub multiplier: u32,
    /// Upper bound on any single delay, in nanoseconds.
    pub max_delay_ns: u64,
}

impl Default for RetryPolicy {
    /// The engine's default: 6 attempts, 100 µs → 3.2 ms doubling
    /// backoff. Small enough that a fully-injected chaos run stays
    /// fast, deep enough that an injected fault firing at 20% per
    /// attempt survives retries with probability ≈ 1 − 6.4e-5.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base_delay_ns: 100_000,
            multiplier: 2,
            max_delay_ns: 3_200_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay_ns: 0,
            multiplier: 1,
            max_delay_ns: 0,
        }
    }

    /// The delay scheduled after failed attempt `attempt` (1-based),
    /// saturating at `max_delay_ns`.
    pub fn delay_after(&self, attempt: u32) -> u64 {
        let factor = u64::from(self.multiplier).saturating_pow(attempt.saturating_sub(1));
        self.base_delay_ns
            .saturating_mul(factor)
            .min(self.max_delay_ns)
    }

    /// Runs `op` under this policy. `op` receives the 1-based attempt
    /// number; transientness is the caller's call — everything that
    /// returns `Err` here is retried until attempts run out.
    ///
    /// Returns the final result plus a [`RetryTrace`] recording the
    /// attempt count and every delay actually slept, bracketed by clock
    /// reads (exact under a `FakeClock`).
    ///
    /// # Errors
    ///
    /// The last attempt's error once `max_attempts` is exhausted.
    pub fn run<T, E>(
        &self,
        clock: &dyn Clock,
        sleeper: &dyn Sleeper,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> (Result<T, E>, RetryTrace) {
        let max = self.max_attempts.max(1);
        let mut trace = RetryTrace {
            attempts: 0,
            delays_ns: Vec::new(),
            start_ns: clock.now_ns(),
            end_ns: 0,
        };
        let result = loop {
            trace.attempts += 1;
            match op(trace.attempts) {
                Ok(v) => break Ok(v),
                Err(e) if trace.attempts >= max => break Err(e),
                Err(_) => {
                    let delay = self.delay_after(trace.attempts);
                    sleeper.sleep_ns(delay);
                    trace.delays_ns.push(delay);
                }
            }
        };
        trace.end_ns = clock.now_ns();
        (result, trace)
    }
}

/// What one [`RetryPolicy::run`] actually did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryTrace {
    /// Attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// The backoff delays slept, in order (empty if no retries).
    pub delays_ns: Vec<u64>,
    /// Clock reading when the run started.
    pub start_ns: u64,
    /// Clock reading when the run ended.
    pub end_ns: u64,
}

impl RetryTrace {
    /// Retries performed (attempts beyond the first).
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// Total nanoseconds spent in backoff sleeps.
    pub fn slept_ns(&self) -> u64 {
        self.delays_ns.iter().sum()
    }
}

impl fmt::Display for RetryTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} attempt(s), {} ns backoff",
            self.attempts,
            self.slept_ns()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_telemetry::FakeClock;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn first_try_success_sleeps_nothing() {
        let clock = FakeClock::with_step(0);
        let (r, trace) = RetryPolicy::default().run(&clock, &clock, |_| Ok::<_, ()>(7));
        assert_eq!(r, Ok(7));
        assert_eq!(trace.attempts, 1);
        assert_eq!(trace.retries(), 0);
        assert!(trace.delays_ns.is_empty());
        assert_eq!(trace.slept_ns(), 0);
    }

    #[test]
    fn backoff_delays_are_exact_under_fake_clock() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay_ns: 1_000,
            multiplier: 3,
            max_delay_ns: 10_000,
        };
        let clock = FakeClock::with_step(0);
        let fails = AtomicU32::new(0);
        let (r, trace) = policy.run(&clock, &clock, |attempt| {
            fails.fetch_add(1, Ordering::Relaxed);
            if attempt < 4 {
                Err("transient")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(r, Ok(4));
        assert_eq!(trace.attempts, 4);
        // 1000 * 3^0, *3^1, then capped: min(9000,10000)=9000.
        assert_eq!(trace.delays_ns, vec![1_000, 3_000, 9_000]);
        // Sleeps advanced the fake clock by exactly the backoff total.
        assert_eq!(trace.end_ns - trace.start_ns, 13_000);
        assert_eq!(fails.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn attempts_are_bounded_and_last_error_returned() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_delay_ns: 10,
            multiplier: 2,
            max_delay_ns: 1_000,
        };
        let clock = FakeClock::with_step(0);
        let (r, trace) = policy.run(&clock, &clock, Err::<(), u32>);
        assert_eq!(r, Err(3), "last attempt's error surfaces");
        assert_eq!(trace.attempts, 3);
        assert_eq!(trace.delays_ns, vec![10, 20], "no sleep after the give-up");
    }

    #[test]
    fn delay_cap_applies() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay_ns: 1_000,
            multiplier: 10,
            max_delay_ns: 5_000,
        };
        assert_eq!(policy.delay_after(1), 1_000);
        assert_eq!(policy.delay_after(2), 5_000, "capped");
        assert_eq!(policy.delay_after(9), 5_000, "still capped, no overflow");
    }

    #[test]
    fn zero_attempts_still_tries_once() {
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let clock = FakeClock::with_step(0);
        let (r, trace) = policy.run(&clock, &clock, |_| Ok::<_, ()>(1));
        assert_eq!(r, Ok(1));
        assert_eq!(trace.attempts, 1);
    }

    #[test]
    fn no_retries_policy_fails_fast() {
        let clock = FakeClock::with_step(0);
        let (r, trace) = RetryPolicy::no_retries().run(&clock, &clock, |_| Err::<(), _>("x"));
        assert_eq!(r, Err("x"));
        assert_eq!(trace.attempts, 1);
        assert_eq!(trace.slept_ns(), 0);
    }
}
