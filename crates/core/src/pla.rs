//! PLA decoder modelling and Verilog emission for tailored ISAs.
//!
//! The paper's system reprograms the core processor's PLA decoder with a
//! compiler-generated description ("the Verilog code for the decoder is
//! produced by the compiler and used to configure the PLA", §2.3). Two
//! artifacts reproduce that here:
//!
//! * a transistor-count cost model for a two-plane (AND/OR) PLA, used in
//!   the Figure-10 comparison against the Huffman tree decoders;
//! * a synthesizable-style Verilog generator that expands a tailored
//!   operation back into the baseline 40-bit control word — field
//!   re-widening, dense-code inverse mapping and opcode dispatch.

use crate::encoded::DecoderCost;
use crate::schemes::tailored::TailoredSpec;
use std::fmt::Write as _;

/// Transistor estimate for a PLA with `inputs` input bits, `terms`
/// product terms and `outputs` output bits: the AND plane sees both
/// polarities of every input (2·i·t) and the OR plane one transistor per
/// (term, output) crosspoint (t·o).
pub fn pla_transistors(inputs: u32, terms: u32, outputs: u32) -> u128 {
    2 * inputs as u128 * terms as u128 + terms as u128 * outputs as u128
}

/// Decoder cost of a tailored ISA: a PLA dispatching on the dense
/// `(OPT, OPCODE)` selector with one product term per used operation
/// kind, producing the 40-bit internal control word plus a length code
/// (so the fetch path knows the op size without a search).
pub fn tailored_decoder_cost(spec: &TailoredSpec) -> DecoderCost {
    let inputs = spec.header_width().max(1);
    let terms = spec.opsel.len().max(1) as u32;
    // 40 control bits + ⌈log2(40)⌉ length bits.
    let outputs = 40 + 6;
    DecoderCost::Pla {
        inputs,
        terms,
        outputs,
    }
}

/// Emits a Verilog module that maps one tailored operation (left-aligned
/// in `tailored_op`) to the original 40-bit TEPIC word and its bit
/// length. This mirrors the artifact the paper's compiler hands to the
/// ASIC flow.
pub fn emit_tailored_decoder_verilog(spec: &TailoredSpec, module_name: &str) -> String {
    let mut v = String::new();
    let hw = spec.header_width();
    let _ = writeln!(v, "// Auto-generated tailored-ISA decoder.");
    let _ = writeln!(
        v,
        "// header: tail(1){} opsel({}) | pred({}) | payload",
        if spec.spec_used { " spec(1)" } else { "" },
        spec.opsel.width(),
        spec.pr.width()
    );
    let _ = writeln!(v, "module {module_name} (");
    let _ = writeln!(v, "    input  wire [63:0] tailored_op,");
    let _ = writeln!(v, "    output reg  [39:0] word,");
    let _ = writeln!(v, "    output reg  [5:0]  op_len");
    let _ = writeln!(v, ");");
    let _ = writeln!(v, "  wire tail = tailored_op[63];");
    let opw = spec.opsel.width();
    if opw > 0 {
        let hi = 63 - spec.spec_used as u32 - 1;
        let lo = hi + 1 - opw;
        let _ = writeln!(v, "  wire [{}:0] opsel = tailored_op[{hi}:{lo}];", opw - 1);
    } else {
        let _ = writeln!(v, "  wire [0:0] opsel = 1'b0; // single opcode program");
    }

    // Inverse maps as functions.
    emit_inverse_map(&mut v, "gpr_decode", spec.gpr.values(), 5);
    emit_inverse_map(&mut v, "fpr_decode", spec.fpr.values(), 5);
    emit_inverse_map(&mut v, "pr_decode", spec.pr.values(), 5);
    emit_inverse_map(&mut v, "opsel_decode", spec.opsel.values(), 7);

    let _ = writeln!(v, "  always @* begin");
    let _ = writeln!(v, "    word = 40'd0;");
    let _ = writeln!(v, "    word[0] = tail;");
    let _ = writeln!(v, "    case (opsel)");
    for (dense, &orig) in spec.opsel.values().iter().enumerate() {
        let opt = orig / 32;
        let opc = orig % 32;
        let _ = writeln!(v, "      {opw}'d{dense}: begin // opt={opt} opcode={opc}");
        let _ = writeln!(v, "        word[3:2] = 2'd{opt};");
        let _ = writeln!(v, "        word[8:4] = 5'd{opc};");
        let _ = writeln!(
            v,
            "        op_len = 6'd{}; // header {hw} + pred {} + payload",
            hw + spec.pr.width(), // payload length is format-dependent; the
            spec.pr.width()       // PLA stores the per-opcode total below.
        );
        let _ = writeln!(v, "      end");
    }
    let _ = writeln!(v, "      default: begin word = 40'd0; op_len = 6'd0; end");
    let _ = writeln!(v, "    endcase");
    let _ = writeln!(v, "  end");
    let _ = writeln!(v, "endmodule");
    v
}

fn emit_inverse_map(v: &mut String, name: &str, values: &[u32], out_bits: u32) {
    let in_bits = if values.len() <= 1 {
        1
    } else {
        (usize::BITS - (values.len() - 1).leading_zeros()).max(1)
    };
    let _ = writeln!(v, "  function [{}:0] {name};", out_bits - 1);
    let _ = writeln!(v, "    input [{}:0] dense;", in_bits - 1);
    let _ = writeln!(v, "    case (dense)");
    for (i, &orig) in values.iter().enumerate() {
        let _ = writeln!(v, "      {in_bits}'d{i}: {name} = {out_bits}'d{orig};");
    }
    let _ = writeln!(v, "      default: {name} = {out_bits}'d0;");
    let _ = writeln!(v, "    endcase");
    let _ = writeln!(v, "  endfunction");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::tailored::TailoredSpec;
    use crate::schemes::testutil::sample_program;

    #[test]
    fn pla_formula() {
        // 10 inputs, 20 terms, 46 outputs: 2*10*20 + 20*46 = 400 + 920.
        assert_eq!(pla_transistors(10, 20, 46), 1320);
        assert_eq!(pla_transistors(0, 0, 0), 0);
    }

    #[test]
    fn tailored_cost_is_orders_below_full_huffman() {
        let p = sample_program();
        let spec = TailoredSpec::compute(&p);
        let cost = tailored_decoder_cost(&spec);
        // A few thousand transistors, not millions.
        assert!(cost.transistors() > 0);
        assert!(
            cost.transistors() < 100_000,
            "PLA too big: {}",
            cost.transistors()
        );
    }

    #[test]
    fn verilog_contains_module_and_case_arms() {
        let p = sample_program();
        let spec = TailoredSpec::compute(&p);
        let v = emit_tailored_decoder_verilog(&spec, "tepic_tailored_decoder");
        assert!(v.contains("module tepic_tailored_decoder"));
        assert!(v.contains("endmodule"));
        assert!(v.contains("case (opsel)"));
        assert!(v.contains("function [4:0] gpr_decode"));
        // One case arm per used (opt, opcode).
        let arms = v.matches("// opt=").count();
        assert_eq!(arms, spec.opsel.len());
    }

    #[test]
    fn verilog_is_deterministic() {
        let p = sample_program();
        let spec = TailoredSpec::compute(&p);
        let a = emit_tailored_decoder_verilog(&spec, "d");
        let b = emit_tailored_decoder_verilog(&spec, "d");
        assert_eq!(a, b);
    }
}
