//! Integrity primitives for compressed ROM images (fault-model support).
//!
//! Embedded ROMs see real bit errors — radiation upsets, cell wear,
//! marginal supply voltages — and a compressed image amplifies them: one
//! flipped bit desynchronizes every later Huffman symbol in its block.
//! Three cheap checks bound the damage:
//!
//! * **CRC32 (IEEE)** over each decode dictionary / codebook image —
//!   dictionaries are tiny next to the code segment, so a word-wide CRC
//!   costs nothing and catches every burst up to 32 bits;
//! * **CRC-8** self-check inside each ATT entry — the ATB consults the
//!   entry before every fetch, so a corrupt compressed address or block
//!   length is caught before it misdirects the fetch;
//! * **XOR-fold parity** over each block's payload bytes, stored in the
//!   ATT entry — one byte per block, verified when the block's lines
//!   arrive from memory.
//!
//! All three are table-less bitwise implementations: this models ROM
//! checker *hardware*, where a 32-entry XOR tree is the natural shape,
//! and keeps the crate dependency-free.

use std::fmt;

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// CRC-8 (polynomial `0x07`, MSB-first, zero init) — the ATT entry
/// self-check. Detects all single-bit errors and every burst up to 8
/// bits in the packed entry.
pub fn crc8(bytes: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &b in bytes {
        crc ^= b;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// XOR-fold of a byte slice — the per-block payload parity byte. Any
/// single-bit error, and any burst shorter than 16 bits, changes it.
pub fn parity_fold(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0, |acc, &b| acc ^ b)
}

/// An integrity check failed on the fetch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// A decode dictionary's CRC32 no longer matches its recorded value.
    DictionaryCrc {
        /// CRC recorded at compression time.
        expected: u32,
        /// CRC of the dictionary as read back.
        actual: u32,
    },
    /// An ATT entry failed its CRC-8 self-check.
    AttEntryCheck {
        /// Block whose entry is corrupt.
        block: usize,
    },
    /// A block's payload bytes disagree with the parity stored in its
    /// ATT entry.
    BlockParity {
        /// The mismatching block.
        block: usize,
    },
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityError::DictionaryCrc { expected, actual } => write!(
                f,
                "dictionary CRC mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            IntegrityError::AttEntryCheck { block } => {
                write!(f, "ATT entry for block {block} failed its self-check")
            }
            IntegrityError::BlockParity { block } => {
                write!(f, "payload parity mismatch in block {block}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_catches_every_single_bit_flip() {
        let data = b"compressed rom image payload".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn crc8_known_vector_and_single_bits() {
        // CRC-8/SMBUS check value for "123456789".
        assert_eq!(crc8(b"123456789"), 0xF4);
        let data = [0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
        let good = crc8(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data;
                bad[byte] ^= 1 << bit;
                assert_ne!(crc8(&bad), good, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn crc8_catches_all_bursts_up_to_8_bits() {
        let data = [0xA5u8; 16];
        let good = crc8(&data);
        let total_bits = data.len() * 8;
        for len in 1..=8usize {
            for start in 0..=(total_bits - len) {
                let mut bad = data;
                for b in start..start + len {
                    bad[b / 8] ^= 0x80 >> (b % 8);
                }
                assert_ne!(crc8(&bad), good, "burst len {len} at {start} undetected");
            }
        }
    }

    #[test]
    fn parity_fold_flags_single_bit() {
        let data = [1u8, 2, 3, 4];
        let p = parity_fold(&data);
        let mut bad = data;
        bad[2] ^= 0x10;
        assert_ne!(parity_fold(&bad), p);
        assert_eq!(parity_fold(&[]), 0);
    }

    #[test]
    fn errors_display() {
        let e = IntegrityError::DictionaryCrc {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("CRC mismatch"));
        assert!(IntegrityError::AttEntryCheck { block: 3 }
            .to_string()
            .contains("block 3"));
        assert!(IntegrityError::BlockParity { block: 7 }
            .to_string()
            .contains("block 7"));
    }
}
