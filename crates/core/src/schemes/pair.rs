//! Op-pair ("digram") Huffman — an extension probing the paper's §2.2
//! observation that "combining two or more compression strategies does
//! not yield better compression, since we are approaching the entropy
//! limit of the program".
//!
//! Symbols are *pairs* of consecutive operations within a block (a
//! trailing unpaired op uses a separate singles table). Joint coding can
//! only improve on per-op entropy by whatever sequential correlation
//! exists — and it pays with a dictionary whose size (and decoder)
//! roughly squares. The `ext_entropy_limit` experiment quantifies both
//! sides.

use super::{BlockDecodeError, CompressError, Scheme, SchemeOutput, SymbolCodec};
use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use tepic_isa::{Program, OP_BITS};
use tinker_huffman::{BitWriter, CodeBook, DecoderComplexity, Dictionary, InterleavedDecoder};

/// Whole-op-pair Huffman scheme.
#[derive(Debug, Clone, Copy)]
pub struct PairScheme {
    /// Maximum Huffman code length for both tables.
    pub max_code_len: u8,
}

impl Default for PairScheme {
    fn default() -> PairScheme {
        PairScheme { max_code_len: 28 }
    }
}

struct PairCodec {
    /// Table 0 decodes pairs; table 1 (absent when no block has an odd
    /// length) decodes the trailing single. The cycle is `[0]`: pairs
    /// are the cycle-consistent prefix, the single the off-cycle tail.
    inter: InterleavedDecoder,
    pair_values: Vec<(u64, u64)>,
    single_values: Vec<u64>,
}

impl SymbolCodec for PairCodec {
    fn decoder(&self) -> &InterleavedDecoder {
        &self.inter
    }

    fn num_symbols(&self, num_ops: usize) -> usize {
        num_ops / 2 + num_ops % 2
    }

    fn table_of(&self, i: usize, num_ops: usize) -> u32 {
        u32::from(i >= num_ops / 2)
    }

    fn assemble(&self, syms: &[u32], num_ops: usize) -> Result<Vec<u64>, BlockDecodeError> {
        let pairs = num_ops / 2;
        let mut out = Vec::with_capacity(num_ops);
        for (i, &sym) in syms.iter().enumerate() {
            if i < pairs {
                let (a, c) =
                    *self
                        .pair_values
                        .get(sym as usize)
                        .ok_or(BlockDecodeError::BadValue {
                            field: "pair symbol",
                        })?;
                out.push(a);
                out.push(c);
            } else {
                let v = self
                    .single_values
                    .get(sym as usize)
                    .ok_or(BlockDecodeError::BadValue {
                        field: "single symbol",
                    })?;
                out.push(*v);
            }
        }
        Ok(out)
    }

    fn tables_image(&self) -> Vec<u8> {
        let mut img = self.inter.table(0).table_image();
        for (a, c) in &self.pair_values {
            img.extend_from_slice(&a.to_le_bytes());
            img.extend_from_slice(&c.to_le_bytes());
        }
        if let Some(dec) = self.inter.get_table(1) {
            img.extend_from_slice(&dec.table_image());
            for v in &self.single_values {
                img.extend_from_slice(&v.to_le_bytes());
            }
        }
        img
    }
}

impl Scheme for PairScheme {
    fn name(&self) -> String {
        "pair".to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        // Histograms: pairs per block (non-overlapping), plus a singles
        // table for odd trailing ops.
        let mut pairs: Dictionary<(u64, u64)> = Dictionary::new();
        let mut singles: Dictionary<u64> = Dictionary::new();
        for b in 0..program.num_blocks() {
            let words: Vec<u64> = program.block_ops(b).iter().map(|o| o.encode()).collect();
            let mut i = 0;
            while i + 1 < words.len() {
                pairs.record((words[i], words[i + 1]));
                i += 2;
            }
            if i < words.len() {
                singles.record(words[i]);
            }
        }
        let pair_book = CodeBook::bounded_from_freqs(pairs.freqs(), self.max_code_len)?;
        let single_book = if singles.is_empty() {
            None
        } else {
            Some(CodeBook::bounded_from_freqs(
                singles.freqs(),
                self.max_code_len,
            )?)
        };

        let mut w = BitWriter::new();
        let mut block_start = Vec::with_capacity(program.num_blocks());
        let mut block_bytes = Vec::with_capacity(program.num_blocks());
        for b in 0..program.num_blocks() {
            w.align_byte();
            let start = w.bit_len() / 8;
            block_start.push(start);
            let words: Vec<u64> = program.block_ops(b).iter().map(|o| o.encode()).collect();
            let mut i = 0;
            while i + 1 < words.len() {
                let sym =
                    pairs
                        .id_of(&(words[i], words[i + 1]))
                        .ok_or(CompressError::Integrity {
                            detail: "op pair missing from dictionary",
                        })?;
                pair_book.try_encode_into(sym, &mut w)?;
                i += 2;
            }
            if i < words.len() {
                let book = single_book.as_ref().ok_or(CompressError::Integrity {
                    detail: "odd-length block but no singles table",
                })?;
                let sym = singles.id_of(&words[i]).ok_or(CompressError::Integrity {
                    detail: "trailing op missing from singles dictionary",
                })?;
                book.try_encode_into(sym, &mut w)?;
            }
            let end = w.bit_len().div_ceil(8);
            block_bytes.push((end - start) as u32);
        }

        let mut decoders = vec![DecoderComplexity {
            n: pair_book.max_len() as u32,
            k: pair_book.num_coded(),
            m: 2 * OP_BITS,
        }];
        if let Some(sb) = &single_book {
            decoders.push(DecoderComplexity {
                n: sb.max_len() as u32,
                k: sb.num_coded(),
                m: OP_BITS,
            });
        }
        let image = EncodedProgram {
            kind: SchemeKind::Stream("pair".to_string()),
            bytes: w.into_bytes(),
            block_start,
            block_bytes,
            decoder: DecoderCost::Huffman(decoders),
        };
        let mut tables = vec![pair_book.lut_decoder()];
        tables.extend(single_book.as_ref().map(CodeBook::lut_decoder));
        let codec = PairCodec {
            inter: InterleavedDecoder::with_cycle(tables, vec![0]),
            pair_values: (0..pairs.len() as u32)
                .map(|i| *pairs.value_of(i))
                .collect(),
            single_values: (0..singles.len() as u32)
                .map(|i| *singles.value_of(i))
                .collect(),
        };
        Ok(SchemeOutput {
            image,
            codec: Box::new(codec),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::full::FullScheme;
    use crate::schemes::testutil::{sample_program, tiny_program};

    #[test]
    fn round_trips() {
        for p in [sample_program(), tiny_program()] {
            let out = PairScheme::default().compress(&p).unwrap();
            assert!(out.image.check_layout());
            assert!(out.verify_roundtrip(&p));
        }
    }

    /// Bytes of dictionary storage a Huffman decoder must hold.
    fn dict_bytes(out: &SchemeOutput) -> usize {
        match &out.image.decoder {
            DecoderCost::Huffman(parts) => {
                parts.iter().map(|p| p.k * (p.m as usize).div_ceil(8)).sum()
            }
            _ => 0,
        }
    }

    #[test]
    fn entropy_limit_shape() {
        // The §2.2 claim, stated honestly: pairing shrinks the *image*
        // by memorizing op sequences, but the dictionary grows faster
        // than the image shrinks — the total (image + decoder
        // dictionary) gets worse, because per-op coding already sits
        // near the program's entropy.

        let p = sample_program();
        let full = FullScheme::default().compress(&p).unwrap();
        let pair = PairScheme::default().compress(&p).unwrap();
        let full_total = full.image.total_bytes() + dict_bytes(&full);
        let pair_total = pair.image.total_bytes() + dict_bytes(&pair);
        assert!(
            pair_total > full_total,
            "pair total {pair_total} must exceed full total {full_total}"
        );
        assert!(
            dict_bytes(&pair) > dict_bytes(&full),
            "pair dictionary storage ({} B) must exceed full's ({} B)",
            dict_bytes(&pair),
            dict_bytes(&full)
        );
    }
}
