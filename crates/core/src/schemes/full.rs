//! Whole-op ("Full") Huffman compression (paper §2.2).
//!
//! Every distinct 40-bit operation encoding is one symbol; the dictionary
//! can be large, but popular operations collapse dramatically ("the size
//! of the popular ADD instruction often went down from 40 to 6 bits, and
//! none of the codes exceed the original op size"). This scheme gives the
//! best compression of the study (≈30% of original) at the price of the
//! largest decoder — the tradeoff at the heart of Figures 5, 10 and 13.

use super::{BlockDecodeError, CompressError, Scheme, SchemeOutput, SymbolCodec};
use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use tepic_isa::{Program, OP_BITS};
use tinker_huffman::{BitWriter, CodeBook, DecoderComplexity, Dictionary, InterleavedDecoder};

/// Whole-op Huffman scheme.
#[derive(Debug, Clone, Copy)]
pub struct FullScheme {
    /// Maximum Huffman code length (the paper's bounded-Huffman /
    /// strength-reduction escape keeps codes fetchable).
    pub max_code_len: u8,
}

impl Default for FullScheme {
    fn default() -> FullScheme {
        FullScheme { max_code_len: 24 }
    }
}

struct FullCodec {
    inter: InterleavedDecoder,
    values: Vec<u64>,
}

impl SymbolCodec for FullCodec {
    fn decoder(&self) -> &InterleavedDecoder {
        &self.inter
    }

    fn num_symbols(&self, num_ops: usize) -> usize {
        num_ops
    }

    fn table_of(&self, _i: usize, _num_ops: usize) -> u32 {
        0
    }

    fn assemble(&self, syms: &[u32], _num_ops: usize) -> Result<Vec<u64>, BlockDecodeError> {
        let mut out = Vec::with_capacity(syms.len());
        for &sym in syms {
            let word = self
                .values
                .get(sym as usize)
                .ok_or(BlockDecodeError::BadValue { field: "op symbol" })?;
            out.push(*word);
        }
        Ok(out)
    }

    fn tables_image(&self) -> Vec<u8> {
        let mut img = self.inter.table(0).table_image();
        for v in &self.values {
            img.extend_from_slice(&v.to_le_bytes());
        }
        img
    }
}

impl Scheme for FullScheme {
    fn name(&self) -> String {
        "full".to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        let words = program.op_words();
        let dict: Dictionary<u64> = words.iter().copied().collect();
        let book = CodeBook::bounded_from_freqs(dict.freqs(), self.max_code_len)?;

        let mut w = BitWriter::new();
        let mut block_start = Vec::with_capacity(program.num_blocks());
        let mut block_bytes = Vec::with_capacity(program.num_blocks());
        for b in 0..program.num_blocks() {
            w.align_byte();
            let start = w.bit_len() / 8;
            block_start.push(start);
            for op in program.block_ops(b) {
                let sym = dict.id_of(&op.encode()).ok_or(CompressError::Integrity {
                    detail: "op word missing from dictionary built over the same program",
                })?;
                book.try_encode_into(sym, &mut w)?;
            }
            let end = w.bit_len().div_ceil(8);
            block_bytes.push((end - start) as u32);
        }

        let model = DecoderComplexity {
            n: book.max_len() as u32,
            k: book.num_coded(),
            m: OP_BITS,
        };
        let image = EncodedProgram {
            kind: SchemeKind::Full,
            bytes: w.into_bytes(),
            block_start,
            block_bytes,
            decoder: DecoderCost::Huffman(vec![model]),
        };
        let codec = FullCodec {
            inter: InterleavedDecoder::single(book.lut_decoder()),
            values: (0..dict.len() as u32).map(|i| *dict.value_of(i)).collect(),
        };
        Ok(SchemeOutput {
            image,
            codec: Box::new(codec),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::{sample_program, tiny_program};
    use crate::schemes::{byte::ByteScheme, stream::StreamScheme};

    #[test]
    fn round_trips() {
        let p = sample_program();
        let out = FullScheme::default().compress(&p).unwrap();
        assert!(out.verify_roundtrip(&p));
        assert!(out.image.check_layout());
    }

    #[test]
    fn best_compression_of_the_huffman_family() {
        // Figure 5's headline: Full beats byte-wise and both stream
        // configurations.
        let p = sample_program();
        let full = FullScheme::default()
            .compress(&p)
            .unwrap()
            .image
            .total_bytes();
        let byte = ByteScheme::default()
            .compress(&p)
            .unwrap()
            .image
            .total_bytes();
        let stream = StreamScheme::named("stream")
            .unwrap()
            .compress(&p)
            .unwrap()
            .image
            .total_bytes();
        let stream1 = StreamScheme::named("stream_1")
            .unwrap()
            .compress(&p)
            .unwrap()
            .image
            .total_bytes();
        assert!(full < byte, "full {full} vs byte {byte}");
        assert!(full < stream, "full {full} vs stream {stream}");
        assert!(full < stream1, "full {full} vs stream_1 {stream1}");
    }

    #[test]
    fn largest_decoder_of_the_huffman_family() {
        // Figure 10's headline: the Full decoder dwarfs the byte decoder.
        let p = sample_program();
        let full = FullScheme::default()
            .compress(&p)
            .unwrap()
            .image
            .decoder
            .transistors();
        let byte = ByteScheme::default()
            .compress(&p)
            .unwrap()
            .image
            .decoder
            .transistors();
        assert!(full > byte, "full decoder {full} should exceed byte {byte}");
    }

    #[test]
    fn no_code_exceeds_original_op_size() {
        // Paper: "none of the codes exceed the original op size."
        let p = sample_program();
        let words = p.op_words();
        let dict: Dictionary<u64> = words.iter().copied().collect();
        let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
        for s in 0..dict.len() as u32 {
            assert!(book.len_of(s) as u32 <= OP_BITS);
        }
    }

    #[test]
    fn popular_ops_get_short_codes() {
        let p = sample_program();
        let words = p.op_words();
        let dict: Dictionary<u64> = words.iter().copied().collect();
        let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
        let (max_sym, _) = dict
            .freqs()
            .iter()
            .enumerate()
            .max_by_key(|(_, &f)| f)
            .unwrap();
        assert!(
            book.len_of(max_sym as u32) <= 8,
            "most frequent op should get a short code, got {}",
            book.len_of(max_sym as u32)
        );
    }

    #[test]
    fn tiny_program_round_trips() {
        let p = tiny_program();
        let out = FullScheme::default().compress(&p).unwrap();
        assert!(out.verify_roundtrip(&p));
    }
}
