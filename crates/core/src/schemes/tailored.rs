//! Tailored encoding (paper §2.3): an *uncompressed but compact*
//! program-specific ISA.
//!
//! Every field is shrunk to the minimum width the program actually
//! needs: opcodes and registers are densely renumbered ("if the program
//! uses less than eight floating-point operations, the FP OpCode field
//! only needs three bits; … if no more than four registers … it needs
//! only two bits"), reserved fields disappear, the speculative bit is
//! dropped when unused, and immediates/branch targets take exactly the
//! bits their largest value requires. The tail bit, OPT and OPCODE stay
//! at fixed head positions so the decoder needs no search — exactly the
//! decode-friendly regularity the paper's compiler looks for.
//!
//! Decoding a tailored op yields the processor's internal signals
//! directly; no Huffman stage exists. The decoder is a compiler-emitted
//! PLA (see [`crate::pla`] for the cost model and Verilog generator).

use super::{BlockCodec, BlockDecodeError, CompressError, Scheme, SchemeOutput};
use crate::encoded::{EncodedProgram, SchemeKind};
use std::collections::HashMap;
use tepic_isa::op::{Cond, FloatOpcode, IntOpcode, MemWidth, OpKind, Operation, SysCode};
use tepic_isa::regs::{Fpr, Gpr, Pr};
use tepic_isa::Program;
use tinker_huffman::{BitReader, BitWriter};

/// Dense renumbering of a field's used values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Remap {
    to_dense: HashMap<u32, u32>,
    from_dense: Vec<u32>,
}

impl Remap {
    fn build(mut used: Vec<u32>) -> Remap {
        used.sort_unstable();
        used.dedup();
        let to_dense = used
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        Remap {
            to_dense,
            from_dense: used,
        }
    }

    /// Bits needed to address every used value (0 when ≤1 value).
    pub fn width(&self) -> u32 {
        ceil_log2(self.from_dense.len())
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.from_dense.len()
    }

    /// True when no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.from_dense.is_empty()
    }

    /// Dense code of an original value.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not in the program (spec mismatch).
    pub fn enc(&self, v: u32) -> u32 {
        self.to_dense[&v]
    }

    /// Original value of a dense code.
    pub fn dec(&self, d: u32) -> Option<u32> {
        self.from_dense.get(d as usize).copied()
    }

    /// The used original values in dense order.
    pub fn values(&self) -> &[u32] {
        &self.from_dense
    }
}

fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Minimal signed width for an immediate.
fn signed_width(v: i32) -> u32 {
    if v == 0 {
        1
    } else {
        33 - (if v < 0 { !v } else { v }).leading_zeros()
    }
}

/// The complete tailored ISA specification for one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailoredSpec {
    /// Whether any op sets the speculative bit (else the field is
    /// dropped).
    pub spec_used: bool,
    /// Dense numbering of `(opt, opcode)` pairs, keyed as
    /// `opt * 32 + opcode`.
    pub opsel: Remap,
    /// GPR renumbering.
    pub gpr: Remap,
    /// FPR renumbering.
    pub fpr: Remap,
    /// Predicate renumbering (guards and compare destinations).
    pub pr: Remap,
    /// Condition codes used.
    pub cond: Remap,
    /// Memory widths used.
    pub mw: Remap,
    /// Load latencies used.
    pub lat: Remap,
    /// System-call codes used.
    pub sys: Remap,
    /// Immediate field width (max over all `ldi`/`ldih`).
    pub imm_width: u32,
    /// Branch target field width (⌈log₂ #blocks⌉).
    pub target_width: u32,
}

impl TailoredSpec {
    /// Scans a program and computes all field widths and renumberings.
    pub fn compute(program: &Program) -> TailoredSpec {
        let mut spec_used = false;
        let mut opsel = Vec::new();
        let mut gpr = Vec::new();
        let mut fpr = Vec::new();
        let mut pr = Vec::new();
        let mut cond = Vec::new();
        let mut mw = Vec::new();
        let mut lat = Vec::new();
        let mut sys = Vec::new();
        let mut imm_width = 1u32;
        for op in program.ops() {
            spec_used |= op.spec;
            let (opt, opc) = op.opt_opcode();
            opsel.push(opt as u32 * 32 + opc as u32);
            pr.push(op.pred.index() as u32);
            let mut g = |r: Gpr| gpr.push(r.index() as u32);
            let mut f = |r: Fpr| fpr.push(r.index() as u32);
            match op.kind {
                OpKind::IntAlu {
                    src1, src2, dest, ..
                } => {
                    g(src1);
                    g(src2);
                    g(dest);
                }
                OpKind::IntCmp {
                    cond: c,
                    src1,
                    src2,
                    dest,
                } => {
                    g(src1);
                    g(src2);
                    pr.push(dest.index() as u32);
                    cond.push(c as u32);
                }
                OpKind::FloatCmp {
                    cond: c,
                    src1,
                    src2,
                    dest,
                } => {
                    f(src1);
                    f(src2);
                    pr.push(dest.index() as u32);
                    cond.push(c as u32);
                }
                OpKind::LoadImm { imm, dest, .. } => {
                    g(dest);
                    imm_width = imm_width.max(signed_width(imm));
                }
                OpKind::Float {
                    src1, src2, dest, ..
                } => {
                    f(src1);
                    f(src2);
                    f(dest);
                }
                OpKind::CvtIf { src, dest } => {
                    g(src);
                    f(dest);
                }
                OpKind::CvtFi { src, dest } => {
                    f(src);
                    g(dest);
                }
                OpKind::Load {
                    width,
                    base,
                    lat: l,
                    dest,
                } => {
                    g(base);
                    g(dest);
                    mw.push(width as u32);
                    lat.push(l as u32);
                }
                OpKind::Store { width, base, value } => {
                    g(base);
                    g(value);
                    mw.push(width as u32);
                }
                OpKind::FLoad { base, lat: l, dest } => {
                    g(base);
                    f(dest);
                    lat.push(l as u32);
                }
                OpKind::FStore { base, value } => {
                    g(base);
                    f(value);
                }
                OpKind::Branch { .. } | OpKind::Halt => {}
                OpKind::Call { link, .. } => g(link),
                OpKind::Ret { src } => g(src),
                OpKind::Sys { code, arg } => {
                    g(arg);
                    sys.push(code as u32);
                }
            }
        }
        TailoredSpec {
            spec_used,
            opsel: Remap::build(opsel),
            gpr: Remap::build(gpr),
            fpr: Remap::build(fpr),
            pr: Remap::build(pr),
            cond: Remap::build(cond),
            mw: Remap::build(mw),
            lat: Remap::build(lat),
            sys: Remap::build(sys),
            imm_width,
            target_width: ceil_log2(program.num_blocks()).max(1),
        }
    }

    /// Bits of the fixed header: tail + (spec) + opsel.
    pub fn header_width(&self) -> u32 {
        1 + self.spec_used as u32 + self.opsel.width()
    }

    /// Encoded size in bits of one operation under this spec.
    pub fn op_bits(&self, op: &Operation) -> u32 {
        self.header_width() + self.pr.width() + self.payload_bits(&op.kind)
    }

    fn payload_bits(&self, kind: &OpKind) -> u32 {
        let g = self.gpr.width();
        let f = self.fpr.width();
        match kind {
            OpKind::IntAlu { .. } => 3 * g,
            OpKind::IntCmp { .. } => 2 * g + self.cond.width() + self.pr.width(),
            OpKind::FloatCmp { .. } => 2 * f + self.cond.width() + self.pr.width(),
            OpKind::LoadImm { .. } => self.imm_width + g,
            OpKind::Float { .. } => 3 * f,
            OpKind::CvtIf { .. } | OpKind::CvtFi { .. } => g + f,
            OpKind::Load { .. } => 2 * g + self.mw.width() + self.lat.width(),
            OpKind::Store { .. } => 2 * g + self.mw.width(),
            OpKind::FLoad { .. } => g + f + self.lat.width(),
            OpKind::FStore { .. } => g + f,
            OpKind::Branch { .. } => self.target_width,
            OpKind::Call { .. } => self.target_width + g,
            OpKind::Ret { .. } => g,
            OpKind::Halt => 0,
            OpKind::Sys { .. } => self.sys.width() + g,
        }
    }

    fn encode_op(&self, op: &Operation, w: &mut BitWriter) {
        w.write_bit(op.tail);
        if self.spec_used {
            w.write_bit(op.spec);
        }
        let (opt, opc) = op.opt_opcode();
        w.write_bits(
            self.opsel.enc(opt as u32 * 32 + opc as u32) as u64,
            self.opsel.width(),
        );
        w.write_bits(self.pr.enc(op.pred.index() as u32) as u64, self.pr.width());
        let gw = self.gpr.width();
        let fw = self.fpr.width();
        let wg =
            |w: &mut BitWriter, r: Gpr| w.write_bits(self.gpr.enc(r.index() as u32) as u64, gw);
        let wf =
            |w: &mut BitWriter, r: Fpr| w.write_bits(self.fpr.enc(r.index() as u32) as u64, fw);
        match op.kind {
            OpKind::IntAlu {
                src1, src2, dest, ..
            } => {
                wg(w, src1);
                wg(w, src2);
                wg(w, dest);
            }
            OpKind::IntCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                wg(w, src1);
                wg(w, src2);
                w.write_bits(self.cond.enc(cond as u32) as u64, self.cond.width());
                w.write_bits(self.pr.enc(dest.index() as u32) as u64, self.pr.width());
            }
            OpKind::FloatCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                wf(w, src1);
                wf(w, src2);
                w.write_bits(self.cond.enc(cond as u32) as u64, self.cond.width());
                w.write_bits(self.pr.enc(dest.index() as u32) as u64, self.pr.width());
            }
            OpKind::LoadImm { imm, dest, .. } => {
                w.write_bits(
                    (imm as u32 as u64) & ((1u64 << self.imm_width) - 1),
                    self.imm_width,
                );
                wg(w, dest);
            }
            OpKind::Float {
                src1, src2, dest, ..
            } => {
                wf(w, src1);
                wf(w, src2);
                wf(w, dest);
            }
            OpKind::CvtIf { src, dest } => {
                wg(w, src);
                wf(w, dest);
            }
            OpKind::CvtFi { src, dest } => {
                wf(w, src);
                wg(w, dest);
            }
            OpKind::Load {
                width,
                base,
                lat,
                dest,
            } => {
                wg(w, base);
                w.write_bits(self.mw.enc(width as u32) as u64, self.mw.width());
                w.write_bits(self.lat.enc(lat as u32) as u64, self.lat.width());
                wg(w, dest);
            }
            OpKind::Store { width, base, value } => {
                wg(w, base);
                w.write_bits(self.mw.enc(width as u32) as u64, self.mw.width());
                wg(w, value);
            }
            OpKind::FLoad { base, lat, dest } => {
                wg(w, base);
                w.write_bits(self.lat.enc(lat as u32) as u64, self.lat.width());
                wf(w, dest);
            }
            OpKind::FStore { base, value } => {
                wg(w, base);
                wf(w, value);
            }
            OpKind::Branch { target } => {
                w.write_bits(target as u64, self.target_width);
            }
            OpKind::Call { target, link } => {
                w.write_bits(target as u64, self.target_width);
                wg(w, link);
            }
            OpKind::Ret { src } => wg(w, src),
            OpKind::Halt => {}
            OpKind::Sys { code, arg } => {
                w.write_bits(self.sys.enc(code as u32) as u64, self.sys.width());
                wg(w, arg);
            }
        }
    }

    /// Decodes one tailored operation.
    ///
    /// # Errors
    ///
    /// [`BlockDecodeError::Eos`] when the bits run out mid-operation,
    /// [`BlockDecodeError::BadValue`] when a dense field code falls
    /// outside its renumbering table (corrupt stream or tables).
    pub fn decode_op(&self, r: &mut BitReader<'_>) -> Result<Operation, BlockDecodeError> {
        fn bit(r: &mut BitReader<'_>) -> Result<bool, BlockDecodeError> {
            r.read_bit().ok_or(BlockDecodeError::Eos)
        }
        fn bits(r: &mut BitReader<'_>, n: u32) -> Result<u64, BlockDecodeError> {
            r.read_bits(n).ok_or(BlockDecodeError::Eos)
        }
        fn bad(field: &'static str) -> BlockDecodeError {
            BlockDecodeError::BadValue { field }
        }
        let tail = bit(r)?;
        let spec = if self.spec_used { bit(r)? } else { false };
        let opsel = self
            .opsel
            .dec(bits(r, self.opsel.width())? as u32)
            .ok_or(bad("opsel"))?;
        let pred = self
            .pr
            .dec(bits(r, self.pr.width())? as u32)
            .and_then(|v| Pr::try_new(v as u8))
            .ok_or(bad("pred"))?;
        let gw = self.gpr.width();
        let fw = self.fpr.width();
        let (opt, opc) = (opsel / 32, opsel % 32);
        // Reconstruct via the original 40-bit pathway so opcode decoding
        // stays in one place: build the word header + fields.
        let rg = |r: &mut BitReader<'_>| -> Result<Gpr, BlockDecodeError> {
            self.gpr
                .dec(bits(r, gw)? as u32)
                .and_then(|v| Gpr::try_new(v as u8))
                .ok_or(bad("gpr"))
        };
        let rf = |r: &mut BitReader<'_>| -> Result<Fpr, BlockDecodeError> {
            self.fpr
                .dec(bits(r, fw)? as u32)
                .and_then(|v| Fpr::try_new(v as u8))
                .ok_or(bad("fpr"))
        };
        use tepic_isa::op::OpType;
        let optype = OpType::from_bits(opt as u64);
        let kind = match (optype, opc) {
            (OpType::Int, 16) => {
                let src1 = rg(r)?;
                let src2 = rg(r)?;
                let cond = self
                    .cond
                    .dec(bits(r, self.cond.width())? as u32)
                    .and_then(|v| Cond::ALL.get(v as usize).copied())
                    .ok_or(bad("cond"))?;
                let dest = self
                    .pr
                    .dec(bits(r, self.pr.width())? as u32)
                    .and_then(|v| Pr::try_new(v as u8))
                    .ok_or(bad("pred dest"))?;
                OpKind::IntCmp {
                    cond,
                    src1,
                    src2,
                    dest,
                }
            }
            (OpType::Int, 17) | (OpType::Int, 18) => {
                let raw = bits(r, self.imm_width)? as u32;
                // Sign-extend from imm_width.
                let shift = 32 - self.imm_width;
                let imm = ((raw << shift) as i32) >> shift;
                OpKind::LoadImm {
                    high: opc == 18,
                    imm,
                    dest: rg(r)?,
                }
            }
            (OpType::Int, c) => OpKind::IntAlu {
                op: *IntOpcode::ALL.get(c as usize).ok_or(bad("int opcode"))?,
                src1: rg(r)?,
                src2: rg(r)?,
                dest: rg(r)?,
            },
            (OpType::Float, 16) => {
                let src1 = rf(r)?;
                let src2 = rf(r)?;
                let cond = self
                    .cond
                    .dec(bits(r, self.cond.width())? as u32)
                    .and_then(|v| Cond::ALL.get(v as usize).copied())
                    .ok_or(bad("cond"))?;
                let dest = self
                    .pr
                    .dec(bits(r, self.pr.width())? as u32)
                    .and_then(|v| Pr::try_new(v as u8))
                    .ok_or(bad("pred dest"))?;
                OpKind::FloatCmp {
                    cond,
                    src1,
                    src2,
                    dest,
                }
            }
            (OpType::Float, 17) => OpKind::CvtIf {
                src: rg(r)?,
                dest: rf(r)?,
            },
            (OpType::Float, 18) => OpKind::CvtFi {
                src: rf(r)?,
                dest: rg(r)?,
            },
            (OpType::Float, c) => OpKind::Float {
                op: *FloatOpcode::ALL
                    .get(c as usize)
                    .ok_or(bad("float opcode"))?,
                src1: rf(r)?,
                src2: rf(r)?,
                dest: rf(r)?,
            },
            (OpType::Mem, 0) => {
                let base = rg(r)?;
                let width = self
                    .mw
                    .dec(bits(r, self.mw.width())? as u32)
                    .map(decode_mw)
                    .ok_or(bad("mem width"))?;
                let lat = self
                    .lat
                    .dec(bits(r, self.lat.width())? as u32)
                    .ok_or(bad("load latency"))? as u8;
                OpKind::Load {
                    width,
                    base,
                    lat,
                    dest: rg(r)?,
                }
            }
            (OpType::Mem, 1) => {
                let base = rg(r)?;
                let width = self
                    .mw
                    .dec(bits(r, self.mw.width())? as u32)
                    .map(decode_mw)
                    .ok_or(bad("mem width"))?;
                OpKind::Store {
                    width,
                    base,
                    value: rg(r)?,
                }
            }
            (OpType::Mem, 2) => {
                let base = rg(r)?;
                let lat = self
                    .lat
                    .dec(bits(r, self.lat.width())? as u32)
                    .ok_or(bad("load latency"))? as u8;
                OpKind::FLoad {
                    base,
                    lat,
                    dest: rf(r)?,
                }
            }
            (OpType::Mem, 3) => OpKind::FStore {
                base: rg(r)?,
                value: rf(r)?,
            },
            (OpType::Ctrl, 0) => OpKind::Branch {
                target: bits(r, self.target_width)? as u16,
            },
            (OpType::Ctrl, 1) => OpKind::Call {
                target: bits(r, self.target_width)? as u16,
                link: rg(r)?,
            },
            (OpType::Ctrl, 2) => OpKind::Ret { src: rg(r)? },
            (OpType::Ctrl, 3) => OpKind::Halt,
            (OpType::Ctrl, 4) => {
                let code = match self.sys.dec(bits(r, self.sys.width())? as u32) {
                    Some(1) => SysCode::PrintInt,
                    Some(2) => SysCode::PrintChar,
                    _ => return Err(bad("sys code")),
                };
                OpKind::Sys { code, arg: rg(r)? }
            }
            _ => return Err(bad("opcode")),
        };
        Ok(Operation {
            tail,
            spec,
            pred,
            kind,
        })
    }

    /// Serializes the spec's renumbering tables and field widths into a
    /// deterministic byte image — the tailored decoder's "dictionary"
    /// for integrity protection.
    pub fn table_image(&self) -> Vec<u8> {
        let mut img = Vec::new();
        img.push(self.spec_used as u8);
        img.extend_from_slice(&self.imm_width.to_le_bytes());
        img.extend_from_slice(&self.target_width.to_le_bytes());
        for remap in [
            &self.opsel,
            &self.gpr,
            &self.fpr,
            &self.pr,
            &self.cond,
            &self.mw,
            &self.lat,
            &self.sys,
        ] {
            img.extend_from_slice(&(remap.len() as u32).to_le_bytes());
            for &v in remap.values() {
                img.extend_from_slice(&v.to_le_bytes());
            }
        }
        img
    }
}

fn decode_mw(v: u32) -> MemWidth {
    match v {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        2 => MemWidth::Word,
        _ => MemWidth::Double,
    }
}

/// The tailored encoding scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct TailoredScheme;

struct TailoredCodec {
    spec: TailoredSpec,
}

impl BlockCodec for TailoredCodec {
    fn decode_block(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        let mut r = BitReader::at_bit(&image.bytes, image.block_start[b] * 8);
        let mut out = Vec::with_capacity(num_ops);
        for _ in 0..num_ops {
            out.push(self.spec.decode_op(&mut r)?.encode());
        }
        Ok(out)
    }

    fn dictionary_image(&self) -> Vec<u8> {
        self.spec.table_image()
    }
}

impl Scheme for TailoredScheme {
    fn name(&self) -> String {
        "tailored".to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        let spec = TailoredSpec::compute(program);
        let mut w = BitWriter::new();
        let mut block_start = Vec::with_capacity(program.num_blocks());
        let mut block_bytes = Vec::with_capacity(program.num_blocks());
        for b in 0..program.num_blocks() {
            w.align_byte();
            let start = w.bit_len() / 8;
            block_start.push(start);
            for op in program.block_ops(b) {
                spec.encode_op(op, &mut w);
            }
            let end = w.bit_len().div_ceil(8);
            block_bytes.push((end - start) as u32);
        }
        let decoder = crate::pla::tailored_decoder_cost(&spec);
        let image = EncodedProgram {
            kind: SchemeKind::Tailored,
            bytes: w.into_bytes(),
            block_start,
            block_bytes,
            decoder,
        };
        Ok(SchemeOutput {
            image,
            codec: Box::new(TailoredCodec { spec }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::DecoderCost;
    use crate::schemes::testutil::{sample_program, tiny_program};

    #[test]
    fn spec_widths_shrink() {
        let p = sample_program();
        let spec = TailoredSpec::compute(&p);
        assert!(
            spec.opsel.width() <= 7,
            "opsel width {}",
            spec.opsel.width()
        );
        assert!(spec.gpr.width() <= 5);
        assert!(spec.pr.width() <= 5);
        assert!(!spec.spec_used, "compiler never speculates yet");
        // The whole point: average op must be well under 40 bits.
        let total_bits: u64 = p.ops().iter().map(|o| spec.op_bits(o) as u64).sum();
        let avg = total_bits as f64 / p.num_ops() as f64;
        assert!(avg < 33.0, "average tailored op {avg} bits is not compact");
    }

    #[test]
    fn round_trips() {
        let p = sample_program();
        let out = TailoredScheme.compress(&p).unwrap();
        assert!(out.verify_roundtrip(&p));
        assert!(out.image.check_layout());
    }

    #[test]
    fn ratio_in_paper_ballpark() {
        // Paper: tailored ≈ 64% of original. Allow a generous band.
        let p = sample_program();
        let out = TailoredScheme.compress(&p).unwrap();
        let r = out.image.ratio(p.code_size());
        assert!(r > 0.3 && r < 0.9, "tailored ratio {r} out of band");
    }

    #[test]
    fn tiny_program_round_trips() {
        let p = tiny_program();
        let out = TailoredScheme.compress(&p).unwrap();
        assert!(out.verify_roundtrip(&p));
    }

    #[test]
    fn signed_width_is_minimal() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(-2), 2);
        assert_eq!(signed_width(7), 4);
        assert_eq!(signed_width(-8), 4);
        assert_eq!(signed_width(i32::MAX), 32);
        assert_eq!(signed_width(i32::MIN), 32);
    }

    #[test]
    fn ceil_log2_edges() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(32), 5);
        assert_eq!(ceil_log2(33), 6);
    }

    #[test]
    fn remap_is_dense_and_ordered() {
        let r = Remap::build(vec![7, 3, 3, 31, 0]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.values(), &[0, 3, 7, 31]);
        assert_eq!(r.enc(3), 1);
        assert_eq!(r.dec(2), Some(7));
        assert_eq!(r.dec(9), None);
        assert_eq!(r.width(), 2);
    }

    #[test]
    fn decoder_cost_is_pla_and_small_vs_full() {
        let p = sample_program();
        let tailored = TailoredScheme.compress(&p).unwrap();
        assert!(matches!(tailored.image.decoder, DecoderCost::Pla { .. }));
        let full = crate::schemes::full::FullScheme::default()
            .compress(&p)
            .unwrap();
        assert!(
            tailored.image.decoder.transistors() < full.image.decoder.transistors(),
            "tailored PLA should be far smaller than the Full Huffman tree"
        );
    }
}
