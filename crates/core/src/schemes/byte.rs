//! Byte-wise Huffman compression (paper §2.2, the Wolfe-style alphabet).
//!
//! The code segment is treated as a stream of bytes (5 per op); one
//! canonical Huffman table over the ≤256 byte values compresses it. The
//! decoder is the smallest of all Huffman schemes (`m = 8`, small `n`)
//! at an intermediate compression ratio — the paper measures ≈72% of the
//! original size.

use super::{BlockDecodeError, CompressError, Scheme, SchemeOutput, SymbolCodec};
use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use tepic_isa::{Program, OP_BYTES};
use tinker_huffman::{BitWriter, CodeBook, DecoderComplexity, InterleavedDecoder};

/// Byte-alphabet Huffman scheme.
#[derive(Debug, Clone, Copy)]
pub struct ByteScheme {
    /// Maximum Huffman code length (bounded Huffman escape). The default
    /// of 10 keeps the whole decoder a single 2¹⁰-entry direct-indexed
    /// table — the reason byte-wise decode hardware is the smallest of
    /// the Huffman family (§3.5: "the limited input width and dictionary
    /// size of byte-wise compression"). The 256-symbol alphabet is dense,
    /// so the bound costs almost nothing in compression.
    pub max_code_len: u8,
}

impl Default for ByteScheme {
    fn default() -> ByteScheme {
        ByteScheme { max_code_len: 10 }
    }
}

struct ByteCodec {
    /// The LUT fast path decodes identically to the bit-serial
    /// reference (`CodeBook::decoder`); hardware cost is still modelled
    /// on the reference (`DecoderComplexity` below). The `decode_block*`
    /// triplet and the interleaved `decode_batch` are derived from this
    /// [`SymbolCodec`] description by the blanket impl in `schemes`.
    inter: InterleavedDecoder,
}

impl SymbolCodec for ByteCodec {
    fn decoder(&self) -> &InterleavedDecoder {
        &self.inter
    }

    fn num_symbols(&self, num_ops: usize) -> usize {
        num_ops * OP_BYTES
    }

    fn table_of(&self, _i: usize, _num_ops: usize) -> u32 {
        0
    }

    fn assemble(&self, syms: &[u32], num_ops: usize) -> Result<Vec<u64>, BlockDecodeError> {
        Ok(words_from_byte_syms(syms, num_ops))
    }

    fn tables_image(&self) -> Vec<u8> {
        self.inter.table(0).table_image()
    }
}

/// Reassembles 40-bit op words from their decoded little-endian bytes.
fn words_from_byte_syms(syms: &[u32], num_ops: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(num_ops);
    for chunk in syms.chunks_exact(OP_BYTES) {
        let mut w = [0u8; 8];
        for (byte, &sym) in w.iter_mut().zip(chunk) {
            *byte = sym as u8;
        }
        out.push(u64::from_le_bytes(w));
    }
    out
}

impl Scheme for ByteScheme {
    fn name(&self) -> String {
        "byte".to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        // Static histogram over all code bytes.
        let code = program.code_bytes();
        let mut freqs = [0u64; 256];
        for &b in &code {
            freqs[b as usize] += 1;
        }
        let book = CodeBook::bounded_from_freqs(&freqs, self.max_code_len)?;

        let mut w = BitWriter::new();
        let mut block_start = Vec::with_capacity(program.num_blocks());
        let mut block_bytes = Vec::with_capacity(program.num_blocks());
        for b in 0..program.num_blocks() {
            w.align_byte();
            let start = w.bit_len() / 8;
            block_start.push(start);
            let (s, e) = program.block_byte_range(b);
            for &byte in &code[s as usize..e as usize] {
                book.try_encode_into(byte as u32, &mut w)?;
            }
            let end = w.bit_len().div_ceil(8);
            block_bytes.push((end - start) as u32);
        }
        let decoder_model = DecoderComplexity {
            n: book.max_len() as u32,
            k: book.num_coded(),
            m: 8,
        };
        let image = EncodedProgram {
            kind: SchemeKind::Byte,
            bytes: w.into_bytes(),
            block_start,
            block_bytes,
            decoder: DecoderCost::Huffman(vec![decoder_model]),
        };
        Ok(SchemeOutput {
            image,
            codec: Box::new(ByteCodec {
                inter: InterleavedDecoder::single(book.lut_decoder()),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::{sample_program, tiny_program};

    #[test]
    fn compresses_below_original() {
        let p = sample_program();
        let out = ByteScheme::default().compress(&p).unwrap();
        assert!(out.image.total_bytes() < p.code_size());
        assert!(out.verify_roundtrip(&p));
    }

    #[test]
    fn ratio_in_paper_ballpark() {
        // Paper: byte-wise lands around 72% of original. Accept a broad
        // band — our op mix differs — but it must be a *moderate* ratio,
        // neither trivial nor worse than 1.
        let p = sample_program();
        let out = ByteScheme::default().compress(&p).unwrap();
        let r = out.image.ratio(p.code_size());
        assert!(r > 0.35 && r < 0.95, "byte ratio {r} out of plausible band");
    }

    #[test]
    fn block_starts_are_byte_aligned_and_ordered() {
        let p = sample_program();
        let out = ByteScheme::default().compress(&p).unwrap();
        assert!(out.image.check_layout());
        // Every block decodes independently from its byte offset (this is
        // what lets the ATB point anywhere).
        assert!(out.verify_roundtrip(&p));
    }

    #[test]
    fn tiny_program_works() {
        let p = tiny_program();
        let out = ByteScheme::default().compress(&p).unwrap();
        assert!(out.verify_roundtrip(&p));
    }

    #[test]
    fn decoder_model_reports_byte_width() {
        let p = sample_program();
        let out = ByteScheme::default().compress(&p).unwrap();
        match &out.image.decoder {
            DecoderCost::Huffman(parts) => {
                assert_eq!(parts.len(), 1);
                assert_eq!(parts[0].m, 8);
                assert!(parts[0].k <= 256);
                assert!(parts[0].n as u8 <= ByteScheme::default().max_code_len);
            }
            other => panic!("unexpected decoder {other:?}"),
        }
    }

    #[test]
    fn tighter_bound_grows_output_but_shrinks_decoder() {
        let p = sample_program();
        let loose = ByteScheme { max_code_len: 16 }.compress(&p).unwrap();
        let tight = ByteScheme { max_code_len: 9 }.compress(&p).unwrap();
        assert!(tight.image.total_bytes() >= loose.image.total_bytes());
        assert!(tight.image.decoder.transistors() <= loose.image.decoder.transistors());
        assert!(tight.verify_roundtrip(&p));
    }
}
