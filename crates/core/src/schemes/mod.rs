//! The compression schemes (paper §2.2) and the tailored encoder (§2.3).
//!
//! Each scheme implements [`Scheme`], producing a [`SchemeOutput`] whose
//! [`SchemeOutput::verify_roundtrip`] proves losslessness against the
//! original program. The module-level table of all standard schemes
//! ([`standard_schemes`]) drives the Figure-5/7/10 experiments.

pub mod base;
pub mod byte;
pub mod full;
pub mod pair;
pub mod stream;
pub mod tailored;

use crate::encoded::EncodedProgram;
use crate::integrity::{crc32, IntegrityError};
use std::fmt;
use tepic_isa::Program;
use tinker_huffman::{BitReader, DecodeCounters, DecodeError, InterleavedDecoder, StreamLane};

/// Compression failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressError {
    /// The program has no code.
    EmptyProgram,
    /// Huffman construction failed (propagated).
    Huffman(tinker_huffman::HuffmanError),
    /// A field value exceeded the tailored width computed for it — an
    /// internal invariant violation.
    TailoredOverflow { field: &'static str },
    /// A symbol recorded during the frequency scan was missing from the
    /// dictionary at encode time — the two passes disagree, so the
    /// image's decode tables cannot be trusted.
    Integrity { detail: &'static str },
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::EmptyProgram => write!(f, "program has no code"),
            CompressError::Huffman(e) => write!(f, "huffman failure: {e}"),
            CompressError::TailoredOverflow { field } => {
                write!(f, "tailored width overflow in field {field}")
            }
            CompressError::Integrity { detail } => {
                write!(f, "compression integrity violation: {detail}")
            }
        }
    }
}

impl std::error::Error for CompressError {}

impl From<tinker_huffman::HuffmanError> for CompressError {
    fn from(e: tinker_huffman::HuffmanError) -> Self {
        CompressError::Huffman(e)
    }
}

/// Why decoding one block of an encoded image failed. Errors never
/// escape the block that raised them: every block starts byte-aligned,
/// so the decoder resynchronizes at the next block boundary — the
/// paper's atomic fetch unit is also the corruption-containment unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockDecodeError {
    /// A Huffman codeword was corrupt or truncated.
    Code(DecodeError),
    /// Fixed-width fields ran past the end of the block's bytes.
    Eos,
    /// A decoded field value is outside its dense table (tailored) or
    /// otherwise impossible.
    BadValue { field: &'static str },
    /// An integrity check rejected the block before decode.
    Integrity(IntegrityError),
}

impl fmt::Display for BlockDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockDecodeError::Code(e) => write!(f, "corrupt codeword: {e}"),
            BlockDecodeError::Eos => write!(f, "block ended mid-operation"),
            BlockDecodeError::BadValue { field } => {
                write!(f, "decoded value out of range for field {field}")
            }
            BlockDecodeError::Integrity(e) => write!(f, "integrity check failed: {e}"),
        }
    }
}

impl std::error::Error for BlockDecodeError {}

impl From<DecodeError> for BlockDecodeError {
    fn from(e: DecodeError) -> Self {
        BlockDecodeError::Code(e)
    }
}

impl From<IntegrityError> for BlockDecodeError {
    fn from(e: IntegrityError) -> Self {
        BlockDecodeError::Integrity(e)
    }
}

/// A scheme's full output: the image plus the codec needed to decode it
/// (in hardware this is the PLA contents; here it also powers the
/// round-trip verification).
pub struct SchemeOutput {
    /// The encoded image.
    pub image: EncodedProgram,
    /// Block decoder: given the image bytes and a block id, reproduce the
    /// original 40-bit words of that block.
    pub codec: Box<dyn BlockCodec>,
}

impl fmt::Debug for SchemeOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeOutput")
            .field("image", &self.image)
            .finish_non_exhaustive()
    }
}

impl SchemeOutput {
    /// Decodes every block and compares with the original op words.
    pub fn verify_roundtrip(&self, program: &Program) -> bool {
        for b in 0..program.num_blocks() {
            let expect: Vec<u64> = program.block_ops(b).iter().map(|o| o.encode()).collect();
            match self.codec.decode_block(&self.image, b, expect.len()) {
                Ok(words) if words == expect => {}
                _ => return false,
            }
        }
        true
    }

    /// CRC32 of the codec's serialized decode tables — recorded at
    /// compression time, re-checked by the fetch path before trusting
    /// the dictionary.
    pub fn dictionary_crc(&self) -> u32 {
        crc32(&self.codec.dictionary_image())
    }
}

/// Decoding interface over an [`EncodedProgram`]. Codecs are immutable
/// decode tables, so the trait requires `Send + Sync`: a serving layer
/// can memoize one codec per image and share it across worker threads.
pub trait BlockCodec: Send + Sync {
    /// Decodes block `b` (which holds `num_ops` operations) back to its
    /// original 40-bit words.
    ///
    /// # Errors
    ///
    /// [`BlockDecodeError`] on corrupt or truncated input; the failure
    /// is contained to this block (blocks decode independently from
    /// byte-aligned starts).
    fn decode_block(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError>;

    /// [`BlockCodec::decode_block`] with decode-effort telemetry folded
    /// into `counts`: symbols decoded, modelled stall bits (one Figure-9
    /// tree level per bit) and first-level LUT overflows. The default
    /// decodes without counting — correct for codecs with no serial
    /// Huffman machinery (Base's raw words, Tailored's fixed-width
    /// fields resolve in parallel, stalling nothing).
    ///
    /// # Errors
    ///
    /// Exactly the errors [`BlockCodec::decode_block`] produces.
    fn decode_block_counted(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
        counts: &mut DecodeCounters,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        let _ = counts;
        self.decode_block(image, b, num_ops)
    }

    /// [`BlockCodec::decode_block`] forced down the bit-serial
    /// *reference* decode path, bypassing any LUT fast-path machinery.
    /// This is the graceful-degradation fallback the fetch engine takes
    /// when the fast path errors (DESIGN.md §13): the reference decoder
    /// shares no lookup tables with the LUT, so a corrupted table
    /// cannot poison both. Codecs with no LUT (Base, Tailored) keep the
    /// default, which is just [`BlockCodec::decode_block`].
    ///
    /// # Errors
    ///
    /// [`BlockDecodeError`] when the underlying bytes are themselves
    /// corrupt — then both paths fail and the block is genuinely lost.
    fn decode_block_reference(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        self.decode_block(image, b, num_ops)
    }

    /// Decodes many blocks in one call, amortizing per-block setup and
    /// — for the Huffman codecs — interleaving the blocks' bitstreams
    /// so their table-lookup latencies overlap (DESIGN.md §15). Each
    /// request yields exactly the result (words or error) that
    /// [`BlockCodec::decode_block_counted`] would produce for it, and
    /// `counts` receives the same totals as the equivalent sequential
    /// loop. The default *is* that sequential loop — correct for every
    /// codec, interleave-accelerated where a codec overrides it.
    fn decode_batch(
        &self,
        image: &EncodedProgram,
        requests: &[BlockRequest],
        counts: &mut DecodeCounters,
    ) -> Vec<Result<Vec<u64>, BlockDecodeError>> {
        requests
            .iter()
            .map(|q| self.decode_block_counted(image, q.block, q.num_ops, counts))
            .collect()
    }

    /// Serializes the codec's decode tables (Huffman dictionaries,
    /// dense renumberings) into a deterministic byte image, the unit the
    /// dictionary CRC protects. Empty for codecs with no tables (Base).
    fn dictionary_image(&self) -> Vec<u8>;
}

/// One block's work item for [`BlockCodec::decode_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Block index into the image.
    pub block: usize,
    /// Number of operations the block holds.
    pub num_ops: usize,
}

/// Batch-decodes blocks `0..ops_per_block.len()` of an image — the
/// whole program when `ops_per_block[b]` is block `b`'s op count.
/// Convenience wrapper over [`BlockCodec::decode_batch`].
pub fn decode_blocks(
    codec: &dyn BlockCodec,
    image: &EncodedProgram,
    ops_per_block: &[usize],
    counts: &mut DecodeCounters,
) -> Vec<Result<Vec<u64>, BlockDecodeError>> {
    let requests: Vec<BlockRequest> = ops_per_block
        .iter()
        .enumerate()
        .map(|(block, &num_ops)| BlockRequest { block, num_ops })
        .collect();
    codec.decode_batch(image, &requests, counts)
}

/// The shared shape of every Huffman block codec: a block is
/// `num_symbols(num_ops)` codewords, codeword `i` decoded with table
/// `table_of(i)` of one [`InterleavedDecoder`], and the symbol sequence
/// reassembled into op words by `assemble`. The blanket
/// [`BlockCodec`] impl below derives the whole `decode_block*` triplet
/// *and* the interleaved `decode_batch` from these five hooks, so the
/// byte/stream/full/pair codecs carry no per-scheme decode loops.
///
/// Contract: positions where `table_of` departs from the decoder's
/// cycle must form a *suffix* of the symbol sequence (the pair codec's
/// odd trailing single). The derived paths decode the cycle-consistent
/// prefix on the fast path and the suffix per-symbol.
pub(crate) trait SymbolCodec: Send + Sync {
    /// The decode tables plus their per-symbol schedule.
    fn decoder(&self) -> &InterleavedDecoder;
    /// Codewords encoding a block of `num_ops` operations.
    fn num_symbols(&self, num_ops: usize) -> usize;
    /// Table decoding codeword `i`. May name a table the decoder was
    /// built without (pair without a singles book) — decoding then
    /// fails with [`BlockDecodeError::BadValue`].
    fn table_of(&self, i: usize, num_ops: usize) -> u32;
    /// Reassembles the decoded symbols into the block's op words.
    fn assemble(&self, syms: &[u32], num_ops: usize) -> Result<Vec<u64>, BlockDecodeError>;
    /// The codec's serialized decode tables ([`BlockCodec::dictionary_image`]).
    fn tables_image(&self) -> Vec<u8>;
}

/// Length of the leading run of codewords whose tables follow the
/// decoder's cycle — the portion the interleaved kernel may decode.
fn cycle_prefix<T: SymbolCodec + ?Sized>(codec: &T, n: usize, num_ops: usize) -> usize {
    let cycle = codec.decoder().cycle();
    let mut k = 0;
    while k < n && codec.table_of(k, num_ops) == cycle[k % cycle.len()] {
        k += 1;
    }
    k
}

/// The one sequential decode loop behind every Huffman codec's
/// `decode_block` / `decode_block_counted` / `decode_block_reference`:
/// whole-block `decode_n` when a single table covers the block,
/// per-symbol over `table_of` otherwise; `reference` forces the
/// bit-serial reference decoder (the PR-5 graceful-degradation path).
fn decode_huffman_block<T: SymbolCodec + ?Sized>(
    codec: &T,
    image: &EncodedProgram,
    b: usize,
    num_ops: usize,
    counts: &mut DecodeCounters,
    reference: bool,
) -> Result<Vec<u64>, BlockDecodeError> {
    let dec = codec.decoder();
    let cycle = dec.cycle();
    let n = codec.num_symbols(num_ops);
    let mut r = BitReader::at_bit(&image.bytes, image.block_start[b] * 8);
    let uniform = cycle.len() == 1 && (n == 0 || codec.table_of(n - 1, num_ops) == cycle[0]);
    let syms = if uniform {
        let tab = dec.table(cycle[0] as usize);
        if reference {
            tab.reference().decode_n(&mut r, n)?
        } else {
            tab.decode_n_counted(&mut r, n, counts)?
        }
    } else {
        let mut syms = Vec::with_capacity(n);
        for i in 0..n {
            let t = codec.table_of(i, num_ops) as usize;
            let tab = dec.get_table(t).ok_or(BlockDecodeError::BadValue {
                field: "decode table",
            })?;
            let sym = if reference {
                tab.reference().decode_counted(&mut r, counts)?
            } else {
                tab.decode_counted(&mut r, counts)?
            };
            syms.push(sym);
        }
        syms
    };
    codec.assemble(&syms, num_ops)
}

/// The interleaved batch path behind every Huffman codec's
/// `decode_batch`: one lane per requested block, all lanes decoded
/// round-robin in a single [`InterleavedDecoder::decode_streams`] call,
/// then any off-cycle suffix (pair's trailing single) and the word
/// reassembly finished per block. Produces exactly the per-block
/// results and counter totals of the sequential loop.
fn decode_huffman_batch<T: SymbolCodec + ?Sized>(
    codec: &T,
    image: &EncodedProgram,
    requests: &[BlockRequest],
    counts: &mut DecodeCounters,
) -> Vec<Result<Vec<u64>, BlockDecodeError>> {
    let dec = codec.decoder();
    let lanes: Vec<StreamLane<'_>> = requests
        .iter()
        .map(|q| StreamLane {
            bytes: &image.bytes,
            start_bit: image.block_start[q.block] * 8,
            symbols: cycle_prefix(codec, codec.num_symbols(q.num_ops), q.num_ops),
            table: None,
        })
        .collect();
    let decoded = dec.decode_streams(&lanes, counts);
    requests
        .iter()
        .zip(decoded)
        .map(|(q, lane)| {
            if let Some(e) = lane.err {
                return Err(e.into());
            }
            let n = codec.num_symbols(q.num_ops);
            let mut syms = lane.syms;
            if syms.len() < n {
                let mut r = BitReader::at_bit(&image.bytes, lane.end_bit);
                for i in syms.len()..n {
                    let t = codec.table_of(i, q.num_ops) as usize;
                    let tab = dec.get_table(t).ok_or(BlockDecodeError::BadValue {
                        field: "decode table",
                    })?;
                    syms.push(tab.decode_counted(&mut r, counts)?);
                }
            }
            codec.assemble(&syms, q.num_ops)
        })
        .collect()
}

impl<T: SymbolCodec> BlockCodec for T {
    fn decode_block(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        decode_huffman_block(
            self,
            image,
            b,
            num_ops,
            &mut DecodeCounters::default(),
            false,
        )
    }

    fn decode_block_counted(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
        counts: &mut DecodeCounters,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        decode_huffman_block(self, image, b, num_ops, counts, false)
    }

    fn decode_block_reference(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        decode_huffman_block(
            self,
            image,
            b,
            num_ops,
            &mut DecodeCounters::default(),
            true,
        )
    }

    fn decode_batch(
        &self,
        image: &EncodedProgram,
        requests: &[BlockRequest],
        counts: &mut DecodeCounters,
    ) -> Vec<Result<Vec<u64>, BlockDecodeError>> {
        decode_huffman_batch(self, image, requests, counts)
    }

    fn dictionary_image(&self) -> Vec<u8> {
        self.tables_image()
    }
}

/// A compression scheme.
pub trait Scheme {
    /// Short name as used in the paper's figures (`byte`, `stream`,
    /// `stream_1`, `full`, `tailored`, `base`).
    fn name(&self) -> String;

    /// Compresses a program.
    ///
    /// # Errors
    ///
    /// Returns [`CompressError`] when the program cannot be encoded.
    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError>;
}

/// The scheme line-up of the paper's Figure 5: byte-wise, the two best
/// stream configurations (`stream` = smallest decoder, `stream_1` =
/// smallest code), Full, and Tailored.
pub fn standard_schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(byte::ByteScheme::default()),
        Box::new(stream::StreamScheme::named("stream").expect("builtin config")),
        Box::new(stream::StreamScheme::named("stream_1").expect("builtin config")),
        Box::new(full::FullScheme::default()),
        Box::new(tailored::TailoredScheme),
    ]
}

#[cfg(test)]
pub(crate) mod testutil {
    use tepic_isa::Program;

    /// A mid-sized program exercising every format: loops, calls,
    /// floats, byte/word memory, recursion, string scanning, sorting and
    /// hashing. Large enough (hundreds of ops) that the compression
    /// shapes of the paper's figures emerge.
    pub fn sample_program() -> Program {
        let src = r#"
            global acc[64];
            global heap[128];
            global hist[64];
            bglobal text[64] = "the quick brown fox jumps over the lazy dog again";
            fglobal coefs[8] = { 0.5, 0.25, 1.5, -2.0, 3.25, -0.75, 0.125, 9.5 };
            fn main() {
                var i; var s = 0;
                for (i = 0; i < 64; i = i + 1) { acc[i] = i * i - 3; }
                for (i = 0; i < 50; i = i + 1) { s = s + text[i]; }
                print(s);
                print(fib(10));
                fvar x = 0.0;
                for (i = 0; i < 8; i = i + 1) { x = x + coefs[i]; }
                print(int(x * 100.0));
                fill(37);
                sort(40);
                print(heap[0]); print(heap[39]);
                print(hashtext(50));
                print(gcd(462, 1071));
                classify(25);
                print(hist[1] + hist[2] * 10);
            }
            fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            fn fill(seed) {
                var i; var v = seed;
                for (i = 0; i < 40; i = i + 1) {
                    v = (v * 1103 + 12345) % 2048;
                    heap[i] = v;
                }
                return 0;
            }
            fn sort(n) {
                var i; var j; var t;
                for (i = 0; i < n; i = i + 1) {
                    for (j = 0; j < n - 1 - i; j = j + 1) {
                        if (heap[j] > heap[j + 1]) {
                            t = heap[j]; heap[j] = heap[j + 1]; heap[j + 1] = t;
                        }
                    }
                }
                return 0;
            }
            fn hashtext(n) {
                var i; var h = 5381;
                for (i = 0; i < n; i = i + 1) {
                    h = ((h << 5) + h) ^ text[i];
                    h = h & 0xFFFFFF;
                }
                return h;
            }
            fn gcd(a, b) {
                while (b != 0) { var t = b; b = a % b; a = t; }
                return a;
            }
            fn classify(n) {
                var i;
                for (i = 0; i < n; i = i + 1) {
                    var v = heap[i];
                    if (v < 100) { hist[0] = hist[0] + 1; }
                    else if (v < 500) { hist[1] = hist[1] + 1; }
                    else if (v < 1000) { hist[2] = hist[2] + 1; }
                    else { hist[3] = hist[3] + 1; }
                }
                return 0;
            }
        "#;
        lego::compile(src, &lego::Options::default()).expect("sample compiles")
    }

    /// A tiny program (edge case: few distinct symbols).
    pub fn tiny_program() -> Program {
        lego::compile("fn main() { print(1); }", &lego::Options::default()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_lineup_matches_figure5() {
        let names: Vec<String> = standard_schemes().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["byte", "stream", "stream_1", "full", "tailored"]
        );
    }

    #[test]
    fn every_standard_scheme_round_trips_the_sample() {
        let p = testutil::sample_program();
        for scheme in standard_schemes() {
            let out = scheme
                .compress(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(out.image.check_layout(), "{} layout broken", scheme.name());
            assert!(
                out.verify_roundtrip(&p),
                "{} round trip failed",
                scheme.name()
            );
        }
    }

    #[test]
    fn every_standard_scheme_handles_tiny_programs() {
        let p = testutil::tiny_program();
        for scheme in standard_schemes() {
            let out = scheme
                .compress(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(
                out.verify_roundtrip(&p),
                "{} tiny round trip failed",
                scheme.name()
            );
        }
    }

    #[test]
    fn compression_ordering_matches_paper_shape() {
        // Figure 5: full < tailored < byte ≲ stream (as fractions of the
        // original size). Exact numbers depend on the workload; the
        // ordering full < tailored and full < byte must hold.
        let p = testutil::sample_program();
        let orig = p.code_size();
        let get = |name: &str| -> f64 {
            standard_schemes()
                .into_iter()
                .find(|s| s.name() == name)
                .unwrap()
                .compress(&p)
                .unwrap()
                .image
                .ratio(orig)
        };
        let full = get("full");
        let tailored = get("tailored");
        let byte = get("byte");
        assert!(
            full < tailored,
            "full {full} should beat tailored {tailored}"
        );
        assert!(full < byte, "full {full} should beat byte {byte}");
        assert!(tailored < 1.0 && byte < 1.0);
    }
}
