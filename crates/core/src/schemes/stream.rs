//! Stream-based Huffman compression (paper §2.2, Figure 3).
//!
//! Each 40-bit operation is split at fixed bit boundaries into several
//! *streams*; every stream gets its own Huffman table built from the
//! static frequencies of its field values ("certain fields exhibit more
//! repetitive patterns when taken as independent compression streams").
//! An op's encoding is the concatenation of its stream codes.
//!
//! Choosing the best boundary set is exponential (paper: "the choice of
//! best possible stream encoding is an exponential time task; six stream
//! configurations were considered"). The same six-configuration study is
//! reproduced here: [`StreamConfig::ALL`] lists them, with `stream`
//! (the finest split → smallest total decoder) and `stream_1` (two
//! 20-bit halves → smallest code) called out by name as in Figure 5;
//! `stream_explorer` in `ccc-bench` reproduces the selection.

use super::{BlockDecodeError, CompressError, Scheme, SchemeOutput, SymbolCodec};
use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use tepic_isa::Program;
use tinker_huffman::{BitWriter, CodeBook, DecoderComplexity, Dictionary, InterleavedDecoder};

/// A stream configuration: cut points over the 40-bit word. `cuts` must
/// start at 0, end at 40, and be strictly increasing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// Configuration name (Figure 5 uses `stream` and `stream_1`).
    pub name: &'static str,
    /// Cut points; stream `i` covers bits `cuts[i]..cuts[i+1]`.
    pub cuts: &'static [u32],
}

impl StreamConfig {
    /// The six configurations considered in the study.
    ///
    /// Splitting a stream always loses the joint correlation between its
    /// halves (`H(S) ≤ H(S1) + H(S2)`), so *coarser* configurations
    /// compress better — toward Full at the limit — while *finer* ones
    /// keep every per-table `m` and dictionary small, shrinking the total
    /// decoder. Hence, matching Figure 5's callouts:
    ///
    /// * `stream` — the finest field-aligned split (every Table-2
    ///   boundary): the smallest decoder of the family, since each
    ///   per-table `m` and dictionary stays tiny;
    /// * `stream_1` — two 20-bit halves: the smallest code;
    /// * `stream_2`..`stream_5` — the also-rans of the exploration.
    pub const ALL: [StreamConfig; 6] = [
        StreamConfig {
            name: "stream",
            cuts: &[0, 2, 4, 9, 14, 19, 21, 29, 34, 35, 40],
        },
        StreamConfig {
            name: "stream_1",
            cuts: &[0, 20, 40],
        },
        StreamConfig {
            name: "stream_2",
            cuts: &[0, 9, 29, 40],
        },
        StreamConfig {
            name: "stream_3",
            cuts: &[0, 9, 14, 19, 29, 34, 40],
        },
        StreamConfig {
            name: "stream_4",
            cuts: &[0, 9, 19, 29, 40],
        },
        StreamConfig {
            name: "stream_5",
            cuts: &[0, 9, 19, 40],
        },
    ];

    /// Looks a configuration up by name.
    pub fn by_name(name: &str) -> Option<&'static StreamConfig> {
        Self::ALL.iter().find(|c| c.name == name)
    }

    /// Number of streams.
    pub fn num_streams(&self) -> usize {
        self.cuts.len() - 1
    }

    /// `(offset, width)` of stream `i`.
    pub fn stream_bits(&self, i: usize) -> (u32, u32) {
        (self.cuts[i], self.cuts[i + 1] - self.cuts[i])
    }

    /// Validates the cut invariants.
    pub fn is_valid(&self) -> bool {
        self.cuts.first() == Some(&0)
            && self.cuts.last() == Some(&40)
            && self.cuts.windows(2).all(|w| w[0] < w[1])
    }
}

/// Stream-based Huffman scheme over one configuration.
#[derive(Debug, Clone)]
pub struct StreamScheme {
    config: &'static StreamConfig,
    /// Per-stream maximum code length.
    pub max_code_len: u8,
}

impl StreamScheme {
    /// Creates the scheme for a named builtin configuration.
    pub fn named(name: &str) -> Option<StreamScheme> {
        StreamConfig::by_name(name).map(|config| StreamScheme {
            config,
            max_code_len: 20,
        })
    }

    /// Creates the scheme for an explicit configuration.
    pub fn with_config(config: &'static StreamConfig) -> StreamScheme {
        StreamScheme {
            config,
            max_code_len: 20,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &'static StreamConfig {
        self.config
    }
}

fn field(word: u64, off: u32, width: u32) -> u64 {
    (word >> off) & ((1u64 << width) - 1)
}

struct StreamCodec {
    config: &'static StreamConfig,
    /// One table per field stream; the cycle visits them in stream
    /// order, so an op is `num_streams` consecutive codewords.
    inter: InterleavedDecoder,
    values: Vec<Vec<u64>>, // per stream: symbol id → field value
}

impl SymbolCodec for StreamCodec {
    fn decoder(&self) -> &InterleavedDecoder {
        &self.inter
    }

    fn num_symbols(&self, num_ops: usize) -> usize {
        num_ops * self.config.num_streams()
    }

    fn table_of(&self, i: usize, _num_ops: usize) -> u32 {
        (i % self.config.num_streams()) as u32
    }

    fn assemble(&self, syms: &[u32], num_ops: usize) -> Result<Vec<u64>, BlockDecodeError> {
        let ns = self.config.num_streams();
        let mut out = Vec::with_capacity(num_ops);
        for op_syms in syms.chunks_exact(ns) {
            let mut word = 0u64;
            for (si, &sym) in op_syms.iter().enumerate() {
                let (off, _) = self.config.stream_bits(si);
                let v = self.values[si]
                    .get(sym as usize)
                    .ok_or(BlockDecodeError::BadValue {
                        field: "stream symbol",
                    })?;
                word |= v << off;
            }
            out.push(word);
        }
        Ok(out)
    }

    fn tables_image(&self) -> Vec<u8> {
        let mut img = Vec::new();
        for (si, values) in self.values.iter().enumerate() {
            img.extend_from_slice(&self.inter.table(si).table_image());
            for v in values {
                img.extend_from_slice(&v.to_le_bytes());
            }
        }
        img
    }
}

impl Scheme for StreamScheme {
    fn name(&self) -> String {
        self.config.name.to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        debug_assert!(self.config.is_valid());
        let words = program.op_words();
        let ns = self.config.num_streams();

        // Per-stream dictionaries and Huffman books.
        let mut dicts: Vec<Dictionary<u64>> = vec![Dictionary::new(); ns];
        for &w in &words {
            for (si, dict) in dicts.iter_mut().enumerate() {
                let (off, width) = self.config.stream_bits(si);
                dict.record(field(w, off, width));
            }
        }
        let mut books = Vec::with_capacity(ns);
        for dict in &dicts {
            books.push(CodeBook::bounded_from_freqs(
                dict.freqs(),
                self.max_code_len,
            )?);
        }

        // Encode, block starts byte-aligned.
        let mut wtr = BitWriter::new();
        let mut block_start = Vec::with_capacity(program.num_blocks());
        let mut block_bytes = Vec::with_capacity(program.num_blocks());
        for b in 0..program.num_blocks() {
            wtr.align_byte();
            let start = wtr.bit_len() / 8;
            block_start.push(start);
            for op in program.block_ops(b) {
                let w = op.encode();
                for (si, book) in books.iter().enumerate() {
                    let (off, width) = self.config.stream_bits(si);
                    let sym =
                        dicts[si]
                            .id_of(&field(w, off, width))
                            .ok_or(CompressError::Integrity {
                                detail: "stream field missing from its dictionary",
                            })?;
                    book.try_encode_into(sym, &mut wtr)?;
                }
            }
            let end = wtr.bit_len().div_ceil(8);
            block_bytes.push((end - start) as u32);
        }

        let decoders_model: Vec<DecoderComplexity> = books
            .iter()
            .enumerate()
            .map(|(si, book)| DecoderComplexity {
                n: book.max_len() as u32,
                k: book.num_coded(),
                m: self.config.stream_bits(si).1,
            })
            .collect();
        let image = EncodedProgram {
            kind: SchemeKind::Stream(self.config.name.to_string()),
            bytes: wtr.into_bytes(),
            block_start,
            block_bytes,
            decoder: DecoderCost::Huffman(decoders_model),
        };
        let codec = StreamCodec {
            config: self.config,
            inter: InterleavedDecoder::new(books.iter().map(CodeBook::lut_decoder).collect()),
            values: dicts
                .iter()
                .map(|d| (0..d.len() as u32).map(|i| *d.value_of(i)).collect())
                .collect(),
        };
        Ok(SchemeOutput {
            image,
            codec: Box::new(codec),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::{sample_program, tiny_program};

    #[test]
    fn all_configs_are_valid_partitions() {
        for c in &StreamConfig::ALL {
            assert!(c.is_valid(), "{} invalid", c.name);
            let total: u32 = (0..c.num_streams()).map(|i| c.stream_bits(i).1).sum();
            assert_eq!(total, 40, "{} does not cover 40 bits", c.name);
        }
    }

    #[test]
    fn all_configs_round_trip() {
        let p = sample_program();
        for c in &StreamConfig::ALL {
            let out = StreamScheme::with_config(c).compress(&p).unwrap();
            assert!(out.verify_roundtrip(&p), "{} round trip failed", c.name);
            assert!(out.image.check_layout());
        }
    }

    #[test]
    fn named_lookup() {
        assert!(StreamScheme::named("stream").is_some());
        assert!(StreamScheme::named("stream_1").is_some());
        assert!(StreamScheme::named("nope").is_none());
    }

    #[test]
    fn stream_compresses_below_original() {
        let p = sample_program();
        let out = StreamScheme::named("stream").unwrap().compress(&p).unwrap();
        let r = out.image.ratio(p.code_size());
        assert!(r < 1.0, "stream ratio {r} >= 1");
    }

    #[test]
    fn coarser_split_gives_smaller_code_finer_gives_smaller_decoder() {
        // The entropy argument behind the two Figure-5 callouts:
        // H(S) ≤ H(S1) + H(S2), so the coarse `stream_1` compresses at
        // least as well, while the fine `stream` needs less decoder.
        let p = sample_program();
        let fine = StreamScheme::named("stream").unwrap().compress(&p).unwrap();
        let coarse = StreamScheme::named("stream_1")
            .unwrap()
            .compress(&p)
            .unwrap();
        assert!(
            coarse.image.total_bytes() <= fine.image.total_bytes() + p.num_blocks(),
            "coarse {} vs fine {}",
            coarse.image.total_bytes(),
            fine.image.total_bytes()
        );
        assert!(
            fine.image.decoder.transistors() < coarse.image.decoder.transistors(),
            "fine decoder {} vs coarse {}",
            fine.image.decoder.transistors(),
            coarse.image.decoder.transistors()
        );
    }

    #[test]
    fn decoder_has_one_part_per_stream() {
        let p = sample_program();
        for c in &StreamConfig::ALL {
            let out = StreamScheme::with_config(c).compress(&p).unwrap();
            match &out.image.decoder {
                DecoderCost::Huffman(parts) => assert_eq!(parts.len(), c.num_streams()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn tiny_program_round_trips() {
        let p = tiny_program();
        for c in &StreamConfig::ALL {
            let out = StreamScheme::with_config(c).compress(&p).unwrap();
            assert!(out.verify_roundtrip(&p), "{} tiny failed", c.name);
        }
    }
}
