//! The Base (uncompressed) encoding: 5 bytes per operation, exactly the
//! original image. Exists so the fetch simulator and the power model can
//! treat all encodings uniformly.

use super::{BlockCodec, BlockDecodeError, CompressError, Scheme, SchemeOutput};
use crate::encoded::{DecoderCost, EncodedProgram, SchemeKind};
use tepic_isa::{Program, OP_BYTES};

/// The identity "scheme".
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseScheme;

/// Builds the base image directly (no `Result`: it cannot fail for a
/// valid program).
pub fn encode_base(program: &Program) -> EncodedProgram {
    let bytes = program.code_bytes();
    let mut block_start = Vec::with_capacity(program.num_blocks());
    let mut block_bytes = Vec::with_capacity(program.num_blocks());
    for b in 0..program.num_blocks() {
        let (s, e) = program.block_byte_range(b);
        block_start.push(s);
        block_bytes.push((e - s) as u32);
    }
    EncodedProgram {
        kind: SchemeKind::Base,
        bytes,
        block_start,
        block_bytes,
        decoder: DecoderCost::None,
    }
}

struct BaseCodec;

impl BlockCodec for BaseCodec {
    fn decode_block(
        &self,
        image: &EncodedProgram,
        b: usize,
        num_ops: usize,
    ) -> Result<Vec<u64>, BlockDecodeError> {
        let start = image.block_start[b] as usize;
        let mut out = Vec::with_capacity(num_ops);
        for i in 0..num_ops {
            let off = start + i * OP_BYTES;
            let chunk = image
                .bytes
                .get(off..off + OP_BYTES)
                .ok_or(BlockDecodeError::Eos)?;
            let mut w = [0u8; 8];
            w[..OP_BYTES].copy_from_slice(chunk);
            out.push(u64::from_le_bytes(w));
        }
        Ok(out)
    }

    fn dictionary_image(&self) -> Vec<u8> {
        Vec::new()
    }
}

impl Scheme for BaseScheme {
    fn name(&self) -> String {
        "base".to_string()
    }

    fn compress(&self, program: &Program) -> Result<SchemeOutput, CompressError> {
        if program.num_ops() == 0 {
            return Err(CompressError::EmptyProgram);
        }
        Ok(SchemeOutput {
            image: encode_base(program),
            codec: Box::new(BaseCodec),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::sample_program;

    #[test]
    fn base_is_identity() {
        let p = sample_program();
        let out = BaseScheme.compress(&p).unwrap();
        assert_eq!(out.image.total_bytes(), p.code_size());
        assert!((out.image.ratio(p.code_size()) - 1.0).abs() < 1e-12);
        assert!(out.verify_roundtrip(&p));
        assert_eq!(out.image.decoder.transistors(), 0);
    }

    #[test]
    fn block_ranges_match_program() {
        let p = sample_program();
        let img = encode_base(&p);
        for b in 0..p.num_blocks() {
            assert_eq!(img.block_range(b), p.block_byte_range(b));
        }
        assert!(img.check_layout());
    }
}
