//! Deterministic failpoints: named fault-injection sites for the
//! *infrastructure* plane.
//!
//! PR 1 hardened the **data** plane (CRC'd dictionaries and ATT entries,
//! fail-closed decode); this module gives the **infrastructure** plane —
//! cache I/O, pool job dispatch, pipeline stages, the LUT decode fast
//! path — the same treatment: every place the engine can fail gets a
//! *named site*, and a seeded registry decides, reproducibly, whether a
//! given arrival at that site should be forced to fail and how.
//!
//! Sites are checked with [`Failpoints::check`]; an inactive registry
//! (the default everywhere) costs one relaxed atomic load per check, so
//! production paths pay essentially nothing. An active registry draws
//! from a per-rule xorshift64* stream seeded at configuration time, so a
//! fixed seed and call order reproduce the exact same fault schedule —
//! the property the chaos harness (`tepic-cc chaos`) and the recovery
//! proptests rely on.
//!
//! Configuration is a spec string of comma-separated `site:prob:mode`
//! rules, e.g.
//!
//! ```text
//! cache.read:0.2:io,cache.read:0.1:corrupt,pool.job:0.05:panic
//! ```
//!
//! `prob` is a fire probability in `[0,1]`; `mode` is one of `io`
//! (transient I/O error), `corrupt` (data damage), `panic` (poisoned
//! job), `flaky` (transient stage failure) or `error` (generic decode
//! failure). The CLI exposes this as `tepic-cc chaos --sites <spec>`;
//! the engine also honours the `CCC_FAILPOINTS` / `CCC_FAILPOINT_SEED`
//! environment variables (see `Engine::from_env`). Every fired injection
//! is appended to an in-registry log so a chaos run can reconcile
//! *injected* faults against *recovered* ones — recovery must account
//! for every fault, one for one. See DESIGN.md §13.

use crate::fault::XorShift64;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The site-name catalog. Free-form names are accepted too, but every
/// site the repo's own code checks is listed here (and documented in
/// DESIGN.md §13's failpoint site catalog).
pub mod sites {
    /// Reading an existing artifact-cache entry from disk.
    pub const CACHE_READ: &str = "cache.read";
    /// Writing an artifact-cache temp file.
    pub const CACHE_WRITE: &str = "cache.write";
    /// The atomic rename publishing a cache entry.
    pub const CACHE_RENAME: &str = "cache.rename";
    /// Dispatch of one pool job (a prepare task).
    pub const POOL_JOB: &str = "pool.job";
    /// The compile stage build.
    pub const STAGE_COMPILE: &str = "stage.compile";
    /// The emulate stage build.
    pub const STAGE_EMULATE: &str = "stage.emulate";
    /// The encode stage build.
    pub const STAGE_ENCODE: &str = "stage.encode";
    /// The report stage build.
    pub const STAGE_REPORT: &str = "stage.report";
    /// The LUT Huffman fast path in the fetch simulator.
    pub const DECODE_LUT: &str = "decode.lut";
}

/// The coarse class a site belongs to, as reported by the chaos
/// harness (`cache-read`, `cache-write`, `pool-job`, `stage`, `decode`).
pub fn class_of(site: &str) -> &'static str {
    match site {
        sites::CACHE_READ => "cache-read",
        sites::CACHE_WRITE | sites::CACHE_RENAME => "cache-write",
        sites::POOL_JOB => "pool-job",
        s if s.starts_with("stage.") => "stage",
        s if s.starts_with("decode.") => "decode",
        _ => "other",
    }
}

/// All site classes the chaos harness requires coverage of.
pub const REQUIRED_CLASSES: [&str; 4] = ["cache-read", "cache-write", "pool-job", "stage"];

/// How an injected fault should manifest at the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailMode {
    /// A transient I/O error (retryable).
    Io,
    /// Data corruption (detected by integrity checks, quarantined).
    Corrupt,
    /// A panic (poisoned job; caught by the isolated pool).
    Panic,
    /// A transient stage failure (retryable).
    Flaky,
    /// A generic operation error (e.g. a decode failure).
    Error,
}

impl FailMode {
    /// The spec-string name.
    pub fn name(self) -> &'static str {
        match self {
            FailMode::Io => "io",
            FailMode::Corrupt => "corrupt",
            FailMode::Panic => "panic",
            FailMode::Flaky => "flaky",
            FailMode::Error => "error",
        }
    }

    fn parse(s: &str) -> Option<FailMode> {
        Some(match s {
            "io" => FailMode::Io,
            "corrupt" => FailMode::Corrupt,
            "panic" => FailMode::Panic,
            "flaky" => FailMode::Flaky,
            "error" => FailMode::Error,
            _ => return None,
        })
    }
}

impl fmt::Display for FailMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A malformed failpoint spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// The offending `site:prob:mode` clause.
    pub clause: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad failpoint clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for SpecError {}

/// One configured injection rule.
#[derive(Debug, Clone)]
struct Rule {
    site: String,
    mode: FailMode,
    /// Fire threshold scaled to u64: fire iff `rng.next_u64() < threshold`.
    threshold: u64,
    rng: XorShift64,
}

/// One fired injection, in firing order (per thread schedule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Global sequence number (1-based, in firing order).
    pub seq: u64,
    /// The site that fired.
    pub site: String,
    /// The mode it fired with.
    pub mode: FailMode,
}

#[derive(Debug, Default)]
struct Inner {
    rules: Vec<Rule>,
    log: Vec<Injection>,
    /// Total arrivals per unique site name (fired or not).
    hits: Vec<(String, u64)>,
}

/// A registry of named failpoints. Cheap to share (`Arc`), cheap to
/// check while inactive (one relaxed atomic load), deterministic while
/// active (seeded per-rule xorshift64*).
#[derive(Debug, Default)]
pub struct Failpoints {
    active: AtomicBool,
    inner: Mutex<Inner>,
}

impl Failpoints {
    /// An inactive registry: every [`Failpoints::check`] returns `None`.
    pub fn disabled() -> Failpoints {
        Failpoints::default()
    }

    /// Parses a `site:prob:mode[,site:prob:mode...]` spec into an active
    /// registry. An empty spec yields an inactive registry.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the first malformed clause.
    pub fn from_spec(spec: &str, seed: u64) -> Result<Failpoints, SpecError> {
        let fp = Failpoints::disabled();
        fp.configure(spec, seed)?;
        Ok(fp)
    }

    /// Replaces the rule set (and clears the log) from a spec string.
    /// Each rule draws from its own xorshift64* stream seeded by
    /// `seed` mixed with the rule index, so adding a rule never perturbs
    /// the schedule of the rules before it.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the first malformed clause; on error the
    /// registry is left disabled.
    pub fn configure(&self, spec: &str, seed: u64) -> Result<(), SpecError> {
        let mut rules = Vec::new();
        for (i, clause) in spec
            .split(',')
            .map(str::trim)
            .filter(|c| !c.is_empty())
            .enumerate()
        {
            let parts: Vec<&str> = clause.split(':').collect();
            let [site, prob, mode] = parts[..] else {
                return Err(SpecError {
                    clause: clause.to_string(),
                    reason: "want site:prob:mode",
                });
            };
            if site.is_empty() {
                return Err(SpecError {
                    clause: clause.to_string(),
                    reason: "empty site name",
                });
            }
            let prob: f64 = prob.parse().map_err(|_| SpecError {
                clause: clause.to_string(),
                reason: "probability does not parse",
            })?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(SpecError {
                    clause: clause.to_string(),
                    reason: "probability out of [0,1]",
                });
            }
            let mode = FailMode::parse(mode).ok_or(SpecError {
                clause: clause.to_string(),
                reason: "unknown mode (io|corrupt|panic|flaky|error)",
            })?;
            // Scale to the u64 range; prob 1.0 must always fire.
            let threshold = if prob >= 1.0 {
                u64::MAX
            } else {
                (prob * u64::MAX as f64) as u64
            };
            rules.push(Rule {
                site: site.to_string(),
                mode,
                threshold,
                // splitmix-style index mixing keeps rule streams independent.
                rng: XorShift64::new(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            });
        }
        let mut inner = self.inner.lock().expect("failpoint registry");
        inner.log.clear();
        inner.hits.clear();
        let any = !rules.is_empty();
        inner.rules = rules;
        self.active.store(any, Ordering::Release);
        Ok(())
    }

    /// Deactivates the registry and clears its rules and log.
    pub fn disable(&self) {
        let mut inner = self.inner.lock().expect("failpoint registry");
        inner.rules.clear();
        inner.log.clear();
        inner.hits.clear();
        self.active.store(false, Ordering::Release);
    }

    /// Whether any rule is configured. The fast path: callers may skip
    /// site bookkeeping entirely when this is false.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Should this arrival at `site` fail? Returns the injected mode if
    /// so, recording the injection in the log. Rules are consulted in
    /// configuration order; the first that fires wins (later rules for
    /// the same site still advance their streams, keeping schedules
    /// independent of earlier rules' outcomes).
    pub fn check(&self, site: &str) -> Option<FailMode> {
        if !self.is_active() {
            return None;
        }
        let mut inner = self.inner.lock().expect("failpoint registry");
        let inner = &mut *inner;
        match inner.hits.iter_mut().find(|(s, _)| s == site) {
            Some((_, n)) => *n += 1,
            None => inner.hits.push((site.to_string(), 1)),
        }
        let mut fired: Option<FailMode> = None;
        for rule in inner.rules.iter_mut().filter(|r| r.site == site) {
            let draw = rule.rng.next_u64();
            if fired.is_none() && draw < rule.threshold {
                fired = Some(rule.mode);
            }
        }
        if let Some(mode) = fired {
            let seq = inner.log.len() as u64 + 1;
            inner.log.push(Injection {
                seq,
                site: site.to_string(),
                mode,
            });
        }
        fired
    }

    /// The injection log, in firing order.
    pub fn log(&self) -> Vec<Injection> {
        self.inner.lock().expect("failpoint registry").log.clone()
    }

    /// Total injections fired since configuration.
    pub fn total_fired(&self) -> u64 {
        self.inner.lock().expect("failpoint registry").log.len() as u64
    }

    /// Injections fired for a specific `(site, mode)` pair.
    pub fn fired(&self, site: &str, mode: FailMode) -> u64 {
        self.inner
            .lock()
            .expect("failpoint registry")
            .log
            .iter()
            .filter(|i| i.site == site && i.mode == mode)
            .count() as u64
    }

    /// Total arrivals (fired or not) at `site` since configuration.
    pub fn arrivals(&self, site: &str) -> u64 {
        self.inner
            .lock()
            .expect("failpoint registry")
            .hits
            .iter()
            .find(|(s, _)| s == site)
            .map_or(0, |&(_, n)| n)
    }

    /// Clears the injection log and arrival counts, keeping the rules
    /// (and their PRNG positions) intact — used between chaos passes
    /// that share one configuration.
    pub fn clear_log(&self) {
        let mut inner = self.inner.lock().expect("failpoint registry");
        inner.log.clear();
        inner.hits.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_never_fires() {
        let fp = Failpoints::disabled();
        assert!(!fp.is_active());
        for _ in 0..100 {
            assert_eq!(fp.check(sites::CACHE_READ), None);
        }
        assert_eq!(fp.total_fired(), 0);
        // Inactive checks do not even count arrivals (fast path).
        assert_eq!(fp.arrivals(sites::CACHE_READ), 0);
    }

    #[test]
    fn prob_one_always_fires_prob_zero_never() {
        let fp = Failpoints::from_spec("a:1.0:io,b:0.0:panic", 7).unwrap();
        for _ in 0..50 {
            assert_eq!(fp.check("a"), Some(FailMode::Io));
            assert_eq!(fp.check("b"), None);
        }
        assert_eq!(fp.fired("a", FailMode::Io), 50);
        assert_eq!(fp.fired("b", FailMode::Panic), 0);
        assert_eq!(fp.arrivals("a"), 50);
        assert_eq!(fp.arrivals("b"), 50);
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = "cache.read:0.3:io,cache.read:0.2:corrupt,pool.job:0.1:panic";
        let a = Failpoints::from_spec(spec, 42).unwrap();
        let b = Failpoints::from_spec(spec, 42).unwrap();
        let outcomes_a: Vec<_> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    a.check("pool.job")
                } else {
                    a.check("cache.read")
                }
            })
            .collect();
        let outcomes_b: Vec<_> = (0..200)
            .map(|i| {
                if i % 3 == 0 {
                    b.check("pool.job")
                } else {
                    b.check("cache.read")
                }
            })
            .collect();
        assert_eq!(outcomes_a, outcomes_b);
        assert_eq!(a.log(), b.log());
        assert!(a.total_fired() > 0, "0.3 over 200 draws must fire");
    }

    #[test]
    fn different_seeds_differ() {
        let spec = "s:0.5:flaky";
        let a = Failpoints::from_spec(spec, 1).unwrap();
        let b = Failpoints::from_spec(spec, 2).unwrap();
        let seq_a: Vec<_> = (0..64).map(|_| a.check("s").is_some()).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.check("s").is_some()).collect();
        assert_ne!(seq_a, seq_b, "64 coin flips colliding is ~2^-64");
    }

    #[test]
    fn first_matching_rule_wins_but_all_streams_advance() {
        // Rule 1 fires always; rule 2 would too, but rule 1 wins.
        let fp = Failpoints::from_spec("s:1.0:io,s:1.0:corrupt", 3).unwrap();
        assert_eq!(fp.check("s"), Some(FailMode::Io));
        assert_eq!(fp.fired("s", FailMode::Io), 1);
        assert_eq!(fp.fired("s", FailMode::Corrupt), 0);
    }

    #[test]
    fn spec_errors_are_typed() {
        assert!(Failpoints::from_spec("justasite", 0).is_err());
        assert!(Failpoints::from_spec("s:notanumber:io", 0).is_err());
        assert!(Failpoints::from_spec("s:1.5:io", 0).is_err());
        assert!(Failpoints::from_spec("s:0.5:explode", 0).is_err());
        assert!(Failpoints::from_spec(":0.5:io", 0).is_err());
        // Empty and whitespace specs disable cleanly.
        assert!(!Failpoints::from_spec("", 0).unwrap().is_active());
        assert!(!Failpoints::from_spec("  ", 0).unwrap().is_active());
    }

    #[test]
    fn classes_cover_the_catalog() {
        assert_eq!(class_of(sites::CACHE_READ), "cache-read");
        assert_eq!(class_of(sites::CACHE_WRITE), "cache-write");
        assert_eq!(class_of(sites::CACHE_RENAME), "cache-write");
        assert_eq!(class_of(sites::POOL_JOB), "pool-job");
        for s in [
            sites::STAGE_COMPILE,
            sites::STAGE_EMULATE,
            sites::STAGE_ENCODE,
            sites::STAGE_REPORT,
        ] {
            assert_eq!(class_of(s), "stage");
        }
        assert_eq!(class_of(sites::DECODE_LUT), "decode");
        assert_eq!(class_of("someone.else"), "other");
    }

    #[test]
    fn clear_log_keeps_rules_armed() {
        let fp = Failpoints::from_spec("s:1.0:io", 9).unwrap();
        fp.check("s");
        assert_eq!(fp.total_fired(), 1);
        fp.clear_log();
        assert_eq!(fp.total_fired(), 0);
        assert!(fp.is_active());
        assert_eq!(fp.check("s"), Some(FailMode::Io));
    }
}
