//! Deterministic fault injection for compressed ROM images.
//!
//! The paper targets embedded ROMs, where bit errors (radiation upsets,
//! cell wear, marginal voltages) are a first-class concern. This module
//! provides the experiment the paper never ran: inject faults into the
//! encoded payload, the decode dictionaries and the ATT entries, then
//! classify what the fetch path does with each one:
//!
//! * **detected** — an integrity check (per-block parity, dictionary
//!   CRC32, ATT entry CRC-8) or a typed decoder error flags the fault
//!   before wrong operations reach the pipeline;
//! * **contained** — no check fires and the decoded stream is wrong,
//!   but only inside the faulted block: blocks start byte-aligned and
//!   decode independently, so the corruption cannot cross the atomic
//!   fetch unit (the paper's block-atomic fetch doubles as the
//!   containment boundary);
//! * **sdc** — silent data corruption: wrong decode escaping its block
//!   with nothing raised;
//! * **masked** — the fault changed nothing observable (stuck-at on a
//!   bit already at that value, or a flip in block padding bits).
//!
//! Everything is driven by an explicit xorshift PRNG so a campaign is a
//! pure function of its seed — `faultsim --seed 42` reproduces exactly.

use crate::att::AddressTranslationTable;
use crate::integrity::crc32;
use crate::schemes::{
    base::BaseScheme, byte::ByteScheme, full::FullScheme, stream::StreamScheme,
    tailored::TailoredScheme, Scheme, SchemeOutput,
};
use std::fmt;
use tepic_isa::Program;

/// xorshift64* — 64 bits of state, full period, no external deps.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates the generator; a zero seed (the one fixed point) is
    /// remapped to a nonzero constant.
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// The fault models of the campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Invert one bit (single-event upset).
    BitFlip,
    /// Force one bit to 0 (cell wear / short).
    StuckAt0,
    /// Force one bit to 1.
    StuckAt1,
    /// Invert `len` consecutive bits (2–8; a row/line disturbance).
    Burst { len: u32 },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::BitFlip => write!(f, "bit-flip"),
            FaultKind::StuckAt0 => write!(f, "stuck-at-0"),
            FaultKind::StuckAt1 => write!(f, "stuck-at-1"),
            FaultKind::Burst { len } => write!(f, "burst({len})"),
        }
    }
}

/// Where a fault lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// The encoded code segment (block payload bits).
    Payload,
    /// A decode dictionary / codebook image.
    Dictionary,
    /// A packed ATT entry.
    AttEntry,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Payload => write!(f, "payload"),
            FaultTarget::Dictionary => write!(f, "dictionary"),
            FaultTarget::AttEntry => write!(f, "att-entry"),
        }
    }
}

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Fault model applied.
    pub kind: FaultKind,
    /// Target region.
    pub target: FaultTarget,
    /// Bit offset within the target region (MSB-first within bytes).
    pub bit: u64,
}

/// What the fetch path did with one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// An integrity check or decoder error flagged it.
    Detected,
    /// Wrong decode, confined to the faulted block.
    Contained,
    /// Wrong decode escaping its block, nothing raised.
    Sdc,
    /// No observable change.
    Masked,
}

/// Deterministic fault planner/applier.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: XorShift64,
}

impl FaultInjector {
    /// Creates an injector; every decision derives from `seed`.
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            rng: XorShift64::new(seed),
        }
    }

    /// Draws a fault model (flip-heavy mix: half flips, quarter
    /// stuck-at, quarter bursts).
    pub fn pick_kind(&mut self) -> FaultKind {
        match self.rng.below(8) {
            0..=3 => FaultKind::BitFlip,
            4 => FaultKind::StuckAt0,
            5 => FaultKind::StuckAt1,
            _ => FaultKind::Burst {
                len: 2 + self.rng.below(7) as u32,
            },
        }
    }

    /// Draws a bit offset within a region of `total_bits`.
    pub fn pick_bit(&mut self, total_bits: u64) -> u64 {
        self.rng.below(total_bits.max(1))
    }

    /// Plans one fault against a region of `total_bits`.
    pub fn plan(&mut self, target: FaultTarget, total_bits: u64) -> FaultRecord {
        let kind = self.pick_kind();
        let bit = self.pick_bit(total_bits);
        FaultRecord { kind, target, bit }
    }

    /// Applies `fault` to `bytes` (MSB-first bit addressing; bursts
    /// clip at the end of the region). Returns whether any bit actually
    /// changed.
    pub fn apply(fault: &FaultRecord, bytes: &mut [u8]) -> bool {
        let total_bits = bytes.len() as u64 * 8;
        if total_bits == 0 {
            return false;
        }
        let set = |bytes: &mut [u8], bit: u64, op: fn(u8, u8) -> u8| -> bool {
            let mask = 0x80u8 >> (bit % 8);
            let byte = &mut bytes[(bit / 8) as usize];
            let before = *byte;
            *byte = op(*byte, mask);
            *byte != before
        };
        let bit = fault.bit.min(total_bits - 1);
        match fault.kind {
            FaultKind::BitFlip => set(bytes, bit, |b, m| b ^ m),
            FaultKind::StuckAt0 => set(bytes, bit, |b, m| b & !m),
            FaultKind::StuckAt1 => set(bytes, bit, |b, m| b | m),
            FaultKind::Burst { len } => {
                let mut changed = false;
                for i in 0..len as u64 {
                    let p = bit + i;
                    if p >= total_bits {
                        break;
                    }
                    changed |= set(bytes, p, |b, m| b ^ m);
                }
                changed
            }
        }
    }
}

/// Outcome counters for one (scheme, target) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Faults flagged by a check or decoder error.
    pub detected: u64,
    /// Undetected faults confined to the faulted block.
    pub contained: u64,
    /// Undetected faults escaping their block.
    pub sdc: u64,
    /// Faults with no observable effect.
    pub masked: u64,
}

impl Tally {
    fn add(&mut self, o: Outcome) {
        match o {
            Outcome::Detected => self.detected += 1,
            Outcome::Contained => self.contained += 1,
            Outcome::Sdc => self.sdc += 1,
            Outcome::Masked => self.masked += 1,
        }
    }

    /// Total faults recorded.
    pub fn total(&self) -> u64 {
        self.detected + self.contained + self.sdc + self.masked
    }
}

/// Campaign results for one scheme.
#[derive(Debug, Clone)]
pub struct SchemeCampaign {
    /// Scheme name (`base`, `byte`, `stream`, `full`, `tailored`).
    pub scheme: String,
    /// Payload faults with integrity checks active (parity + decoder).
    pub payload: Tally,
    /// Payload faults with *only* the decoder as a safety net — exposes
    /// each encoding's raw error amplification.
    pub payload_raw: Tally,
    /// Mean corrupted ops per undetected raw payload fault (the
    /// amplification factor: variable-length codes cascade, dense
    /// fixed-width fields do not).
    pub raw_amplification: f64,
    /// Dictionary faults (CRC32-protected).
    pub dictionary: Tally,
    /// ATT entry faults (CRC-8 self-check).
    pub att: Tally,
}

/// A full campaign over all schemes.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// PRNG seed the whole campaign derives from.
    pub seed: u64,
    /// Faults injected per (scheme, target) cell.
    pub faults_per_target: u64,
    /// Per-scheme results in line-up order.
    pub rows: Vec<SchemeCampaign>,
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// PRNG seed; equal seeds give bit-identical campaigns.
    pub seed: u64,
    /// Faults per (scheme, target) cell.
    pub faults_per_target: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 42,
            faults_per_target: 200,
        }
    }
}

/// The five-scheme line-up the campaign runs (base/byte/stream/full/
/// tailored).
pub fn campaign_schemes() -> Vec<Box<dyn Scheme>> {
    vec![
        Box::new(BaseScheme),
        Box::new(ByteScheme::default()),
        Box::new(StreamScheme::named("stream").expect("builtin config")),
        Box::new(FullScheme::default()),
        Box::new(TailoredScheme),
    ]
}

/// Runs a deterministic fault campaign over every scheme.
///
/// # Panics
///
/// Panics if a scheme fails to compress `program` — campaign inputs are
/// expected to be valid programs.
pub fn run_campaign(program: &Program, cfg: &CampaignConfig) -> CampaignReport {
    let mut rows = Vec::new();
    for scheme in campaign_schemes() {
        let out = scheme
            .compress(program)
            .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
        rows.push(campaign_one(program, &scheme.name(), &out, cfg));
    }
    CampaignReport {
        seed: cfg.seed,
        faults_per_target: cfg.faults_per_target,
        rows,
    }
}

fn campaign_one(
    program: &Program,
    name: &str,
    out: &SchemeOutput,
    cfg: &CampaignConfig,
) -> SchemeCampaign {
    let att = AddressTranslationTable::build(program, &out.image);
    let golden: Vec<Vec<u64>> = (0..program.num_blocks())
        .map(|b| program.block_ops(b).iter().map(|o| o.encode()).collect())
        .collect();
    let dict_image = out.codec.dictionary_image();
    let dict_crc = crc32(&dict_image);

    // Independent deterministic streams per target so adding faults to
    // one target never perturbs another.
    let mix = |salt: u64| cfg.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);

    let mut payload = Tally::default();
    let mut payload_raw = Tally::default();
    let mut dictionary = Tally::default();
    let mut att_tally = Tally::default();
    let mut raw_corrupted_ops = 0u64;
    let mut raw_undetected = 0u64;

    // --- payload faults, protected fetch path ---------------------------
    let mut inj = FaultInjector::new(mix(1));
    let payload_bits = out.image.bytes.len() as u64 * 8;
    for _ in 0..cfg.faults_per_target {
        let fault = inj.plan(FaultTarget::Payload, payload_bits);
        let mut bytes = out.image.bytes.clone();
        if !FaultInjector::apply(&fault, &mut bytes) {
            payload.add(Outcome::Masked);
            continue;
        }
        let faulted = faulted_blocks(&out.image, &fault, payload_bits);
        // Fetch path order: the block's lines arrive, parity is checked
        // against the ATT entry, then the decoder runs.
        let outcome = classify_payload(out, &att, &golden, &bytes, faulted, true, &mut 0);
        payload.add(outcome);
    }

    // --- payload faults, raw decoder only (amplification view) ----------
    let mut inj = FaultInjector::new(mix(2));
    for _ in 0..cfg.faults_per_target {
        let fault = inj.plan(FaultTarget::Payload, payload_bits);
        let mut bytes = out.image.bytes.clone();
        if !FaultInjector::apply(&fault, &mut bytes) {
            payload_raw.add(Outcome::Masked);
            continue;
        }
        let faulted = faulted_blocks(&out.image, &fault, payload_bits);
        let mut corrupted = 0u64;
        let outcome = classify_payload(out, &att, &golden, &bytes, faulted, false, &mut corrupted);
        if matches!(outcome, Outcome::Contained | Outcome::Sdc) {
            raw_undetected += 1;
            raw_corrupted_ops += corrupted;
        }
        payload_raw.add(outcome);
    }

    // --- dictionary faults (CRC32) ---------------------------------------
    let mut inj = FaultInjector::new(mix(3));
    let dict_bits = (dict_image.len() as u64 * 8).max(1);
    for _ in 0..cfg.faults_per_target {
        let fault = inj.plan(FaultTarget::Dictionary, dict_bits);
        let mut bytes = dict_image.clone();
        if !FaultInjector::apply(&fault, &mut bytes) {
            dictionary.add(Outcome::Masked);
            continue;
        }
        // The fetch path re-checks the dictionary CRC before trusting
        // the tables; a mismatch is a detected fault, a match on
        // changed bytes would be silent corruption.
        dictionary.add(if crc32(&bytes) != dict_crc {
            Outcome::Detected
        } else {
            Outcome::Sdc
        });
    }

    // --- ATT entry faults (CRC-8 self-check) ----------------------------
    let mut inj = FaultInjector::new(mix(4));
    let n_entries = att.entries().len() as u64;
    for _ in 0..cfg.faults_per_target {
        let entry = &att.entries()[inj.rng.below(n_entries.max(1)) as usize];
        let packed = entry.pack();
        let fault = inj.plan(FaultTarget::AttEntry, packed.len() as u64 * 8);
        let mut bytes = packed;
        if !FaultInjector::apply(&fault, &mut bytes) {
            att_tally.add(Outcome::Masked);
            continue;
        }
        let read_back = crate::att::AttEntry::unpack(&bytes);
        att_tally.add(if read_back.self_check() {
            Outcome::Sdc
        } else {
            Outcome::Detected
        });
    }

    SchemeCampaign {
        scheme: name.to_string(),
        payload,
        payload_raw,
        raw_amplification: if raw_undetected == 0 {
            0.0
        } else {
            raw_corrupted_ops as f64 / raw_undetected as f64
        },
        dictionary,
        att: att_tally,
    }
}

/// Maps a byte offset in the image to the block containing it. Empty
/// blocks share their start byte with the following block and alignment
/// padding belongs to no block's used range, so after the binary search
/// the index is advanced to the first block whose used bytes actually
/// cover the offset — otherwise a fault in a shared start byte would be
/// attributed to the empty block while its successor decodes wrong,
/// misreading containment as escape.
fn block_of(block_start: &[u64], block_bytes: &[u32], byte: u64) -> usize {
    let mut b = match block_start.binary_search(&byte) {
        Ok(i) => i,
        Err(ins) => ins.saturating_sub(1),
    };
    while b + 1 < block_start.len()
        && byte >= block_start[b] + block_bytes[b] as u64
        && byte >= block_start[b + 1]
    {
        b += 1;
    }
    b
}

/// The inclusive block range a fault's bit span touches. A burst can
/// straddle a block boundary, corrupting two adjacent blocks — both
/// belong to the faulted region, or containment would be misread as
/// escape.
fn faulted_blocks(
    image: &crate::encoded::EncodedProgram,
    fault: &FaultRecord,
    total_bits: u64,
) -> (usize, usize) {
    let span = match fault.kind {
        FaultKind::Burst { len } => len as u64,
        _ => 1,
    };
    let first_bit = fault.bit.min(total_bits - 1);
    let last_bit = (fault.bit + span - 1).min(total_bits - 1);
    (
        block_of(&image.block_start, &image.block_bytes, first_bit / 8),
        block_of(&image.block_start, &image.block_bytes, last_bit / 8),
    )
}

/// Decodes every block of the corrupted image and classifies the result.
/// With `protected`, the per-block parity from the ATT entries of the
/// faulted range is checked first, exactly as the fetch path would.
/// `corrupted_ops` receives the number of wrong operations when the
/// fault goes undetected.
fn classify_payload(
    out: &SchemeOutput,
    att: &AddressTranslationTable,
    golden: &[Vec<u64>],
    corrupt_bytes: &[u8],
    faulted: (usize, usize),
    protected: bool,
    corrupted_ops: &mut u64,
) -> Outcome {
    let mut image = out.image.clone();
    image.bytes = corrupt_bytes.to_vec();

    if protected {
        for b in faulted.0..=faulted.1 {
            let e = att.lookup(b);
            let (s, end) = image.block_range(b);
            if !e.verify_payload(&image.bytes[s as usize..end as usize]) {
                return Outcome::Detected;
            }
        }
    }

    let mut wrong_in_fault_blocks = 0u64;
    let mut wrong_elsewhere = 0u64;
    for (b, want) in golden.iter().enumerate() {
        match out.codec.decode_block(&image, b, want.len()) {
            Err(_) => return Outcome::Detected,
            Ok(words) => {
                let wrong = words.iter().zip(want).filter(|(a, b)| a != b).count() as u64;
                if (faulted.0..=faulted.1).contains(&b) {
                    wrong_in_fault_blocks += wrong;
                } else {
                    wrong_elsewhere += wrong;
                }
            }
        }
    }
    *corrupted_ops = wrong_in_fault_blocks + wrong_elsewhere;
    if wrong_elsewhere > 0 {
        Outcome::Sdc
    } else if wrong_in_fault_blocks > 0 {
        Outcome::Contained
    } else {
        Outcome::Masked
    }
}

impl CampaignReport {
    /// Renders the report as the `results/ext_fault_campaign.txt` table.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Fault-injection campaign: {} faults per scheme per target, seed {}.\n\
             Fault mix: 1/2 bit-flips, 1/4 stuck-at, 1/4 bursts (2-8 bits).\n\n",
            self.faults_per_target, self.seed
        ));
        s.push_str(
            "Payload faults, integrity checks ON (per-block parity + typed decode errors):\n\n",
        );
        s.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>5} {:>8}\n",
            "scheme", "detected", "contained", "sdc", "masked"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>9} {:>9} {:>5} {:>8}\n",
                r.scheme, r.payload.detected, r.payload.contained, r.payload.sdc, r.payload.masked
            ));
        }
        s.push_str(
            "\nPayload faults, RAW decoder only (no parity) - each encoding's intrinsic\n\
             error response; 'amp' is mean corrupted ops per undetected fault:\n\n",
        );
        s.push_str(&format!(
            "{:<10} {:>9} {:>9} {:>5} {:>8} {:>7}\n",
            "scheme", "detected", "contained", "sdc", "masked", "amp"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>9} {:>9} {:>5} {:>8} {:>7.2}\n",
                r.scheme,
                r.payload_raw.detected,
                r.payload_raw.contained,
                r.payload_raw.sdc,
                r.payload_raw.masked,
                r.raw_amplification
            ));
        }
        s.push_str(
            "\nDictionary faults (CRC32 over decode tables) and ATT entry faults\n\
             (CRC-8 self-check):\n\n",
        );
        s.push_str(&format!(
            "{:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}\n",
            "scheme", "dict det", "sdc", "masked", "att det", "sdc", "masked"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}\n",
                r.scheme,
                r.dictionary.detected,
                r.dictionary.sdc,
                r.dictionary.masked,
                r.att.detected,
                r.att.sdc,
                r.att.masked
            ));
        }
        s
    }

    /// Records every per-fault-site outcome into `registry` under
    /// `fault.<scheme>.<target>.<outcome>` counters (plus the campaign
    /// seed and size as gauges), so faultsim reports flow through the
    /// same telemetry path — and the same snapshot exporter — as the
    /// bench and fetch counters.
    pub fn record_metrics(&self, registry: &ccc_telemetry::MetricsRegistry) {
        registry.gauge("fault.seed").set(self.seed as i64);
        registry
            .gauge("fault.faults_per_target")
            .set(self.faults_per_target as i64);
        let record = |scheme: &str, target: &str, t: &Tally| {
            for (outcome, n) in [
                ("detected", t.detected),
                ("contained", t.contained),
                ("sdc", t.sdc),
                ("masked", t.masked),
            ] {
                registry
                    .counter(&format!("fault.{scheme}.{target}.{outcome}"))
                    .add(n);
            }
        };
        for r in &self.rows {
            record(&r.scheme, "payload", &r.payload);
            record(&r.scheme, "payload_raw", &r.payload_raw);
            record(&r.scheme, "dictionary", &r.dictionary);
            record(&r.scheme, "att", &r.att);
        }
    }

    /// True when no CRC-protected region leaked silent corruption — the
    /// campaign's headline guarantee.
    pub fn zero_sdc_in_protected_regions(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.dictionary.sdc == 0 && r.att.sdc == 0 && r.payload.sdc == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::sample_program;

    #[test]
    fn xorshift_is_deterministic_and_nonzero_seeded() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
    }

    #[test]
    fn apply_bit_flip_changes_exactly_one_bit() {
        let mut bytes = vec![0u8; 4];
        let fault = FaultRecord {
            kind: FaultKind::BitFlip,
            target: FaultTarget::Payload,
            bit: 10,
        };
        assert!(FaultInjector::apply(&fault, &mut bytes));
        assert_eq!(bytes, vec![0, 0b0010_0000, 0, 0]);
        assert!(FaultInjector::apply(&fault, &mut bytes));
        assert_eq!(bytes, vec![0; 4]);
    }

    #[test]
    fn stuck_at_faults_can_mask() {
        let mut bytes = vec![0u8; 2];
        let fault = FaultRecord {
            kind: FaultKind::StuckAt0,
            target: FaultTarget::Payload,
            bit: 3,
        };
        assert!(!FaultInjector::apply(&fault, &mut bytes), "already zero");
        let fault = FaultRecord {
            kind: FaultKind::StuckAt1,
            target: FaultTarget::Payload,
            bit: 3,
        };
        assert!(FaultInjector::apply(&fault, &mut bytes));
        assert_eq!(bytes[0], 0b0001_0000);
    }

    #[test]
    fn burst_clips_at_region_end() {
        let mut bytes = vec![0u8; 1];
        let fault = FaultRecord {
            kind: FaultKind::Burst { len: 8 },
            target: FaultTarget::Payload,
            bit: 6,
        };
        assert!(FaultInjector::apply(&fault, &mut bytes));
        assert_eq!(bytes[0], 0b0000_0011);
    }

    #[test]
    fn block_of_maps_bytes_to_blocks() {
        let starts = [0u64, 10, 25];
        let sizes = [10u32, 15, 5];
        assert_eq!(block_of(&starts, &sizes, 0), 0);
        assert_eq!(block_of(&starts, &sizes, 9), 0);
        assert_eq!(block_of(&starts, &sizes, 10), 1);
        assert_eq!(block_of(&starts, &sizes, 24), 1);
        assert_eq!(block_of(&starts, &sizes, 99), 2);
    }

    #[test]
    fn block_of_skips_empty_blocks_and_keeps_padding() {
        // Block 1 is empty (shares start 10 with block 2); block 0 has
        // 2 padding bytes after its 8 used ones.
        let starts = [0u64, 10, 10, 30];
        let sizes = [8u32, 0, 20, 4];
        assert_eq!(block_of(&starts, &sizes, 9), 0, "padding stays put");
        assert_eq!(block_of(&starts, &sizes, 10), 2, "empty block skipped");
        assert_eq!(block_of(&starts, &sizes, 29), 2);
        assert_eq!(block_of(&starts, &sizes, 30), 3);
    }

    #[test]
    fn campaign_is_deterministic_and_protected_regions_are_clean() {
        let p = sample_program();
        let cfg = CampaignConfig {
            seed: 42,
            faults_per_target: 25,
        };
        let a = run_campaign(&p, &cfg);
        let b = run_campaign(&p, &cfg);
        assert_eq!(a.render(), b.render(), "same seed must reproduce exactly");
        assert!(
            a.zero_sdc_in_protected_regions(),
            "CRC-protected regions leaked SDC:\n{}",
            a.render()
        );
        assert_eq!(a.rows.len(), 5);
        let names: Vec<&str> = a.rows.iter().map(|r| r.scheme.as_str()).collect();
        assert_eq!(names, ["base", "byte", "stream", "full", "tailored"]);
        // Different seeds should (overwhelmingly) differ somewhere.
        let c = run_campaign(
            &p,
            &CampaignConfig {
                seed: 7,
                faults_per_target: 25,
            },
        );
        assert_ne!(a.render(), c.render());
    }

    #[test]
    fn metrics_recording_accounts_for_every_fault() {
        let p = sample_program();
        let cfg = CampaignConfig {
            seed: 3,
            faults_per_target: 10,
        };
        let rep = run_campaign(&p, &cfg);
        let reg = ccc_telemetry::MetricsRegistry::new();
        rep.record_metrics(&reg);
        // 5 schemes × 4 targets × faults_per_target outcomes, all
        // landing in some counter.
        let total: u64 = reg.counters().iter().map(|(_, v)| v).sum();
        assert_eq!(total, 5 * 4 * cfg.faults_per_target);
        assert_eq!(reg.gauge("fault.seed").get(), 3);
        assert_eq!(
            reg.counter("fault.base.payload.detected").get()
                + reg.counter("fault.base.payload.contained").get()
                + reg.counter("fault.base.payload.sdc").get()
                + reg.counter("fault.base.payload.masked").get(),
            cfg.faults_per_target
        );
    }

    #[test]
    fn every_cell_accounts_for_all_faults() {
        let p = sample_program();
        let cfg = CampaignConfig {
            seed: 3,
            faults_per_target: 10,
        };
        let rep = run_campaign(&p, &cfg);
        for r in &rep.rows {
            for t in [r.payload, r.payload_raw, r.dictionary, r.att] {
                assert_eq!(t.total(), cfg.faults_per_target, "{}", r.scheme);
            }
        }
    }
}
