//! Cross-scheme comparison report — the data behind Figures 5, 7 and 10.

use crate::att::AddressTranslationTable;
use crate::encoded::DecoderCost;
use crate::schemes::{base::BaseScheme, standard_schemes, Scheme};
use std::fmt;
use tepic_isa::Program;

/// One row: a scheme applied to one program.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeRow {
    /// Scheme name (`base`, `byte`, `stream`, `stream_1`, `full`,
    /// `tailored`).
    pub scheme: String,
    /// Code segment bytes.
    pub code_bytes: usize,
    /// Code segment as a fraction of the base image (Figure 5).
    pub code_ratio: f64,
    /// Stored ATT bytes (0 for base, which needs no translation).
    pub att_bytes: usize,
    /// Code + ATT as a fraction of base (Figure 7).
    pub total_ratio: f64,
    /// Decoder hardware cost in modelled transistors (Figure 10).
    pub decoder_transistors: u128,
    /// Huffman dictionary entries (0 for base/tailored).
    pub dictionary_entries: usize,
}

/// A full report over one program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Workload label.
    pub name: String,
    /// Original (base) code size in bytes.
    pub original_bytes: usize,
    /// One row per scheme, base first.
    pub rows: Vec<SchemeRow>,
}

impl CompressionReport {
    /// Runs every standard scheme (plus base) over `program`.
    ///
    /// # Panics
    ///
    /// Panics if any scheme fails or produces an image that does not
    /// round-trip — a report over corrupt data would be worse than a
    /// crash.
    pub fn build(name: &str, program: &Program) -> CompressionReport {
        let original = program.code_size();
        let mut rows = Vec::new();
        let mut all: Vec<Box<dyn Scheme>> = vec![Box::new(BaseScheme)];
        all.extend(standard_schemes());
        for scheme in all {
            let out = scheme
                .compress(program)
                .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", scheme.name()));
            assert!(
                out.verify_roundtrip(program),
                "{} corrupted {name}",
                scheme.name()
            );
            let att_bytes = if matches!(out.image.decoder, DecoderCost::None) {
                0 // base runs in the original address space
            } else {
                AddressTranslationTable::build(program, &out.image).stored_bytes()
            };
            rows.push(SchemeRow {
                scheme: scheme.name(),
                code_bytes: out.image.total_bytes(),
                code_ratio: out.image.ratio(original),
                att_bytes,
                total_ratio: (out.image.total_bytes() + att_bytes) as f64 / original as f64,
                decoder_transistors: out.image.decoder.transistors(),
                dictionary_entries: out.image.decoder.dictionary_entries(),
            });
        }
        CompressionReport {
            name: name.to_string(),
            original_bytes: original,
            rows,
        }
    }

    /// The row for a scheme, if present.
    pub fn row(&self, scheme: &str) -> Option<&SchemeRow> {
        self.rows.iter().find(|r| r.scheme == scheme)
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: original code {} bytes",
            self.name, self.original_bytes
        )?;
        writeln!(
            f,
            "{:<10} {:>10} {:>8} {:>9} {:>8} {:>14} {:>8}",
            "scheme", "code B", "code %", "ATT B", "total %", "decoder T", "dict"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10} {:>7.1}% {:>9} {:>7.1}% {:>14} {:>8}",
                r.scheme,
                r.code_bytes,
                r.code_ratio * 100.0,
                r.att_bytes,
                r.total_ratio * 100.0,
                r.decoder_transistors,
                r.dictionary_entries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::testutil::sample_program;

    #[test]
    fn report_covers_all_schemes() {
        let p = sample_program();
        let rep = CompressionReport::build("sample", &p);
        for s in ["base", "byte", "stream", "stream_1", "full", "tailored"] {
            assert!(rep.row(s).is_some(), "missing row {s}");
        }
        assert!((rep.row("base").unwrap().code_ratio - 1.0).abs() < 1e-12);
        assert_eq!(rep.row("base").unwrap().att_bytes, 0);
    }

    #[test]
    fn figure5_shape_holds() {
        let p = sample_program();
        let rep = CompressionReport::build("sample", &p);
        let full = rep.row("full").unwrap().code_ratio;
        let tailored = rep.row("tailored").unwrap().code_ratio;
        let byte = rep.row("byte").unwrap().code_ratio;
        assert!(full < tailored && full < byte, "full must compress best");
        assert!(tailored < 1.0 && byte < 1.0);
    }

    #[test]
    fn figure10_shape_holds() {
        let p = sample_program();
        let rep = CompressionReport::build("sample", &p);
        let full = rep.row("full").unwrap().decoder_transistors;
        let byte = rep.row("byte").unwrap().decoder_transistors;
        let tailored = rep.row("tailored").unwrap().decoder_transistors;
        assert!(full > byte, "full decoder biggest of the Huffman family");
        assert!(tailored < byte, "tailored PLA smallest nonzero decoder");
    }

    #[test]
    fn display_renders_rows() {
        let p = sample_program();
        let rep = CompressionReport::build("sample", &p);
        let s = rep.to_string();
        assert!(s.contains("tailored"));
        assert!(s.contains("decoder T"));
    }
}
