//! CFG analyses: predecessors/successors, reverse postorder, reachability,
//! natural-loop depth estimation.
//!
//! Loop depth feeds the register allocator's spill weights and the
//! compiler's static block-frequency estimate (used for treegion formation
//! when no profile is available).

use crate::func::Function;
use crate::inst::BlockRef;

/// Precomputed CFG facts for one function.
#[derive(Debug, Clone)]
pub struct CfgInfo {
    /// Successors per block.
    pub succs: Vec<Vec<BlockRef>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockRef>>,
    /// Blocks in reverse postorder from the entry (unreachable blocks
    /// excluded).
    pub rpo: Vec<BlockRef>,
    /// Position of each block in `rpo`; `usize::MAX` when unreachable.
    pub rpo_index: Vec<usize>,
    /// Natural-loop nesting depth per block (0 = not in a loop).
    pub loop_depth: Vec<u32>,
}

impl CfgInfo {
    /// Computes all facts for `f`.
    pub fn compute(f: &Function) -> CfgInfo {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in f.block_refs() {
            for s in f.block(b).term.successors() {
                succs[b.0 as usize].push(s);
                preds[s.0 as usize].push(b);
            }
        }

        // Iterative DFS for postorder.
        let mut post: Vec<BlockRef> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut on_stack = vec![false; n];
        let mut back_edges: Vec<(BlockRef, BlockRef)> = Vec::new();
        // Stack of (block, next-successor-index).
        let mut stack: Vec<(BlockRef, usize)> = vec![(BlockRef(0), 0)];
        visited[0] = true;
        on_stack[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = &succs[b.0 as usize];
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    on_stack[s.0 as usize] = true;
                    stack.push((s, 0));
                } else if on_stack[s.0 as usize] {
                    back_edges.push((b, s));
                }
            } else {
                on_stack[b.0 as usize] = false;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockRef> = post.into_iter().rev().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }

        // Loop depth: for each back edge (latch → header), the natural
        // loop body is found by walking predecessors from the latch until
        // the header; every body block gets +1 depth.
        let mut loop_depth = vec![0u32; n];
        for (latch, header) in back_edges {
            let mut body = vec![false; n];
            body[header.0 as usize] = true;
            let mut work = vec![latch];
            while let Some(b) = work.pop() {
                if body[b.0 as usize] {
                    continue;
                }
                body[b.0 as usize] = true;
                for &p in &preds[b.0 as usize] {
                    if !body[p.0 as usize] {
                        work.push(p);
                    }
                }
            }
            for (i, &in_body) in body.iter().enumerate() {
                if in_body {
                    loop_depth[i] += 1;
                }
            }
        }

        CfgInfo {
            succs,
            preds,
            rpo,
            rpo_index,
            loop_depth,
        }
    }

    /// True when `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockRef) -> bool {
        self.rpo_index[b.0 as usize] != usize::MAX
    }

    /// Static execution-frequency estimate: `10^loop_depth`, the classic
    /// compile-time heuristic used when no profile is available.
    pub fn static_freq(&self, b: BlockRef) -> u64 {
        10u64.saturating_pow(self.loop_depth[b.0 as usize].min(9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FunctionBuilder;
    use crate::inst::{Cond, Terminator};

    /// entry → loop_head ⇄ loop_body, loop_head → exit
    fn loopy_function() -> Function {
        let mut b = FunctionBuilder::new("loopy", 1, None);
        let entry = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_term(entry, Terminator::Jump(head));
        let i = b.param(0);
        let zero = b.iconst(head, 0);
        let p = b.icmp(head, Cond::Gt, i, zero);
        b.set_term(
            head,
            Terminator::CondBr {
                pred: p,
                then_bb: body,
                else_bb: exit,
            },
        );
        b.set_term(body, Terminator::Jump(head));
        b.set_term(exit, Terminator::Halt);
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = loopy_function();
        let cfg = CfgInfo::compute(&f);
        assert_eq!(cfg.succs[0], vec![BlockRef(1)]);
        assert_eq!(cfg.succs[1], vec![BlockRef(2), BlockRef(3)]);
        let mut head_preds = cfg.preds[1].clone();
        head_preds.sort();
        assert_eq!(head_preds, vec![BlockRef(0), BlockRef(2)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = loopy_function();
        let cfg = CfgInfo::compute(&f);
        assert_eq!(cfg.rpo[0], BlockRef(0));
        assert_eq!(cfg.rpo.len(), 4);
        for b in f.block_refs() {
            assert!(cfg.is_reachable(b));
        }
    }

    #[test]
    fn loop_depth_detected() {
        let f = loopy_function();
        let cfg = CfgInfo::compute(&f);
        assert_eq!(cfg.loop_depth[0], 0, "entry not in loop");
        assert_eq!(cfg.loop_depth[1], 1, "header in loop");
        assert_eq!(cfg.loop_depth[2], 1, "body in loop");
        assert_eq!(cfg.loop_depth[3], 0, "exit not in loop");
        assert_eq!(cfg.static_freq(BlockRef(2)), 10);
    }

    #[test]
    fn unreachable_blocks_excluded_from_rpo() {
        let mut b = FunctionBuilder::new("dead", 0, None);
        let entry = b.entry();
        b.set_term(entry, Terminator::Halt);
        let orphan = b.new_block();
        b.set_term(orphan, Terminator::Halt);
        let f = b.finish();
        let cfg = CfgInfo::compute(&f);
        assert_eq!(cfg.rpo.len(), 1);
        assert!(!cfg.is_reachable(orphan));
    }

    #[test]
    fn nested_loops_accumulate_depth() {
        // entry → outer ⇄ (inner ⇄ inner_body) structure.
        let mut b = FunctionBuilder::new("nest", 1, None);
        let entry = b.entry();
        let outer = b.new_block();
        let inner = b.new_block();
        let exit = b.new_block();
        b.set_term(entry, Terminator::Jump(outer));
        let i = b.param(0);
        let z = b.iconst(outer, 0);
        let p1 = b.icmp(outer, Cond::Gt, i, z);
        b.set_term(
            outer,
            Terminator::CondBr {
                pred: p1,
                then_bb: inner,
                else_bb: exit,
            },
        );
        let z2 = b.iconst(inner, 1);
        let p2 = b.icmp(inner, Cond::Gt, i, z2);
        // inner loops on itself, eventually returns to outer.
        b.set_term(
            inner,
            Terminator::CondBr {
                pred: p2,
                then_bb: inner,
                else_bb: outer,
            },
        );
        b.set_term(exit, Terminator::Halt);
        let f = b.finish();
        let cfg = CfgInfo::compute(&f);
        assert_eq!(cfg.loop_depth[2], 2, "inner block nested twice");
        assert_eq!(cfg.loop_depth[1], 1);
    }
}
