//! Text rendering of IR modules for debugging and golden tests.

use crate::func::{Function, Module};
use crate::inst::{Inst, Terminator};

/// Renders a whole module.
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    for g in m.globals() {
        out.push_str(&format!("global {} : {} bytes\n", g.name, g.size));
    }
    for f in m.funcs() {
        out.push_str(&function_to_string(f));
    }
    out
}

/// Renders one function.
pub fn function_to_string(f: &Function) -> String {
    let mut out = format!("\nfn {}({} params)", f.name, f.num_params);
    if let Some(r) = f.ret {
        out.push_str(&format!(" -> {r:?}"));
    }
    out.push_str(" {\n");
    for (bi, block) in f.blocks.iter().enumerate() {
        out.push_str(&format!("bb{bi}:\n"));
        for inst in &block.insts {
            out.push_str(&format!("    {}\n", inst_to_string(inst)));
        }
        out.push_str(&format!("    {}\n", term_to_string(&block.term)));
    }
    out.push_str("}\n");
    out
}

fn inst_to_string(i: &Inst) -> String {
    match i {
        Inst::IConst { dst, value } => format!("{dst} = iconst {value}"),
        Inst::FConst { dst, value } => format!("{dst} = fconst {value}"),
        Inst::GlobalAddr { dst, global } => format!("{dst} = globaladdr @{}", global.0),
        Inst::IBin { op, dst, a, b } => format!("{dst} = {op:?} {a}, {b}").to_lowercase(),
        Inst::IUn { op, dst, a } => format!("{dst} = {op:?} {a}").to_lowercase(),
        Inst::FBin { op, dst, a, b } => format!("{dst} = f{op:?} {a}, {b}").to_lowercase(),
        Inst::FNeg { dst, a } => format!("{dst} = fneg {a}"),
        Inst::FAbs { dst, a } => format!("{dst} = fabs {a}"),
        Inst::FMov { dst, a } => format!("{dst} = fmov {a}"),
        Inst::ICmp { cond, dst, a, b } => format!("{dst} = icmp.{cond:?} {a}, {b}").to_lowercase(),
        Inst::FCmp { cond, dst, a, b } => format!("{dst} = fcmp.{cond:?} {a}, {b}").to_lowercase(),
        Inst::CvtIF { dst, a } => format!("{dst} = cvt.if {a}"),
        Inst::CvtFI { dst, a } => format!("{dst} = cvt.fi {a}"),
        Inst::Load {
            width,
            dst,
            base,
            offset,
        } => format!("{dst} = load.{width:?} [{base}+{offset}]").to_lowercase(),
        Inst::Store {
            width,
            base,
            offset,
            value,
        } => format!("store.{width:?} [{base}+{offset}], {value}").to_lowercase(),
        Inst::FLoad { dst, base, offset } => format!("{dst} = fload [{base}+{offset}]"),
        Inst::FStore {
            base,
            offset,
            value,
        } => format!("fstore [{base}+{offset}], {value}"),
        Inst::Call { func, args, ret } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            match ret {
                Some(r) => format!("{r} = call @{}({})", func.0, args.join(", ")),
                None => format!("call @{}({})", func.0, args.join(", ")),
            }
        }
        Inst::Sys { code, arg } => format!("sys.{code:?} {arg}"),
    }
}

fn term_to_string(t: &Terminator) -> String {
    match t {
        Terminator::Jump(b) => format!("jump {b}"),
        Terminator::CondBr {
            pred,
            then_bb,
            else_bb,
        } => {
            format!("condbr {pred}, {then_bb}, {else_bb}")
        }
        Terminator::Ret(Some(v)) => format!("ret {v}"),
        Terminator::Ret(None) => "ret".to_string(),
        Terminator::Halt => "halt".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use crate::func::{FunctionBuilder, Module};
    use crate::inst::{IBinOp, RegClass, Terminator};

    #[test]
    fn renders_module() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let entry = b.entry();
        let one = b.iconst(entry, 1);
        let r = b.ibin(entry, IBinOp::Add, b.param(0), one);
        b.set_term(entry, Terminator::Ret(Some(r)));
        m.add_func(b.finish());
        let s = m.to_string();
        assert!(s.contains("fn f(1 params) -> Int"));
        assert!(s.contains("v1 = iconst 1"));
        assert!(s.contains("v2 = add v0, v1"));
        assert!(s.contains("ret v2"));
    }
}
