//! Module verification: register-class consistency, operand range checks,
//! terminator target validity and call signature agreement.

use crate::func::{FuncId, Function, Module};
use crate::inst::{BlockRef, Inst, RegClass, Terminator, VReg};
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A vreg index exceeds the function's register table.
    UnknownVReg { func: String, vreg: VReg },
    /// An operand has the wrong register class.
    ClassMismatch {
        func: String,
        vreg: VReg,
        expected: RegClass,
        found: RegClass,
    },
    /// A terminator names a nonexistent block.
    BadBlockRef { func: String, block: BlockRef },
    /// A call names a nonexistent function.
    BadCallee { func: String, callee: FuncId },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        func: String,
        callee: String,
        expected: u32,
        found: usize,
    },
    /// A call expects a return value from a void function (or vice versa).
    ReturnMismatch { func: String, callee: String },
    /// A `ret` disagrees with the function's declared return class.
    BadReturn { func: String },
    /// A global reference is out of range.
    BadGlobal { func: String },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownVReg { func, vreg } => {
                write!(f, "{func}: unknown vreg {vreg}")
            }
            VerifyError::ClassMismatch {
                func,
                vreg,
                expected,
                found,
            } => {
                write!(f, "{func}: {vreg} is {found:?}, expected {expected:?}")
            }
            VerifyError::BadBlockRef { func, block } => {
                write!(f, "{func}: bad block reference {block}")
            }
            VerifyError::BadCallee { func, callee } => {
                write!(f, "{func}: call to unknown function #{}", callee.0)
            }
            VerifyError::ArityMismatch {
                func,
                callee,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{func}: call to {callee} passes {found} args, expected {expected}"
                )
            }
            VerifyError::ReturnMismatch { func, callee } => {
                write!(f, "{func}: call to {callee} disagrees about return value")
            }
            VerifyError::BadReturn { func } => {
                write!(f, "{func}: return disagrees with declared return class")
            }
            VerifyError::BadGlobal { func } => write!(f, "{func}: bad global reference"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies every function in the module.
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    for f in m.funcs() {
        verify_function(m, f)?;
    }
    Ok(())
}

fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let check_vreg = |v: VReg| -> Result<RegClass, VerifyError> {
        f.vreg_classes
            .get(v.0 as usize)
            .copied()
            .ok_or(VerifyError::UnknownVReg {
                func: f.name.clone(),
                vreg: v,
            })
    };
    let expect = |v: VReg, expected: RegClass| -> Result<(), VerifyError> {
        let found = check_vreg(v)?;
        if found != expected {
            return Err(VerifyError::ClassMismatch {
                func: f.name.clone(),
                vreg: v,
                expected,
                found,
            });
        }
        Ok(())
    };
    let check_block = |b: BlockRef| -> Result<(), VerifyError> {
        if (b.0 as usize) < f.blocks.len() {
            Ok(())
        } else {
            Err(VerifyError::BadBlockRef {
                func: f.name.clone(),
                block: b,
            })
        }
    };

    use RegClass::{Float, Int, Pred};
    for block in &f.blocks {
        for inst in &block.insts {
            match inst {
                Inst::IConst { dst, .. } | Inst::GlobalAddr { dst, .. } => expect(*dst, Int)?,
                Inst::FConst { dst, .. } => expect(*dst, Float)?,
                Inst::IBin { dst, a, b, .. } => {
                    expect(*dst, Int)?;
                    expect(*a, Int)?;
                    expect(*b, Int)?;
                }
                Inst::IUn { dst, a, .. } => {
                    expect(*dst, Int)?;
                    expect(*a, Int)?;
                }
                Inst::FBin { dst, a, b, .. } => {
                    expect(*dst, Float)?;
                    expect(*a, Float)?;
                    expect(*b, Float)?;
                }
                Inst::FNeg { dst, a } | Inst::FAbs { dst, a } | Inst::FMov { dst, a } => {
                    expect(*dst, Float)?;
                    expect(*a, Float)?;
                }
                Inst::ICmp { dst, a, b, .. } => {
                    expect(*dst, Pred)?;
                    expect(*a, Int)?;
                    expect(*b, Int)?;
                }
                Inst::FCmp { dst, a, b, .. } => {
                    expect(*dst, Pred)?;
                    expect(*a, Float)?;
                    expect(*b, Float)?;
                }
                Inst::CvtIF { dst, a } => {
                    expect(*dst, Float)?;
                    expect(*a, Int)?;
                }
                Inst::CvtFI { dst, a } => {
                    expect(*dst, Int)?;
                    expect(*a, Float)?;
                }
                Inst::Load { dst, base, .. } => {
                    expect(*dst, Int)?;
                    expect(*base, Int)?;
                }
                Inst::Store { base, value, .. } => {
                    expect(*base, Int)?;
                    expect(*value, Int)?;
                }
                Inst::FLoad { dst, base, .. } => {
                    expect(*dst, Float)?;
                    expect(*base, Int)?;
                }
                Inst::FStore { base, value, .. } => {
                    expect(*base, Int)?;
                    expect(*value, Float)?;
                }
                Inst::Call {
                    func: callee,
                    args,
                    ret,
                } => {
                    let cf = m
                        .funcs()
                        .get(callee.0 as usize)
                        .ok_or(VerifyError::BadCallee {
                            func: f.name.clone(),
                            callee: *callee,
                        })?;
                    if args.len() != cf.num_params as usize {
                        return Err(VerifyError::ArityMismatch {
                            func: f.name.clone(),
                            callee: cf.name.clone(),
                            expected: cf.num_params,
                            found: args.len(),
                        });
                    }
                    for (i, a) in args.iter().enumerate() {
                        expect(*a, cf.vreg_classes[i])?;
                    }
                    match (ret, cf.ret) {
                        (Some(r), Some(c)) => expect(*r, c)?,
                        (None, _) => {}
                        (Some(_), None) => {
                            return Err(VerifyError::ReturnMismatch {
                                func: f.name.clone(),
                                callee: cf.name.clone(),
                            })
                        }
                    }
                }
                Inst::Sys { arg, .. } => expect(*arg, Int)?,
            }
        }
        match &block.term {
            Terminator::Jump(t) => check_block(*t)?,
            Terminator::CondBr {
                pred,
                then_bb,
                else_bb,
            } => {
                expect(*pred, Pred)?;
                check_block(*then_bb)?;
                check_block(*else_bb)?;
            }
            Terminator::Ret(v) => match (v, f.ret) {
                (Some(v), Some(c)) => expect(*v, c)?,
                (None, None) => {}
                _ => {
                    return Err(VerifyError::BadReturn {
                        func: f.name.clone(),
                    })
                }
            },
            Terminator::Halt => {}
        }
    }
    // Global references in range.
    for block in &f.blocks {
        for inst in &block.insts {
            if let Inst::GlobalAddr { global, .. } = inst {
                if (global.0 as usize) >= m.globals().len() {
                    return Err(VerifyError::BadGlobal {
                        func: f.name.clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{FunctionBuilder, Global, Module};
    use crate::inst::{Cond, IBinOp};

    #[test]
    fn catches_class_mismatch() {
        let mut b = FunctionBuilder::new("bad", 0, None);
        let entry = b.entry();
        let i = b.iconst(entry, 1);
        let fl = b.fconst(entry, 1.0);
        // Hand-build a mixed-class add.
        b.push(
            entry,
            Inst::IBin {
                op: IBinOp::Add,
                dst: i,
                a: i,
                b: fl,
            },
        );
        b.set_term(entry, Terminator::Halt);
        let mut m = Module::new();
        m.add_func(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::ClassMismatch { .. })));
    }

    #[test]
    fn catches_bad_block_ref() {
        let mut b = FunctionBuilder::new("bad", 0, None);
        let entry = b.entry();
        b.set_term(entry, Terminator::Jump(BlockRef(9)));
        let mut m = Module::new();
        m.add_func(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::BadBlockRef { .. })));
    }

    #[test]
    fn catches_arity_mismatch() {
        let mut m = Module::new();
        let callee = m.add_func(FunctionBuilder::new("callee", 2, None).finish());
        let mut b = FunctionBuilder::new("caller", 0, None);
        let entry = b.entry();
        let x = b.iconst(entry, 1);
        b.push(
            entry,
            Inst::Call {
                func: callee,
                args: vec![x],
                ret: None,
            },
        );
        b.set_term(entry, Terminator::Halt);
        m.add_func(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::ArityMismatch { .. })));
    }

    #[test]
    fn catches_return_mismatch() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let entry = b.entry();
        b.set_term(entry, Terminator::Ret(None));
        let mut m = Module::new();
        m.add_func(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::BadReturn { .. })));
    }

    #[test]
    fn catches_bad_global() {
        let mut b = FunctionBuilder::new("g", 0, None);
        let entry = b.entry();
        let _ = b.global_addr(entry, crate::func::GlobalId(5));
        b.set_term(entry, Terminator::Halt);
        let mut m = Module::new();
        m.add_func(b.finish());
        assert!(matches!(m.verify(), Err(VerifyError::BadGlobal { .. })));
    }

    #[test]
    fn accepts_well_formed_module() {
        let mut m = Module::new();
        let g = m.add_global(Global {
            name: "buf".into(),
            size: 64,
            init: vec![],
        });
        let mut b = FunctionBuilder::new("ok", 1, Some(RegClass::Int));
        let entry = b.entry();
        let base = b.global_addr(entry, g);
        let x = b.load(entry, crate::inst::Width::Word, base, 4);
        let p = b.icmp(entry, Cond::Ne, x, b.param(0));
        let t = b.new_block();
        let e = b.new_block();
        b.set_term(
            entry,
            Terminator::CondBr {
                pred: p,
                then_bb: t,
                else_bb: e,
            },
        );
        b.set_term(t, Terminator::Ret(Some(x)));
        let z = b.iconst(e, 0);
        b.set_term(e, Terminator::Ret(Some(z)));
        m.add_func(b.finish());
        m.verify().expect("module verifies");
    }
}
