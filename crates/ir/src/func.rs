//! Functions, modules, globals and the function builder.

use crate::inst::{BlockRef, FBinOp, IBinOp, IUnOp, Inst, RegClass, Terminator, VReg, Width};
use std::fmt;

/// Reference to a function within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Reference to a global within a [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// A statically allocated data object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name for listings.
    pub name: String,
    /// Size in bytes.
    pub size: u32,
    /// Initial contents; zero-filled up to `size` when shorter.
    pub init: Vec<u8>,
}

/// One basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// The block's single terminator.
    pub term: Terminator,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Name (unique within the module).
    pub name: String,
    /// Number of parameters; parameters are `VReg(0)..VReg(nparams)` and
    /// all of class `Int` or `Float` per `vreg_classes`.
    pub num_params: u32,
    /// Return class, if the function returns a value.
    pub ret: Option<RegClass>,
    /// Basic blocks; `BlockRef(0)` is the entry.
    pub blocks: Vec<Block>,
    /// Class of every virtual register.
    pub vreg_classes: Vec<RegClass>,
}

impl Function {
    /// The entry block.
    pub fn entry(&self) -> BlockRef {
        BlockRef(0)
    }

    /// Total virtual registers.
    pub fn num_vregs(&self) -> usize {
        self.vreg_classes.len()
    }

    /// Class of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this function's builder.
    pub fn class_of(&self, v: VReg) -> RegClass {
        self.vreg_classes[v.0 as usize]
    }

    /// Borrowed block.
    pub fn block(&self, b: BlockRef) -> &Block {
        &self.blocks[b.0 as usize]
    }

    /// Mutable block.
    pub fn block_mut(&mut self, b: BlockRef) -> &mut Block {
        &mut self.blocks[b.0 as usize]
    }

    /// Iterates over block refs in index order.
    pub fn block_refs(&self) -> impl Iterator<Item = BlockRef> {
        (0..self.blocks.len() as u32).map(BlockRef)
    }

    /// Allocates a fresh virtual register of the given class (used by
    /// optimization passes that need temporaries).
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        let v = VReg(self.vreg_classes.len() as u32);
        self.vreg_classes.push(class);
        v
    }
}

/// A whole-program module: functions plus global data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    funcs: Vec<Function>,
    globals: Vec<Global>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_func(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Adds a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// All functions.
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// Mutable access to all functions.
    pub fn funcs_mut(&mut self) -> &mut [Function] {
        &mut self.funcs
    }

    /// All globals.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// The function with the given id.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Finds a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// Verifies every function; see [`crate::verify`].
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::VerifyError`] found.
    pub fn verify(&self) -> Result<(), crate::VerifyError> {
        crate::verify::verify_module(self)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::pretty::module_to_string(self))
    }
}

/// Incremental function construction.
///
/// Parameters become `VReg(0)..VReg(n)`; blocks are created with
/// [`FunctionBuilder::new_block`] and filled through the typed emit
/// helpers, each returning the destination vreg.
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
}

impl FunctionBuilder {
    /// Starts a function with `num_params` integer parameters (use
    /// [`FunctionBuilder::new_float_params`] afterwards to retype) and an
    /// optional return class. The entry block exists immediately.
    pub fn new(name: &str, num_params: u32, ret: Option<RegClass>) -> FunctionBuilder {
        FunctionBuilder {
            f: Function {
                name: name.to_string(),
                num_params,
                ret,
                blocks: vec![Block {
                    insts: vec![],
                    term: Terminator::Halt,
                }],
                vreg_classes: vec![RegClass::Int; num_params as usize],
            },
        }
    }

    /// Retypes parameter `i` as a float.
    pub fn new_float_params(&mut self, indices: &[u32]) {
        for &i in indices {
            self.f.vreg_classes[i as usize] = RegClass::Float;
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockRef {
        BlockRef(0)
    }

    /// The `i`-th parameter register.
    pub fn param(&self, i: u32) -> VReg {
        assert!(i < self.f.num_params);
        VReg(i)
    }

    /// Creates an empty block (terminator defaults to `Halt`; set it).
    pub fn new_block(&mut self) -> BlockRef {
        let b = BlockRef(self.f.blocks.len() as u32);
        self.f.blocks.push(Block {
            insts: vec![],
            term: Terminator::Halt,
        });
        b
    }

    /// Allocates a fresh vreg.
    pub fn new_vreg(&mut self, class: RegClass) -> VReg {
        self.f.new_vreg(class)
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, b: BlockRef, inst: Inst) {
        self.f.blocks[b.0 as usize].insts.push(inst);
    }

    /// Sets a block's terminator.
    pub fn set_term(&mut self, b: BlockRef, term: Terminator) {
        self.f.blocks[b.0 as usize].term = term;
    }

    /// Emits an integer constant.
    pub fn iconst(&mut self, b: BlockRef, value: i64) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(b, Inst::IConst { dst, value });
        dst
    }

    /// Emits a float constant.
    pub fn fconst(&mut self, b: BlockRef, value: f32) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.push(b, Inst::FConst { dst, value });
        dst
    }

    /// Emits a global-address materialization.
    pub fn global_addr(&mut self, b: BlockRef, global: GlobalId) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(b, Inst::GlobalAddr { dst, global });
        dst
    }

    /// Emits an integer binary op.
    pub fn ibin(&mut self, b: BlockRef, op: IBinOp, a: VReg, c: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(b, Inst::IBin { op, dst, a, b: c });
        dst
    }

    /// Emits an integer unary op.
    pub fn iun(&mut self, b: BlockRef, op: IUnOp, a: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(b, Inst::IUn { op, dst, a });
        dst
    }

    /// Emits a float binary op.
    pub fn fbin(&mut self, b: BlockRef, op: FBinOp, a: VReg, c: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.push(b, Inst::FBin { op, dst, a, b: c });
        dst
    }

    /// Emits an integer compare producing a predicate.
    pub fn icmp(&mut self, b: BlockRef, cond: crate::inst::Cond, a: VReg, c: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Pred);
        self.push(b, Inst::ICmp { cond, dst, a, b: c });
        dst
    }

    /// Emits a float compare producing a predicate.
    pub fn fcmp(&mut self, b: BlockRef, cond: crate::inst::Cond, a: VReg, c: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Pred);
        self.push(b, Inst::FCmp { cond, dst, a, b: c });
        dst
    }

    /// Emits a load.
    pub fn load(&mut self, b: BlockRef, width: Width, base: VReg, offset: i32) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(
            b,
            Inst::Load {
                width,
                dst,
                base,
                offset,
            },
        );
        dst
    }

    /// Emits a store.
    pub fn store(&mut self, b: BlockRef, width: Width, base: VReg, offset: i32, value: VReg) {
        self.push(
            b,
            Inst::Store {
                width,
                base,
                offset,
                value,
            },
        );
    }

    /// Emits a float load.
    pub fn fload(&mut self, b: BlockRef, base: VReg, offset: i32) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.push(b, Inst::FLoad { dst, base, offset });
        dst
    }

    /// Emits a float store.
    pub fn fstore(&mut self, b: BlockRef, base: VReg, offset: i32, value: VReg) {
        self.push(
            b,
            Inst::FStore {
                base,
                offset,
                value,
            },
        );
    }

    /// Emits a call.
    pub fn call(
        &mut self,
        b: BlockRef,
        func: FuncId,
        args: Vec<VReg>,
        ret_class: Option<RegClass>,
    ) -> Option<VReg> {
        let ret = ret_class.map(|c| self.new_vreg(c));
        self.push(b, Inst::Call { func, args, ret });
        ret
    }

    /// Emits int→float conversion.
    pub fn cvt_if(&mut self, b: BlockRef, a: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Float);
        self.push(b, Inst::CvtIF { dst, a });
        dst
    }

    /// Emits float→int conversion.
    pub fn cvt_fi(&mut self, b: BlockRef, a: VReg) -> VReg {
        let dst = self.new_vreg(RegClass::Int);
        self.push(b, Inst::CvtFI { dst, a });
        dst
    }

    /// Finishes construction.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Cond;

    #[test]
    fn builder_produces_valid_function() {
        let mut b = FunctionBuilder::new("max3", 2, Some(RegClass::Int));
        let entry = b.entry();
        let (x, y) = (b.param(0), b.param(1));
        let p = b.icmp(entry, Cond::Gt, x, y);
        let bb_then = b.new_block();
        let bb_else = b.new_block();
        b.set_term(
            entry,
            Terminator::CondBr {
                pred: p,
                then_bb: bb_then,
                else_bb: bb_else,
            },
        );
        b.set_term(bb_then, Terminator::Ret(Some(x)));
        b.set_term(bb_else, Terminator::Ret(Some(y)));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.class_of(p), RegClass::Pred);
        let mut m = Module::new();
        m.add_func(f);
        m.verify().expect("valid module");
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new();
        let f = FunctionBuilder::new("foo", 0, None).finish();
        let id = m.add_func(f);
        assert_eq!(m.func_by_name("foo").map(|(i, _)| i), Some(id));
        assert!(m.func_by_name("bar").is_none());
    }

    #[test]
    fn globals_registered_in_order() {
        let mut m = Module::new();
        let a = m.add_global(Global {
            name: "a".into(),
            size: 16,
            init: vec![],
        });
        let b = m.add_global(Global {
            name: "b".into(),
            size: 4,
            init: vec![1, 2, 3, 4],
        });
        assert_eq!(a, GlobalId(0));
        assert_eq!(b, GlobalId(1));
        assert_eq!(m.globals().len(), 2);
    }

    #[test]
    fn float_param_retype() {
        let mut b = FunctionBuilder::new("fp", 2, Some(RegClass::Float));
        b.new_float_params(&[1]);
        let f = b.finish();
        assert_eq!(f.class_of(VReg(0)), RegClass::Int);
        assert_eq!(f.class_of(VReg(1)), RegClass::Float);
    }
}
