//! IR instructions, operands and terminators.

use std::fmt;

/// Register class — mirrors TEPIC's three register files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// 32-bit integer / pointer (maps to GPRs).
    Int,
    /// 32-bit float (maps to FPRs).
    Float,
    /// 1-bit predicate (maps to PRs).
    Pred,
}

/// A virtual register. The owning [`crate::Function`] records its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A basic-block reference within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockRef(pub u32);

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Integer binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Sra,
    Min,
    Max,
}

/// Integer unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IUnOp {
    /// Copy.
    Mov,
    /// Bitwise complement.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Float binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// Comparison conditions (signed unless suffixed `U`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LtU,
    GeU,
}

impl Cond {
    /// Logical negation.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::LtU => Cond::GeU,
            Cond::GeU => Cond::LtU,
        }
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    Byte,
    Half,
    Word,
}

/// Environment call codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysCode {
    PrintInt,
    PrintChar,
}

/// A non-terminator instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `dst = imm` (integer/pointer constant).
    IConst { dst: VReg, value: i64 },
    /// `dst = imm` (float constant).
    FConst { dst: VReg, value: f32 },
    /// `dst = addressof(global)`.
    GlobalAddr {
        dst: VReg,
        global: crate::func::GlobalId,
    },
    /// `dst = a <op> b`.
    IBin {
        op: IBinOp,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// `dst = <op> a`.
    IUn { op: IUnOp, dst: VReg, a: VReg },
    /// `dst = a <op> b` (float).
    FBin {
        op: FBinOp,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// `dst = -a` (float).
    FNeg { dst: VReg, a: VReg },
    /// `dst = |a|` (float).
    FAbs { dst: VReg, a: VReg },
    /// `dst = a` (float copy).
    FMov { dst: VReg, a: VReg },
    /// `dst(pred) = a <cond> b` (integer compare).
    ICmp {
        cond: Cond,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// `dst(pred) = a <cond> b` (float compare).
    FCmp {
        cond: Cond,
        dst: VReg,
        a: VReg,
        b: VReg,
    },
    /// `dst = (f32) a`.
    CvtIF { dst: VReg, a: VReg },
    /// `dst = (i32) a` (truncating).
    CvtFI { dst: VReg, a: VReg },
    /// `dst = mem[base + offset]`, extended per `width`.
    Load {
        width: Width,
        dst: VReg,
        base: VReg,
        offset: i32,
    },
    /// `mem[base + offset] = value` per `width`.
    Store {
        width: Width,
        base: VReg,
        offset: i32,
        value: VReg,
    },
    /// `dst = fmem[base + offset]` (f32 load).
    FLoad { dst: VReg, base: VReg, offset: i32 },
    /// `fmem[base + offset] = value` (f32 store).
    FStore {
        base: VReg,
        offset: i32,
        value: VReg,
    },
    /// Direct call; `ret` receives the return value if the callee has one.
    Call {
        func: crate::func::FuncId,
        args: Vec<VReg>,
        ret: Option<VReg>,
    },
    /// Environment call.
    Sys { code: SysCode, arg: VReg },
}

impl Inst {
    /// The destination register, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            Inst::IConst { dst, .. }
            | Inst::FConst { dst, .. }
            | Inst::GlobalAddr { dst, .. }
            | Inst::IBin { dst, .. }
            | Inst::IUn { dst, .. }
            | Inst::FBin { dst, .. }
            | Inst::FNeg { dst, .. }
            | Inst::FAbs { dst, .. }
            | Inst::FMov { dst, .. }
            | Inst::ICmp { dst, .. }
            | Inst::FCmp { dst, .. }
            | Inst::CvtIF { dst, .. }
            | Inst::CvtFI { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::FLoad { dst, .. } => Some(*dst),
            Inst::Call { ret, .. } => *ret,
            Inst::Store { .. } | Inst::FStore { .. } | Inst::Sys { .. } => None,
        }
    }

    /// Appends all source registers to `out`.
    pub fn uses_into(&self, out: &mut Vec<VReg>) {
        match self {
            Inst::IConst { .. } | Inst::FConst { .. } | Inst::GlobalAddr { .. } => {}
            Inst::IBin { a, b, .. }
            | Inst::FBin { a, b, .. }
            | Inst::ICmp { a, b, .. }
            | Inst::FCmp { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Inst::IUn { a, .. }
            | Inst::FNeg { a, .. }
            | Inst::FAbs { a, .. }
            | Inst::FMov { a, .. }
            | Inst::CvtIF { a, .. }
            | Inst::CvtFI { a, .. } => out.push(*a),
            Inst::Load { base, .. } | Inst::FLoad { base, .. } => out.push(*base),
            Inst::Store { base, value, .. } | Inst::FStore { base, value, .. } => {
                out.push(*base);
                out.push(*value);
            }
            Inst::Call { args, .. } => out.extend(args.iter().copied()),
            Inst::Sys { arg, .. } => out.push(*arg),
        }
    }

    /// All source registers.
    pub fn uses(&self) -> Vec<VReg> {
        let mut v = Vec::new();
        self.uses_into(&mut v);
        v
    }

    /// True for instructions that touch memory or have side effects and
    /// must not be removed or reordered across each other.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::FStore { .. } | Inst::Call { .. } | Inst::Sys { .. }
        )
    }

    /// True for loads (reorderable among themselves, not across stores).
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockRef),
    /// Branch to `then_bb` when predicate `pred` is true, else `else_bb`.
    CondBr {
        pred: VReg,
        then_bb: BlockRef,
        else_bb: BlockRef,
    },
    /// Return (with optional value).
    Ret(Option<VReg>),
    /// Program exit (only meaningful in `main`).
    Halt,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockRef> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) | Terminator::Halt => vec![],
        }
    }

    /// Registers read by the terminator.
    pub fn uses(&self) -> Vec<VReg> {
        match self {
            Terminator::CondBr { pred, .. } => vec![*pred],
            Terminator::Ret(Some(v)) => vec![*v],
            _ => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::IBin {
            op: IBinOp::Add,
            dst: VReg(2),
            a: VReg(0),
            b: VReg(1),
        };
        assert_eq!(i.def(), Some(VReg(2)));
        assert_eq!(i.uses(), vec![VReg(0), VReg(1)]);
        let s = Inst::Store {
            width: Width::Word,
            base: VReg(3),
            offset: 4,
            value: VReg(5),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![VReg(3), VReg(5)]);
        assert!(s.has_side_effects());
    }

    #[test]
    fn call_defs_and_uses() {
        let c = Inst::Call {
            func: crate::func::FuncId(0),
            args: vec![VReg(1), VReg(2)],
            ret: Some(VReg(3)),
        };
        assert_eq!(c.def(), Some(VReg(3)));
        assert_eq!(c.uses(), vec![VReg(1), VReg(2)]);
        assert!(c.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(
            Terminator::Jump(BlockRef(3)).successors(),
            vec![BlockRef(3)]
        );
        let cb = Terminator::CondBr {
            pred: VReg(0),
            then_bb: BlockRef(1),
            else_bb: BlockRef(2),
        };
        assert_eq!(cb.successors(), vec![BlockRef(1), BlockRef(2)]);
        assert_eq!(cb.uses(), vec![VReg(0)]);
        assert!(Terminator::Halt.successors().is_empty());
        assert_eq!(Terminator::Ret(Some(VReg(9))).uses(), vec![VReg(9)]);
    }

    #[test]
    fn cond_negate_involution() {
        for c in [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Gt,
            Cond::Ge,
            Cond::LtU,
            Cond::GeU,
        ] {
            assert_eq!(c.negate().negate(), c);
        }
    }
}
