//! # tinker-ir — the LEGO compiler's intermediate representation
//!
//! A small, conventional three-address IR with virtual registers, basic
//! blocks and an explicit CFG. The Tink frontend (in the `lego` crate)
//! lowers its AST to this IR; the optimizer and the TEPIC backend consume
//! it.
//!
//! Design points:
//!
//! * virtual registers are typed by [`RegClass`] (integer/pointer, float,
//!   predicate) mirroring TEPIC's three register files;
//! * memory operations carry a byte offset so address arithmetic can be
//!   folded; the backend materializes what TEPIC's offset-less loads need;
//! * every block ends in exactly one [`Terminator`]; critical edges are
//!   allowed (the backend splits nothing — conditional branches lower to a
//!   compare + predicated branch + fall-through).
//!
//! # Example
//!
//! ```
//! use tinker_ir::{Module, FunctionBuilder, RegClass, IBinOp, Terminator, Width};
//!
//! let mut m = Module::new();
//! let mut b = FunctionBuilder::new("add1", 1, Some(RegClass::Int));
//! let entry = b.entry();
//! let x = b.param(0);
//! let one = b.iconst(entry, 1);
//! let sum = b.ibin(entry, IBinOp::Add, x, one);
//! b.set_term(entry, Terminator::Ret(Some(sum)));
//! let f = b.finish();
//! m.add_func(f);
//! assert!(m.verify().is_ok());
//! ```

pub mod cfg;
pub mod func;
pub mod inst;
pub mod pretty;
pub mod verify;

pub use cfg::CfgInfo;
pub use func::{FuncId, Function, FunctionBuilder, Global, GlobalId, Module};
pub use inst::{
    BlockRef, Cond, FBinOp, IBinOp, IUnOp, Inst, RegClass, SysCode, Terminator, VReg, Width,
};
pub use verify::VerifyError;
