//! Bit-level field layouts of the seven TEPIC operation formats
//! (paper Appendix, Table 2).
//!
//! The layouts drive three consumers:
//!
//! * the Table 2 printer (`render_table2`) used by the experiment harness;
//! * the *stream-based* Huffman alphabets, which split each 40-bit word at
//!   fixed field boundaries (paper Figure 3);
//! * the *tailored* encoder, which shrinks each field class to the minimum
//!   width the program needs (paper §2.3).

use crate::op::{OpKind, Operation};
use std::fmt;

/// The seven operation formats of TEPIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpFormat {
    /// Integer ALU operation.
    IntAlu,
    /// Integer (or FP) compare-to-predicate operation.
    IntCmp,
    /// Integer load-immediate operation.
    LoadImm,
    /// Floating-point operation.
    Float,
    /// Load operation.
    Load,
    /// Store operation.
    Store,
    /// Branch operation.
    Branch,
}

impl OpFormat {
    /// All formats in Table 2 order.
    pub const ALL: [OpFormat; 7] = [
        OpFormat::IntAlu,
        OpFormat::IntCmp,
        OpFormat::LoadImm,
        OpFormat::Float,
        OpFormat::Load,
        OpFormat::Store,
        OpFormat::Branch,
    ];

    /// The format used to encode `op`.
    pub fn of(op: &Operation) -> OpFormat {
        match op.kind {
            OpKind::IntAlu { .. } | OpKind::CvtIf { .. } | OpKind::CvtFi { .. } => OpFormat::IntAlu,
            OpKind::IntCmp { .. } | OpKind::FloatCmp { .. } => OpFormat::IntCmp,
            OpKind::LoadImm { .. } => OpFormat::LoadImm,
            OpKind::Float { .. } => OpFormat::Float,
            OpKind::Load { .. } | OpKind::FLoad { .. } => OpFormat::Load,
            OpKind::Store { .. } | OpKind::FStore { .. } => OpFormat::Store,
            OpKind::Branch { .. }
            | OpKind::Call { .. }
            | OpKind::Ret { .. }
            | OpKind::Halt
            | OpKind::Sys { .. } => OpFormat::Branch,
        }
    }

    /// Human-readable name matching the paper's Table 2 captions.
    pub fn name(self) -> &'static str {
        match self {
            OpFormat::IntAlu => "Integer ALU Operation",
            OpFormat::IntCmp => "Integer Compare-to-Predicate Operation",
            OpFormat::LoadImm => "Integer Load Immediate Operation",
            OpFormat::Float => "Floating Point Operation",
            OpFormat::Load => "Load Operation",
            OpFormat::Store => "Store Operation",
            OpFormat::Branch => "Branch Operation",
        }
    }

    /// The ordered field layout of this format. Offsets are LSB-first and
    /// the widths always sum to 40.
    pub fn fields(self) -> &'static [FieldSpec] {
        match self {
            OpFormat::IntAlu => &INT_ALU_FIELDS,
            OpFormat::IntCmp => &INT_CMP_FIELDS,
            OpFormat::LoadImm => &LOAD_IMM_FIELDS,
            OpFormat::Float => &FLOAT_FIELDS,
            OpFormat::Load => &LOAD_FIELDS,
            OpFormat::Store => &STORE_FIELDS,
            OpFormat::Branch => &BRANCH_FIELDS,
        }
    }
}

impl fmt::Display for OpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Semantic class of a field; the tailored encoder keys its width
/// minimization off this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldClass {
    /// Tail bit (zero-NOP MOP delimiter) — never shrinkable.
    Tail,
    /// Speculative bit.
    Spec,
    /// 2-bit operation type.
    OpType,
    /// 5-bit opcode — shrinkable to ⌈log₂(#opcodes used)⌉.
    Opcode,
    /// GPR source/destination index — shrinkable to ⌈log₂(#GPRs used)⌉.
    GprIdx,
    /// FPR index.
    FprIdx,
    /// Predicate register index.
    PrIdx,
    /// Comparison condition (`D1`).
    Cond,
    /// Memory access width (`BHWX`).
    MemWidth,
    /// Load latency hint.
    Lat,
    /// Immediate value — shrinkable to the widest immediate used.
    Imm,
    /// Branch target (block index) — shrinkable to ⌈log₂(#blocks)⌉.
    Target,
    /// Counter / link / syscall-id field of the branch format.
    Counter,
    /// L1 / S-D / t-s-s-L-U miscellaneous single-purpose bits.
    Misc,
    /// Reserved — dropped entirely by the tailored encoder.
    Reserved,
}

/// One field of an operation format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldSpec {
    /// Field name as printed in Table 2.
    pub name: &'static str,
    /// Bit offset (LSB-first) within the 40-bit word.
    pub offset: u32,
    /// Width in bits.
    pub width: u32,
    /// Semantic class.
    pub class: FieldClass,
}

const fn fs(name: &'static str, offset: u32, width: u32, class: FieldClass) -> FieldSpec {
    FieldSpec {
        name,
        offset,
        width,
        class,
    }
}

use FieldClass as C;

static INT_ALU_FIELDS: [FieldSpec; 10] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::GprIdx),
    fs("Src2", 14, 5, C::GprIdx),
    fs("BHWX", 19, 2, C::MemWidth),
    fs("Reserved", 21, 8, C::Reserved),
    fs("Dest", 29, 5, C::GprIdx),
    // L1 and PREDICATE are merged into the trailing guard fields below.
    fs("L1+PREDICATE", 34, 6, C::PrIdx),
];

static INT_CMP_FIELDS: [FieldSpec; 11] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::GprIdx),
    fs("Src2", 14, 5, C::GprIdx),
    fs("BHWX", 19, 2, C::MemWidth),
    fs("D1", 21, 3, C::Cond),
    fs("Reserved", 24, 5, C::Reserved),
    fs("Dest", 29, 5, C::PrIdx),
    fs("L1+PREDICATE", 34, 6, C::PrIdx),
];

static LOAD_IMM_FIELDS: [FieldSpec; 7] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1(imm20)", 9, 20, C::Imm),
    fs("Dest", 29, 5, C::GprIdx),
    fs("L1+PREDICATE", 34, 6, C::PrIdx),
];

static FLOAT_FIELDS: [FieldSpec; 10] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::FprIdx),
    fs("Src2", 14, 5, C::FprIdx),
    fs("S/D", 19, 1, C::Misc),
    fs("Reserved", 20, 6, C::Reserved),
    fs("tssL/U", 26, 3, C::Misc),
    fs("Dest+L1+PREDICATE", 29, 11, C::FprIdx),
];

static LOAD_FIELDS: [FieldSpec; 12] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::GprIdx),
    fs("BHWX", 14, 2, C::MemWidth),
    fs("SCS", 16, 2, C::Misc),
    fs("Res", 18, 1, C::Reserved),
    fs("TCS", 19, 2, C::Misc),
    fs("Reserved+Lat", 21, 8, C::Lat),
    fs("Dest", 29, 5, C::GprIdx),
    fs("Rsv+PREDICATE", 34, 6, C::PrIdx),
];

static STORE_FIELDS: [FieldSpec; 10] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::GprIdx),
    fs("Src2", 14, 5, C::GprIdx),
    fs("BHWX", 19, 2, C::MemWidth),
    fs("TCS", 21, 2, C::Misc),
    fs("Reserved", 23, 11, C::Reserved),
    fs("L1+PREDICATE", 34, 6, C::PrIdx),
];

static BRANCH_FIELDS: [FieldSpec; 8] = [
    fs("T", 0, 1, C::Tail),
    fs("S", 1, 1, C::Spec),
    fs("OPT", 2, 2, C::OpType),
    fs("OPCODE", 4, 5, C::Opcode),
    fs("Src1", 9, 5, C::GprIdx),
    fs("Counter", 14, 5, C::Counter),
    fs("Target", 19, 16, C::Target),
    fs("PREDICATE", 35, 5, C::PrIdx),
];

/// Renders the paper's Table 2 ("Summary of the baseline TEPIC ISA") as
/// fixed-width text, one row of field names and widths per format.
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str("Table 2. Summary of the baseline TEPIC ISA (40-bit operations)\n");
    for fmt in OpFormat::ALL {
        out.push_str(&format!("\n{}\n", fmt.name()));
        let widths: Vec<String> = fmt.fields().iter().map(|f| f.width.to_string()).collect();
        let names: Vec<&str> = fmt.fields().iter().map(|f| f.name).collect();
        for (w, n) in widths.iter().zip(&names) {
            out.push_str(&format!("  {:>2}  {}\n", w, n));
        }
        let total: u32 = fmt.fields().iter().map(|f| f.width).sum();
        out.push_str(&format!("  --  total {total} bits\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{IntOpcode, OpKind};
    use crate::regs::{Gpr, Pr};

    #[test]
    fn every_format_covers_exactly_40_bits() {
        for fmt in OpFormat::ALL {
            let fields = fmt.fields();
            let total: u32 = fields.iter().map(|f| f.width).sum();
            assert_eq!(total, 40, "{fmt:?} fields sum to {total}, expected 40");
            // Fields must be contiguous and non-overlapping, in order.
            let mut cursor = 0;
            for f in fields {
                assert_eq!(f.offset, cursor, "{fmt:?}/{} not contiguous", f.name);
                cursor += f.width;
            }
            assert_eq!(cursor, 40);
        }
    }

    #[test]
    fn format_of_matches_encoding_dispatch() {
        let op = Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::ZERO,
                src2: Gpr::ZERO,
                dest: Gpr::ZERO,
            },
        };
        assert_eq!(OpFormat::of(&op), OpFormat::IntAlu);
        let halt = Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Halt,
        };
        assert_eq!(OpFormat::of(&halt), OpFormat::Branch);
    }

    #[test]
    fn header_fields_are_uniform_across_formats() {
        for fmt in OpFormat::ALL {
            let f = fmt.fields();
            assert_eq!((f[0].offset, f[0].width), (0, 1), "{fmt:?} T");
            assert_eq!((f[1].offset, f[1].width), (1, 1), "{fmt:?} S");
            assert_eq!((f[2].offset, f[2].width), (2, 2), "{fmt:?} OPT");
            assert_eq!((f[3].offset, f[3].width), (4, 5), "{fmt:?} OPCODE");
        }
    }

    #[test]
    fn table2_renders_every_format() {
        let s = render_table2();
        for fmt in OpFormat::ALL {
            assert!(s.contains(fmt.name()), "missing {}", fmt.name());
        }
        assert!(s.contains("total 40 bits"));
    }
}
