//! # tepic-isa — the TEPIC embedded VLIW instruction set
//!
//! This crate implements the TEPIC ("TINKER EPIC") 40-bit VLIW instruction
//! set used as the baseline architecture in Larin & Conte, *Compiler-Driven
//! Cached Code Compression Schemes for Embedded ILP Processors* (MICRO-32,
//! 1999). TEPIC is a 40-bit derivative of the HP PlayDoh specification
//! adapted for embedded systems, with an encoding close to IA-64.
//!
//! The crate provides:
//!
//! * the seven operation formats of the paper's Appendix Table 2
//!   ([`format::OpFormat`]), with exact bit-level field layouts;
//! * a typed, decoded operation representation ([`op::Operation`]) with
//!   lossless 40-bit [`op::Operation::encode`] / [`op::Operation::decode`];
//! * zero-NOP *MultiOps* (VLIW issue groups delimited by tail bits,
//!   [`mop`]);
//! * whole-program images ([`image::Program`]) carrying basic-block
//!   structure, function boundaries, a data segment and raw code bytes
//!   (5 bytes per op);
//! * a disassembler ([`disasm`]).
//!
//! # Example
//!
//! ```
//! use tepic_isa::op::{Operation, OpKind, IntOpcode};
//! use tepic_isa::regs::{Gpr, Pr};
//!
//! // r3 = r1 + r2, last op of its MultiOp, always executed (predicate p0).
//! let op = Operation {
//!     tail: true,
//!     spec: false,
//!     pred: Pr::P0,
//!     kind: OpKind::IntAlu {
//!         op: IntOpcode::Add,
//!         src1: tepic_isa::regs::Gpr::new(1),
//!         src2: Gpr::new(2),
//!         dest: Gpr::new(3),
//!     },
//! };
//! let word = op.encode();
//! assert_eq!(Operation::decode(word).unwrap(), op);
//! ```

pub mod disasm;
pub mod format;
pub mod image;
pub mod mop;
pub mod op;
pub mod regs;
pub mod serialize;
pub mod wire;

pub use image::{BlockId, BlockInfo, FuncInfo, Program};
pub use op::{OpKind, Operation};
pub use serialize::{program_from_bytes, program_to_bytes, PROGRAM_WIRE_VERSION};

/// Size of one TEPIC operation in bits.
pub const OP_BITS: u32 = 40;
/// Size of one TEPIC operation in bytes in the uncompressed image.
pub const OP_BYTES: usize = 5;
/// Maximum number of operations in one MultiOp (the core issue width).
pub const ISSUE_WIDTH: usize = 6;
/// Number of issue slots that may execute memory operations.
pub const MEM_SLOTS: usize = 2;
/// Number of architected general-purpose registers.
pub const NUM_GPR: usize = 32;
/// Number of architected floating-point registers.
pub const NUM_FPR: usize = 32;
/// Number of architected predicate registers.
pub const NUM_PR: usize = 32;
