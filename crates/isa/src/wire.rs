//! A tiny, explicit binary wire format for cached artifacts.
//!
//! The prepared-workload engine persists compiled programs, block traces
//! and encoded images on disk so warm runs skip the compile/emulate/
//! encode pipeline entirely. Every artifact payload is written through
//! [`WireWriter`] and read back through [`WireReader`]: little-endian
//! fixed-width integers, length-prefixed byte strings, no padding, no
//! implicit layout — the format is the documentation.
//!
//! The module also hosts the stable content hashes ([`fnv1a64`],
//! [`fnv1a128`]) used to derive cache keys. They are defined here, at the
//! bottom of the crate graph, so every layer fingerprints data the same
//! way.

use std::fmt;

/// Failure while decoding a wire payload. Cache readers treat any
/// variant as "entry corrupt": the artifact is discarded and rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the field being read.
    Eos,
    /// A tag byte had no defined meaning.
    BadTag(u8),
    /// The payload's embedded format version is not the one this build
    /// writes.
    BadVersion(u32),
    /// A length-prefixed string was not valid UTF-8.
    Utf8,
    /// The decoded structure failed semantic validation.
    Invalid(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Eos => write!(f, "payload truncated"),
            WireError::BadTag(t) => write!(f, "undefined tag byte {t:#04x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::Utf8 => write!(f, "string field is not UTF-8"),
            WireError::Invalid(why) => write!(f, "decoded structure invalid: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only encoder for an artifact payload.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Consumes the writer, returning the payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Sequential decoder over an artifact payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a payload for reading.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// True when every byte has been consumed — decoders check this to
    /// reject trailing garbage.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Eos)?;
        if end > self.buf.len() {
            return Err(WireError::Eos);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a length written by [`WireWriter::put_len`], bounds-checked
    /// against the bytes actually remaining so corrupt lengths fail
    /// instead of allocating absurd buffers.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        if v > (self.buf.len() - self.pos) as u64 && v > u32::MAX as u64 {
            return Err(WireError::Eos);
        }
        usize::try_from(v).map_err(|_| WireError::Eos)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::Utf8)
    }
}

/// FNV-1a 64-bit hash — the stable source fingerprint.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Streaming FNV-1a 128-bit hash — the content-addressed cache key.
///
/// 128 bits keeps accidental collisions out of reach for any plausible
/// artifact population; the multiply uses the standard 128-bit FNV prime.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128 {
            state: FNV128_OFFSET,
        }
    }
}

impl Fnv128 {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128::default()
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Fnv128 {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
        self
    }

    /// Absorbs a length-delimited field (the length is hashed first so
    /// `"ab","c"` and `"a","bc"` produce different keys).
    pub fn update_field(&mut self, bytes: &[u8]) -> &mut Fnv128 {
        self.update(&(bytes.len() as u64).to_le_bytes());
        self.update(bytes)
    }

    /// Absorbs a string field.
    pub fn update_str(&mut self, s: &str) -> &mut Fnv128 {
        self.update_field(s.as_bytes())
    }

    /// Absorbs a `u32`.
    pub fn update_u32(&mut self, v: u32) -> &mut Fnv128 {
        self.update(&v.to_le_bytes())
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_field_kind() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_len(12);
        w.put_bytes(b"hello");
        w.put_str("caf\u{e9}");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_len().unwrap(), 12);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_str().unwrap(), "caf\u{e9}");
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_fail() {
        let mut w = WireWriter::new();
        w.put_u32(1);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..2]);
        assert_eq!(r.get_u32(), Err(WireError::Eos));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_len(), Err(WireError::Eos));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_str(), Err(WireError::Utf8));
    }

    #[test]
    fn hashes_are_stable_and_field_delimited() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        let a = {
            let mut h = Fnv128::new();
            h.update_str("ab").update_str("c");
            h.finish()
        };
        let b = {
            let mut h = Fnv128::new();
            h.update_str("a").update_str("bc");
            h.finish()
        };
        assert_ne!(a, b, "field boundaries must be part of the key");
        let again = {
            let mut h = Fnv128::new();
            h.update_str("ab").update_str("c");
            h.finish()
        };
        assert_eq!(a, again);
    }
}
