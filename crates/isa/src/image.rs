//! Whole-program code images: operations, basic-block structure, function
//! table and data segment.
//!
//! A [`Program`] is the unit every downstream stage consumes: the YULA
//! emulator executes it, the compression schemes re-encode its code bytes,
//! and the ATT generator walks its block table. Basic blocks are the
//! *atomic units of instruction fetch* (paper §3.1): control can only enter
//! a block at its first operation, and a block always runs to its end.

use crate::op::{OpKind, Operation};
use crate::{ISSUE_WIDTH, MEM_SLOTS, OP_BYTES};
use std::fmt;

/// Index of a basic block in a program's block table. Branch targets are
/// `BlockId`s (truncated to 16 bits in the encoding).
pub type BlockId = usize;

/// One basic block: a contiguous run of operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockInfo {
    /// Index of the first operation in [`Program::ops`].
    pub first_op: usize,
    /// Number of operations in the block.
    pub num_ops: usize,
    /// Number of MultiOps (VLIW issue groups) in the block.
    pub num_mops: usize,
    /// Owning function (index into [`Program::funcs`]).
    pub func: usize,
}

/// One function: a contiguous run of blocks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FuncInfo {
    /// Function name (for listings and traces).
    pub name: String,
    /// First block of the function; also its entry point.
    pub first_block: BlockId,
    /// Number of blocks belonging to the function.
    pub num_blocks: usize,
}

/// Validation failure for a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A block's operation range is empty or out of bounds.
    BadBlockRange { block: BlockId },
    /// The last operation of a block does not carry the tail bit.
    MissingTail { block: BlockId },
    /// A control transfer appears before the last operation of a block.
    EarlyControlTransfer { block: BlockId, op_index: usize },
    /// A MultiOp violates an issue constraint.
    IssueViolation {
        block: BlockId,
        reason: &'static str,
    },
    /// A branch names a block that does not exist.
    BadTarget { block: BlockId, target: u16 },
    /// Blocks are not contiguous over the operation array.
    NonContiguousBlocks { block: BlockId },
    /// A function's block range is out of bounds.
    BadFunctionRange { func: usize },
    /// The entry block index is out of range.
    BadEntry,
    /// Block index exceeds the 16-bit branch target field.
    TooManyBlocks { blocks: usize },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadBlockRange { block } => write!(f, "block {block} has a bad range"),
            ProgramError::MissingTail { block } => {
                write!(f, "block {block} does not end with a tail bit")
            }
            ProgramError::EarlyControlTransfer { block, op_index } => {
                write!(
                    f,
                    "block {block} has a control transfer at interior op {op_index}"
                )
            }
            ProgramError::IssueViolation { block, reason } => {
                write!(f, "block {block} violates issue constraints: {reason}")
            }
            ProgramError::BadTarget { block, target } => {
                write!(f, "block {block} branches to nonexistent block {target}")
            }
            ProgramError::NonContiguousBlocks { block } => {
                write!(f, "block {block} is not contiguous with its predecessor")
            }
            ProgramError::BadFunctionRange { func } => {
                write!(f, "function {func} has an out-of-range block span")
            }
            ProgramError::BadEntry => write!(f, "entry block is out of range"),
            ProgramError::TooManyBlocks { blocks } => {
                write!(f, "{blocks} blocks exceed the 16-bit branch target space")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete, executable TEPIC program image.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Operation>,
    blocks: Vec<BlockInfo>,
    funcs: Vec<FuncInfo>,
    entry: BlockId,
    data: Vec<u8>,
    data_base: u32,
}

impl Program {
    /// Assembles a program from its parts, validating every structural
    /// invariant (tail bits, atomic-block shape, issue constraints, branch
    /// targets, contiguity).
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn new(
        ops: Vec<Operation>,
        blocks: Vec<BlockInfo>,
        funcs: Vec<FuncInfo>,
        entry: BlockId,
        data: Vec<u8>,
        data_base: u32,
    ) -> Result<Program, ProgramError> {
        let p = Program {
            ops,
            blocks,
            funcs,
            entry,
            data,
            data_base,
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), ProgramError> {
        if self.blocks.len() > u16::MAX as usize + 1 {
            return Err(ProgramError::TooManyBlocks {
                blocks: self.blocks.len(),
            });
        }
        if self.entry >= self.blocks.len() {
            return Err(ProgramError::BadEntry);
        }
        let mut cursor = 0usize;
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.num_ops == 0 || b.first_op + b.num_ops > self.ops.len() {
                return Err(ProgramError::BadBlockRange { block: bi });
            }
            if b.first_op != cursor {
                return Err(ProgramError::NonContiguousBlocks { block: bi });
            }
            cursor += b.num_ops;
            let ops = &self.ops[b.first_op..b.first_op + b.num_ops];
            if !ops.last().unwrap().tail {
                return Err(ProgramError::MissingTail { block: bi });
            }
            for (i, op) in ops.iter().enumerate() {
                if op.ends_block() && i + 1 != ops.len() {
                    return Err(ProgramError::EarlyControlTransfer {
                        block: bi,
                        op_index: b.first_op + i,
                    });
                }
                match op.kind {
                    OpKind::Branch { target } | OpKind::Call { target, .. }
                        if (target as usize) >= self.blocks.len() =>
                    {
                        return Err(ProgramError::BadTarget { block: bi, target });
                    }
                    _ => {}
                }
            }
            // Issue constraints per MultiOp.
            let mut mops = 0usize;
            let mut start = 0usize;
            for (i, op) in ops.iter().enumerate() {
                if op.tail {
                    let mop = &ops[start..=i];
                    mops += 1;
                    if mop.len() > ISSUE_WIDTH {
                        return Err(ProgramError::IssueViolation {
                            block: bi,
                            reason: "more ops than issue width",
                        });
                    }
                    if mop.iter().filter(|o| o.is_mem()).count() > MEM_SLOTS {
                        return Err(ProgramError::IssueViolation {
                            block: bi,
                            reason: "more memory ops than memory slots",
                        });
                    }
                    if mop.iter().filter(|o| o.ends_block()).count() > 1 {
                        return Err(ProgramError::IssueViolation {
                            block: bi,
                            reason: "multiple control transfers in one MultiOp",
                        });
                    }
                    start = i + 1;
                }
            }
            if mops != b.num_mops {
                return Err(ProgramError::IssueViolation {
                    block: bi,
                    reason: "num_mops disagrees with tail bits",
                });
            }
        }
        if cursor != self.ops.len() {
            return Err(ProgramError::NonContiguousBlocks {
                block: self.blocks.len(),
            });
        }
        for (fi, func) in self.funcs.iter().enumerate() {
            if func.num_blocks == 0 || func.first_block + func.num_blocks > self.blocks.len() {
                return Err(ProgramError::BadFunctionRange { func: fi });
            }
        }
        Ok(())
    }

    /// All operations in layout order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The block table.
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// The function table.
    pub fn funcs(&self) -> &[FuncInfo] {
        &self.funcs
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The initial data segment.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Base address of the data segment in the emulated address space.
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// The operations of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block_ops(&self, b: BlockId) -> &[Operation] {
        let info = &self.blocks[b];
        &self.ops[info.first_op..info.first_op + info.num_ops]
    }

    /// Iterates over the MultiOps (tail-bit delimited issue groups) of
    /// block `b`.
    pub fn block_mops(&self, b: BlockId) -> impl Iterator<Item = &[Operation]> {
        crate::mop::mops(self.block_ops(b))
    }

    /// The fall-through successor of block `b` (the next sequential block),
    /// if any.
    pub fn fallthrough(&self, b: BlockId) -> Option<BlockId> {
        (b + 1 < self.blocks.len()).then_some(b + 1)
    }

    /// Byte range `[start, end)` of block `b` in the original (uncompressed)
    /// address space, at 5 bytes per operation.
    pub fn block_byte_range(&self, b: BlockId) -> (u64, u64) {
        let info = &self.blocks[b];
        let start = (info.first_op * OP_BYTES) as u64;
        (start, start + (info.num_ops * OP_BYTES) as u64)
    }

    /// The raw 40-bit words of the whole code segment, in layout order.
    pub fn op_words(&self) -> Vec<u64> {
        self.ops.iter().map(Operation::encode).collect()
    }

    /// The uncompressed code segment bytes (5 bytes per op, little-endian).
    pub fn code_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.ops.len() * OP_BYTES);
        for op in &self.ops {
            let w = op.encode();
            out.extend_from_slice(&w.to_le_bytes()[..OP_BYTES]);
        }
        out
    }

    /// Size of the uncompressed code segment in bytes.
    pub fn code_size(&self) -> usize {
        self.ops.len() * OP_BYTES
    }

    /// Total number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Total number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of MultiOps across all blocks.
    pub fn num_mops(&self) -> usize {
        self.blocks.iter().map(|b| b.num_mops).sum()
    }

    /// The function owning block `b`.
    pub fn func_of_block(&self, b: BlockId) -> &FuncInfo {
        &self.funcs[self.blocks[b].func]
    }

    /// Full disassembly listing.
    pub fn listing(&self) -> String {
        crate::disasm::listing(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{IntOpcode, OpKind, Operation};
    use crate::regs::{Gpr, Pr};

    fn alu(tail: bool) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::new(1),
                src2: Gpr::new(2),
                dest: Gpr::new(3),
            },
        }
    }

    fn halt() -> Operation {
        Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Halt,
        }
    }

    fn branch(tail: bool, target: u16) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Branch { target },
        }
    }

    fn one_func(blocks: usize) -> Vec<FuncInfo> {
        vec![FuncInfo {
            name: "main".into(),
            first_block: 0,
            num_blocks: blocks,
        }]
    }

    #[test]
    fn minimal_program_validates() {
        let p = Program::new(
            vec![alu(false), halt()],
            vec![BlockInfo {
                first_op: 0,
                num_ops: 2,
                num_mops: 1,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0x1_0000,
        )
        .expect("valid");
        assert_eq!(p.num_ops(), 2);
        assert_eq!(p.num_mops(), 1);
        assert_eq!(p.code_size(), 10);
        assert_eq!(p.block_byte_range(0), (0, 10));
    }

    #[test]
    fn missing_tail_rejected() {
        let err = Program::new(
            vec![alu(false), alu(false)],
            vec![BlockInfo {
                first_op: 0,
                num_ops: 2,
                num_mops: 1,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0,
        )
        .unwrap_err();
        assert_eq!(err, ProgramError::MissingTail { block: 0 });
    }

    #[test]
    fn early_control_transfer_rejected() {
        let err = Program::new(
            vec![branch(false, 0), halt()],
            vec![BlockInfo {
                first_op: 0,
                num_ops: 2,
                num_mops: 1,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0,
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::EarlyControlTransfer { .. }));
    }

    #[test]
    fn wide_mop_rejected() {
        let mut ops: Vec<Operation> = (0..7).map(|_| alu(false)).collect();
        ops.push(halt());
        let err = Program::new(
            ops,
            vec![BlockInfo {
                first_op: 0,
                num_ops: 8,
                num_mops: 1,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0,
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::IssueViolation { .. }));
    }

    #[test]
    fn bad_branch_target_rejected() {
        let err = Program::new(
            vec![branch(true, 7)],
            vec![BlockInfo {
                first_op: 0,
                num_ops: 1,
                num_mops: 1,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            ProgramError::BadTarget {
                block: 0,
                target: 7
            }
        );
    }

    #[test]
    fn non_contiguous_blocks_rejected() {
        let err = Program::new(
            vec![halt(), halt()],
            vec![
                BlockInfo {
                    first_op: 0,
                    num_ops: 1,
                    num_mops: 1,
                    func: 0,
                },
                // Skips op 1... starting again at 0.
                BlockInfo {
                    first_op: 0,
                    num_ops: 1,
                    num_mops: 1,
                    func: 0,
                },
            ],
            one_func(2),
            0,
            vec![],
            0,
        )
        .unwrap_err();
        assert!(matches!(err, ProgramError::NonContiguousBlocks { .. }));
    }

    #[test]
    fn code_bytes_are_five_per_op() {
        let p = Program::new(
            vec![alu(true), halt()],
            vec![
                BlockInfo {
                    first_op: 0,
                    num_ops: 1,
                    num_mops: 1,
                    func: 0,
                },
                BlockInfo {
                    first_op: 1,
                    num_ops: 1,
                    num_mops: 1,
                    func: 0,
                },
            ],
            one_func(2),
            0,
            vec![],
            0,
        )
        .unwrap();
        let bytes = p.code_bytes();
        assert_eq!(bytes.len(), 10);
        // First op decodes back from its 5 bytes.
        let mut w = [0u8; 8];
        w[..5].copy_from_slice(&bytes[..5]);
        let word = u64::from_le_bytes(w);
        assert_eq!(Operation::decode(word).unwrap(), alu(true));
    }

    #[test]
    fn mops_split_on_tail_bits() {
        let p = Program::new(
            vec![alu(false), alu(true), alu(false), alu(false), halt()],
            vec![BlockInfo {
                first_op: 0,
                num_ops: 5,
                num_mops: 2,
                func: 0,
            }],
            one_func(1),
            0,
            vec![],
            0,
        )
        .unwrap();
        let mops: Vec<_> = p.block_mops(0).collect();
        assert_eq!(mops.len(), 2);
        assert_eq!(mops[0].len(), 2);
        assert_eq!(mops[1].len(), 3);
    }
}
