//! Wire serialization of whole [`Program`] images (artifact-cache
//! format).
//!
//! Layout (all integers little-endian, lengths 64-bit; see
//! [`crate::wire`]):
//!
//! ```text
//! u32  PROGRAM_WIRE_VERSION
//! u64  num_ops       then 5 bytes per op (the 40-bit word, LE)
//! u64  num_blocks    then per block: u64 first_op, u64 num_ops,
//!                                    u64 num_mops, u64 func
//! u64  num_funcs     then per func:  str name, u64 first_block,
//!                                    u64 num_blocks
//! u64  entry
//! bytes data
//! u32  data_base
//! ```
//!
//! Decoding re-assembles through [`Program::new`], so every structural
//! invariant (tail bits, issue constraints, contiguity, branch targets)
//! is re-validated on load — a corrupted cache entry can not smuggle an
//! invalid program past the front door.

use crate::image::{BlockInfo, FuncInfo, Program};
use crate::op::Operation;
use crate::wire::{WireError, WireReader, WireWriter};
use crate::OP_BYTES;

/// Version stamp of the [`Program`] wire layout. Bump on any change to
/// the byte format (cache keys include it, so stale entries miss).
pub const PROGRAM_WIRE_VERSION: u32 = 1;

/// Serializes a program into the artifact-cache wire format.
pub fn program_to_bytes(p: &Program) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u32(PROGRAM_WIRE_VERSION);
    w.put_len(p.num_ops());
    for op in p.ops() {
        let word = op.encode();
        w.put_u8(word as u8);
        w.put_u8((word >> 8) as u8);
        w.put_u8((word >> 16) as u8);
        w.put_u8((word >> 24) as u8);
        w.put_u8((word >> 32) as u8);
    }
    w.put_len(p.blocks().len());
    for b in p.blocks() {
        w.put_len(b.first_op);
        w.put_len(b.num_ops);
        w.put_len(b.num_mops);
        w.put_len(b.func);
    }
    w.put_len(p.funcs().len());
    for f in p.funcs() {
        w.put_str(&f.name);
        w.put_len(f.first_block);
        w.put_len(f.num_blocks);
    }
    w.put_len(p.entry());
    w.put_bytes(p.data());
    w.put_u32(p.data_base());
    w.into_bytes()
}

/// Deserializes a program, re-validating every structural invariant.
///
/// # Errors
///
/// [`WireError`] on truncation, version mismatch, undecodable operation
/// words, or a structure [`Program::new`] rejects.
pub fn program_from_bytes(bytes: &[u8]) -> Result<Program, WireError> {
    let mut r = WireReader::new(bytes);
    let version = r.get_u32()?;
    if version != PROGRAM_WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let num_ops = r.get_len()?;
    let mut ops = Vec::with_capacity(num_ops);
    for _ in 0..num_ops {
        let mut word = 0u64;
        for i in 0..OP_BYTES {
            word |= (r.get_u8()? as u64) << (8 * i);
        }
        let op = Operation::decode(word).map_err(|e| WireError::Invalid(e.to_string()))?;
        ops.push(op);
    }
    let num_blocks = r.get_len()?;
    let mut blocks = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        blocks.push(BlockInfo {
            first_op: r.get_len()?,
            num_ops: r.get_len()?,
            num_mops: r.get_len()?,
            func: r.get_len()?,
        });
    }
    let num_funcs = r.get_len()?;
    let mut funcs = Vec::with_capacity(num_funcs);
    for _ in 0..num_funcs {
        funcs.push(FuncInfo {
            name: r.get_str()?.to_string(),
            first_block: r.get_len()?,
            num_blocks: r.get_len()?,
        });
    }
    let entry = r.get_len()?;
    let data = r.get_bytes()?.to_vec();
    let data_base = r.get_u32()?;
    if !r.is_exhausted() {
        return Err(WireError::Invalid("trailing bytes after program".into()));
    }
    Program::new(ops, blocks, funcs, entry, data, data_base)
        .map_err(|e| WireError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{IntOpcode, OpKind};
    use crate::regs::{Gpr, Pr};

    fn sample() -> Program {
        let alu = |tail| Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::new(1),
                src2: Gpr::new(2),
                dest: Gpr::new(3),
            },
        };
        let halt = Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Halt,
        };
        Program::new(
            vec![alu(false), alu(true), halt],
            vec![
                BlockInfo {
                    first_op: 0,
                    num_ops: 2,
                    num_mops: 1,
                    func: 0,
                },
                BlockInfo {
                    first_op: 2,
                    num_ops: 1,
                    num_mops: 1,
                    func: 0,
                },
            ],
            vec![FuncInfo {
                name: "main".into(),
                first_block: 0,
                num_blocks: 2,
            }],
            0,
            vec![1, 2, 3],
            0x1_0000,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_identity() {
        let p = sample();
        let bytes = program_to_bytes(&p);
        let q = program_from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn truncation_detected() {
        let bytes = program_to_bytes(&sample());
        for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(program_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn version_mismatch_detected() {
        let mut bytes = program_to_bytes(&sample());
        bytes[0] ^= 0x40;
        assert!(matches!(
            program_from_bytes(&bytes),
            Err(WireError::BadVersion(_))
        ));
    }

    #[test]
    fn trailing_garbage_detected() {
        let mut bytes = program_to_bytes(&sample());
        bytes.push(0);
        assert!(program_from_bytes(&bytes).is_err());
    }

    #[test]
    fn corrupt_structure_fails_validation() {
        let mut bytes = program_to_bytes(&sample());
        // Offset of block 0's `first_op`: version(4) + op count(8) +
        // 3 ops * 5 bytes + block count(8). Setting it to 1 makes the
        // block table non-contiguous, which Program::new must reject.
        let off = 4 + 8 + 15 + 8;
        bytes[off] = 1;
        assert!(matches!(
            program_from_bytes(&bytes),
            Err(WireError::Invalid(_))
        ));
    }
}
