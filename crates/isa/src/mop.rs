//! MultiOps — the zero-NOP VLIW issue groups.
//!
//! TEPIC stores no NOPs: a MultiOp (MOP) is simply a maximal run of
//! operations ending at the first set *tail* bit (paper §2.1, citing Conte et al. MICRO-29).
//! This module provides the splitting iterator plus simple group-level
//! queries used by the scheduler, the fetch simulator and the alignment
//! logic of the banked cache.

use crate::op::Operation;
use crate::{ISSUE_WIDTH, MEM_SLOTS, OP_BYTES};

/// Iterator over the MultiOps of an operation slice, splitting after every
/// tail bit. A trailing run without a tail bit (malformed input) is yielded
/// as a final group so callers can diagnose it.
#[derive(Debug, Clone)]
pub struct Mops<'a> {
    rest: &'a [Operation],
}

/// Splits `ops` into MultiOps.
pub fn mops(ops: &[Operation]) -> Mops<'_> {
    Mops { rest: ops }
}

impl<'a> Iterator for Mops<'a> {
    type Item = &'a [Operation];

    fn next(&mut self) -> Option<&'a [Operation]> {
        if self.rest.is_empty() {
            return None;
        }
        let cut = self
            .rest
            .iter()
            .position(|op| op.tail)
            .map(|i| i + 1)
            .unwrap_or(self.rest.len());
        let (head, tail) = self.rest.split_at(cut);
        self.rest = tail;
        Some(head)
    }
}

/// Number of MultiOps in `ops` (counting a malformed tail-less suffix as
/// one group).
pub fn count_mops(ops: &[Operation]) -> usize {
    mops(ops).count()
}

/// True when the group satisfies the 6-issue machine's constraints:
/// at most [`ISSUE_WIDTH`] operations, at most [`MEM_SLOTS`] memory
/// operations, at most one control transfer, and only the last operation
/// carries the tail bit.
pub fn is_legal_mop(group: &[Operation]) -> bool {
    !group.is_empty()
        && group.len() <= ISSUE_WIDTH
        && group.iter().filter(|o| o.is_mem()).count() <= MEM_SLOTS
        && group.iter().filter(|o| o.ends_block()).count() <= 1
        && group[..group.len() - 1].iter().all(|o| !o.tail)
        && group.last().is_some_and(|o| o.tail)
}

/// Size in bytes of a MultiOp in the uncompressed image.
pub fn mop_bytes(group: &[Operation]) -> usize {
    group.len() * OP_BYTES
}

/// The maximum MultiOp size in bytes — this is the bank line size of the
/// banked ICache (paper §3.4: "the bank line size is equal to the maximum
/// size MOP").
pub const MAX_MOP_BYTES: usize = ISSUE_WIDTH * OP_BYTES;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{IntOpcode, MemWidth, OpKind};
    use crate::regs::{Gpr, Pr};

    fn alu(tail: bool) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::ZERO,
                src2: Gpr::ZERO,
                dest: Gpr::new(1),
            },
        }
    }

    fn load(tail: bool) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Load {
                width: MemWidth::Word,
                base: Gpr::SP,
                lat: 2,
                dest: Gpr::new(1),
            },
        }
    }

    #[test]
    fn splits_on_tails() {
        let ops = [
            alu(false),
            alu(true),
            alu(true),
            alu(false),
            alu(false),
            alu(true),
        ];
        let groups: Vec<_> = mops(&ops).collect();
        assert_eq!(
            groups.iter().map(|g| g.len()).collect::<Vec<_>>(),
            vec![2, 1, 3]
        );
        assert_eq!(count_mops(&ops), 3);
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(count_mops(&[]), 0);
    }

    #[test]
    fn tailless_suffix_is_one_group() {
        let ops = [alu(true), alu(false), alu(false)];
        let groups: Vec<_> = mops(&ops).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].len(), 2);
        assert!(!is_legal_mop(groups[1]));
    }

    #[test]
    fn legality_checks() {
        assert!(is_legal_mop(&[alu(false), alu(true)]));
        assert!(is_legal_mop(&[load(false), load(true)]));
        // Three memory ops exceed the two memory slots.
        assert!(!is_legal_mop(&[load(false), load(false), load(true)]));
        // Seven ops exceed issue width.
        let wide: Vec<_> = (0..6)
            .map(|_| alu(false))
            .chain(std::iter::once(alu(true)))
            .collect();
        assert!(!is_legal_mop(&wide));
        // Tail bit in the middle.
        assert!(!is_legal_mop(&[alu(true), alu(true)]));
        assert!(is_legal_mop(&[alu(true)]));
        assert!(!is_legal_mop(&[]));
    }

    #[test]
    fn max_mop_bytes_matches_issue_width() {
        assert_eq!(MAX_MOP_BYTES, 30);
        let full: Vec<_> = (0..5).map(|_| alu(false)).chain([alu(true)]).collect();
        assert_eq!(mop_bytes(&full), MAX_MOP_BYTES);
    }
}
