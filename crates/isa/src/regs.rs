//! Architected register files: 32 GPRs, 32 FPRs, 32 predicate registers.
//!
//! The newtypes here keep the three register spaces statically distinct.
//! Software conventions (used by the LEGO compiler and the YULA emulator)
//! are exposed as associated constants on [`Gpr`] and [`Pr`].

use std::fmt;

/// A general-purpose (integer) register, `r0`..`r31`.
///
/// `r0` is hardwired to zero, as in most embedded RISC conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpr(u8);

/// A floating-point register, `f0`..`f31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fpr(u8);

/// A 1-bit predicate register, `p0`..`p31`.
///
/// `p0` is hardwired to *true*; an operation predicated on `p0` always
/// executes, which is how unconditional operations are expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pr(u8);

macro_rules! reg_impl {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Number of architected registers in this file.
            pub const COUNT: u8 = 32;

            /// Creates a register from its index.
            ///
            /// # Panics
            ///
            /// Panics if `index >= 32`.
            #[inline]
            pub fn new(index: u8) -> Self {
                assert!(index < Self::COUNT, "register index {index} out of range");
                Self(index)
            }

            /// Creates a register from its index, returning `None` when out
            /// of range.
            #[inline]
            pub fn try_new(index: u8) -> Option<Self> {
                (index < Self::COUNT).then_some(Self(index))
            }

            /// The register's index within its file (0..32).
            #[inline]
            pub fn index(self) -> u8 {
                self.0
            }

            /// Iterates over all registers of this file in index order.
            pub fn all() -> impl Iterator<Item = Self> {
                (0..Self::COUNT).map(Self)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$ty> for u8 {
            fn from(r: $ty) -> u8 {
                r.0
            }
        }
    };
}

reg_impl!(Gpr, "r");
reg_impl!(Fpr, "f");
reg_impl!(Pr, "p");

impl Gpr {
    /// Hardwired zero register.
    pub const ZERO: Gpr = Gpr(0);
    /// Return-value register (callee writes, caller reads).
    pub const RV: Gpr = Gpr(1);
    /// First argument register; arguments go in `r2..=r7`.
    pub const ARG0: Gpr = Gpr(2);
    /// Number of argument registers.
    pub const NUM_ARGS: u8 = 6;
    /// Frame pointer.
    pub const FP: Gpr = Gpr(28);
    /// Stack pointer.
    pub const SP: Gpr = Gpr(29);
    /// Assembler/compiler scratch register.
    pub const AT: Gpr = Gpr(30);
    /// Link register (holds the return *block index* after a call).
    pub const LR: Gpr = Gpr(31);

    /// The `i`-th argument register (`i < NUM_ARGS`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= Gpr::NUM_ARGS`.
    pub fn arg(i: u8) -> Gpr {
        assert!(i < Self::NUM_ARGS, "argument register {i} out of range");
        Gpr(Self::ARG0.0 + i)
    }
}

impl Pr {
    /// Hardwired true predicate.
    pub const P0: Pr = Pr(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        for i in 0..32 {
            assert_eq!(Gpr::new(i).index(), i);
            assert_eq!(Fpr::new(i).index(), i);
            assert_eq!(Pr::new(i).index(), i);
        }
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert!(Gpr::try_new(32).is_none());
        assert!(Fpr::try_new(255).is_none());
        assert!(Pr::try_new(32).is_none());
        assert!(Pr::try_new(31).is_some());
    }

    #[test]
    #[should_panic]
    fn new_panics_out_of_range() {
        let _ = Gpr::new(32);
    }

    #[test]
    fn display_uses_file_prefix() {
        assert_eq!(Gpr::new(7).to_string(), "r7");
        assert_eq!(Fpr::new(0).to_string(), "f0");
        assert_eq!(Pr::new(31).to_string(), "p31");
    }

    #[test]
    fn conventions_are_distinct() {
        let special = [Gpr::ZERO, Gpr::RV, Gpr::FP, Gpr::SP, Gpr::AT, Gpr::LR];
        for (i, a) in special.iter().enumerate() {
            for b in &special[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn arg_registers_are_consecutive() {
        for i in 0..Gpr::NUM_ARGS {
            assert_eq!(Gpr::arg(i).index(), 2 + i);
        }
    }

    #[test]
    fn all_yields_each_register_once() {
        let v: Vec<_> = Gpr::all().collect();
        assert_eq!(v.len(), 32);
        assert_eq!(v[0], Gpr::ZERO);
        assert_eq!(v[31], Gpr::LR);
    }
}
