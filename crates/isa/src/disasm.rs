//! Disassembler for TEPIC operations and whole program listings.

use crate::image::Program;
use crate::op::{OpKind, Operation};
use crate::regs::Pr;

/// Renders one operation as assembly-like text, e.g.
/// `"add r3, r1, r2"` or `"(p4) br .b17 ;;"` — the trailing `;;` marks a
/// tail bit (end of MultiOp), IA-64 style.
pub fn disassemble(op: &Operation) -> String {
    let mut s = String::new();
    if op.pred != Pr::P0 {
        s.push_str(&format!("({}) ", op.pred));
    }
    if op.spec {
        s.push_str("spec ");
    }
    let body = match op.kind {
        OpKind::IntAlu {
            op,
            src1,
            src2,
            dest,
        } => {
            format!("{} {dest}, {src1}, {src2}", op.mnemonic())
        }
        OpKind::IntCmp {
            cond,
            src1,
            src2,
            dest,
        } => {
            format!("cmpp.{} {dest}, {src1}, {src2}", cond.mnemonic())
        }
        OpKind::FloatCmp {
            cond,
            src1,
            src2,
            dest,
        } => {
            format!("fcmpp.{} {dest}, {src1}, {src2}", cond.mnemonic())
        }
        OpKind::LoadImm {
            high: false,
            imm,
            dest,
        } => format!("ldi {dest}, {imm}"),
        OpKind::LoadImm {
            high: true,
            imm,
            dest,
        } => format!("ldih {dest}, {imm}"),
        OpKind::Float {
            op,
            src1,
            src2,
            dest,
        } => {
            format!("{} {dest}, {src1}, {src2}", op.mnemonic())
        }
        OpKind::CvtIf { src, dest } => format!("cvtif {dest}, {src}"),
        OpKind::CvtFi { src, dest } => format!("cvtfi {dest}, {src}"),
        OpKind::Load {
            width,
            base,
            lat,
            dest,
        } => {
            format!("ld.{} {dest}, [{base}] lat={lat}", width_suffix(width))
        }
        OpKind::Store { width, base, value } => {
            format!("st.{} [{base}], {value}", width_suffix(width))
        }
        OpKind::FLoad { base, lat, dest } => format!("fld {dest}, [{base}] lat={lat}"),
        OpKind::FStore { base, value } => format!("fst [{base}], {value}"),
        OpKind::Branch { target } => format!("br .b{target}"),
        OpKind::Call { target, link } => format!("brl .b{target}, link={link}"),
        OpKind::Ret { src } => format!("bret {src}"),
        OpKind::Halt => "halt".to_string(),
        OpKind::Sys { code, arg } => format!("sys {code:?}, {arg}"),
    };
    s.push_str(&body);
    if op.tail {
        s.push_str(" ;;");
    }
    s
}

fn width_suffix(w: crate::op::MemWidth) -> &'static str {
    match w {
        crate::op::MemWidth::Byte => "b",
        crate::op::MemWidth::Half => "h",
        crate::op::MemWidth::Word => "w",
        crate::op::MemWidth::Double => "x",
    }
}

/// Renders a full program listing with function and block labels.
pub fn listing(p: &Program) -> String {
    let mut out = String::new();
    let mut current_func = usize::MAX;
    for (bi, block) in p.blocks().iter().enumerate() {
        if block.func != current_func {
            current_func = block.func;
            out.push_str(&format!("\n{}:\n", p.funcs()[current_func].name));
        }
        out.push_str(&format!(".b{bi}:"));
        if bi == p.entry() {
            out.push_str("    # entry");
        }
        out.push('\n');
        for op in p.block_ops(bi) {
            out.push_str(&format!("    {}\n", disassemble(op)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Cond, IntOpcode};
    use crate::regs::{Fpr, Gpr};

    #[test]
    fn formats_common_ops() {
        let op = Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::new(1),
                src2: Gpr::new(2),
                dest: Gpr::new(3),
            },
        };
        assert_eq!(disassemble(&op), "add r3, r1, r2 ;;");
    }

    #[test]
    fn predicated_and_speculative_prefixes() {
        let op = Operation {
            tail: false,
            spec: true,
            pred: Pr::new(4),
            kind: OpKind::Branch { target: 17 },
        };
        assert_eq!(disassemble(&op), "(p4) spec br .b17");
    }

    #[test]
    fn compare_condition_suffix() {
        let op = Operation {
            tail: false,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::FloatCmp {
                cond: Cond::Le,
                src1: Fpr::new(1),
                src2: Fpr::new(2),
                dest: Pr::new(3),
            },
        };
        assert_eq!(disassemble(&op), "fcmpp.le p3, f1, f2");
    }
}
