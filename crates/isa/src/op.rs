//! Typed TEPIC operations and their 40-bit binary encoding.
//!
//! Every operation is 40 bits. Bit 0 holds the tail bit `T` (zero-NOP MOP
//! delimiter), bit 1 the speculative bit `S`, bits 2..=3 the operation type
//! `OPT`, bits 4..=8 the 5-bit `OPCODE`, and the remaining 31 bits are laid
//! out per-format exactly as in the paper's Appendix Table 2 (see
//! [`crate::format`] for the field tables).
//!
//! Branch targets are *block indices* into the program's Address Translation
//! Table rather than byte addresses — an isomorphic choice documented in
//! DESIGN.md §4 that keeps the 16-bit target field of the branch format
//! sufficient for every workload.

use crate::regs::{Fpr, Gpr, Pr};
use std::fmt;

/// Extracts `width` bits of `word` starting at bit `off` (LSB-first).
#[inline]
pub(crate) fn get_bits(word: u64, off: u32, width: u32) -> u64 {
    (word >> off) & ((1u64 << width) - 1)
}

/// Inserts `value` into `width` bits of `word` at bit `off`.
///
/// # Panics
///
/// Panics (debug) if `value` does not fit in `width` bits.
#[inline]
pub(crate) fn set_bits(word: &mut u64, off: u32, width: u32, value: u64) {
    debug_assert!(
        value < (1u64 << width),
        "field value {value} overflows {width} bits"
    );
    *word |= (value & ((1u64 << width) - 1)) << off;
}

/// Operation type — the 2-bit `OPT` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpType {
    /// Integer ALU, compares and immediates.
    Int = 0,
    /// Floating point.
    Float = 1,
    /// Memory (loads and stores).
    Mem = 2,
    /// Control transfer and system operations.
    Ctrl = 3,
}

impl OpType {
    /// Decodes the 2-bit `OPT` field.
    pub fn from_bits(v: u64) -> OpType {
        match v & 0b11 {
            0 => OpType::Int,
            1 => OpType::Float,
            2 => OpType::Mem,
            _ => OpType::Ctrl,
        }
    }
}

/// Integer ALU opcodes (OPT = `Int`, `IntAlu` format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum IntOpcode {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Rem = 4,
    And = 5,
    Or = 6,
    Xor = 7,
    Shl = 8,
    Shr = 9,
    Sra = 10,
    /// `dest = src1` (register move; `src2` ignored).
    Mov = 11,
    /// `dest = !src1` (bitwise complement; `src2` ignored).
    Not = 12,
    Min = 13,
    Max = 14,
}

impl IntOpcode {
    /// All integer ALU opcodes.
    pub const ALL: [IntOpcode; 15] = [
        IntOpcode::Add,
        IntOpcode::Sub,
        IntOpcode::Mul,
        IntOpcode::Div,
        IntOpcode::Rem,
        IntOpcode::And,
        IntOpcode::Or,
        IntOpcode::Xor,
        IntOpcode::Shl,
        IntOpcode::Shr,
        IntOpcode::Sra,
        IntOpcode::Mov,
        IntOpcode::Not,
        IntOpcode::Min,
        IntOpcode::Max,
    ];

    fn from_bits(v: u64) -> Option<IntOpcode> {
        Self::ALL.get(v as usize).copied()
    }

    /// Lowercase mnemonic, e.g. `"add"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOpcode::Add => "add",
            IntOpcode::Sub => "sub",
            IntOpcode::Mul => "mul",
            IntOpcode::Div => "div",
            IntOpcode::Rem => "rem",
            IntOpcode::And => "and",
            IntOpcode::Or => "or",
            IntOpcode::Xor => "xor",
            IntOpcode::Shl => "shl",
            IntOpcode::Shr => "shr",
            IntOpcode::Sra => "sra",
            IntOpcode::Mov => "mov",
            IntOpcode::Not => "not",
            IntOpcode::Min => "min",
            IntOpcode::Max => "max",
        }
    }
}

/// Secondary opcodes under OPT = `Int` that use non-ALU formats.
pub(crate) mod int_secondary {
    /// Compare-to-predicate (`IntCmp` format).
    pub const CMPP: u64 = 16;
    /// Load 20-bit sign-extended immediate (`LoadImm` format).
    pub const LDI: u64 = 17;
    /// Load 20-bit immediate shifted left by 12 (`LoadImm` format).
    pub const LDIH: u64 = 18;
}

/// Floating-point arithmetic opcodes (OPT = `Float`, `Float` format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum FloatOpcode {
    Fadd = 0,
    Fsub = 1,
    Fmul = 2,
    Fdiv = 3,
    /// `dest = -src1` (`src2` ignored).
    Fneg = 4,
    /// `dest = |src1|` (`src2` ignored).
    Fabs = 5,
    Fmin = 6,
    Fmax = 7,
    /// `dest = src1` (`src2` ignored).
    Fmov = 8,
}

impl FloatOpcode {
    /// All floating-point arithmetic opcodes.
    pub const ALL: [FloatOpcode; 9] = [
        FloatOpcode::Fadd,
        FloatOpcode::Fsub,
        FloatOpcode::Fmul,
        FloatOpcode::Fdiv,
        FloatOpcode::Fneg,
        FloatOpcode::Fabs,
        FloatOpcode::Fmin,
        FloatOpcode::Fmax,
        FloatOpcode::Fmov,
    ];

    fn from_bits(v: u64) -> Option<FloatOpcode> {
        Self::ALL.get(v as usize).copied()
    }

    /// Lowercase mnemonic, e.g. `"fadd"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatOpcode::Fadd => "fadd",
            FloatOpcode::Fsub => "fsub",
            FloatOpcode::Fmul => "fmul",
            FloatOpcode::Fdiv => "fdiv",
            FloatOpcode::Fneg => "fneg",
            FloatOpcode::Fabs => "fabs",
            FloatOpcode::Fmin => "fmin",
            FloatOpcode::Fmax => "fmax",
            FloatOpcode::Fmov => "fmov",
        }
    }
}

/// Secondary opcodes under OPT = `Float`.
pub(crate) mod float_secondary {
    /// FP compare-to-predicate (`IntCmp` format over FPR indices).
    pub const FCMPP: u64 = 16;
    /// Convert integer to float (`IntAlu` format, GPR src → FPR dest).
    pub const CVTIF: u64 = 17;
    /// Convert float to integer, truncating (`IntAlu` format, FPR src → GPR dest).
    pub const CVTFI: u64 = 18;
}

/// Memory opcodes (OPT = `Mem`).
pub(crate) mod mem_opcode {
    pub const LOAD: u64 = 0;
    pub const STORE: u64 = 1;
    pub const FLOAD: u64 = 2;
    pub const FSTORE: u64 = 3;
}

/// Control opcodes (OPT = `Ctrl`, `Branch` format).
pub(crate) mod ctrl_opcode {
    pub const BR: u64 = 0;
    pub const BRL: u64 = 1;
    pub const BRET: u64 = 2;
    pub const HALT: u64 = 3;
    pub const SYS: u64 = 4;
}

/// Comparison condition — the 3-bit `D1` field of the compare-to-predicate
/// format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Lt = 2,
    Le = 3,
    Gt = 4,
    Ge = 5,
    /// Unsigned less-than.
    Ltu = 6,
    /// Unsigned greater-or-equal.
    Geu = 7,
}

impl Cond {
    /// All conditions.
    pub const ALL: [Cond; 8] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::Ltu,
        Cond::Geu,
    ];

    fn from_bits(v: u64) -> Cond {
        Self::ALL[(v & 0b111) as usize]
    }

    /// The condition testing the logically opposite outcome.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }

    /// The condition with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> Cond {
        match self {
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
            Cond::Ltu => Cond::Ltu, // unsigned swaps are not closed; callers avoid
            Cond::Geu => Cond::Geu,
        }
    }

    /// Evaluates the condition over two signed 32-bit operands.
    pub fn eval(self, a: i32, b: i32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Ltu => (a as u32) < (b as u32),
            Cond::Geu => (a as u32) >= (b as u32),
        }
    }

    /// Evaluates the condition over two `f32` operands (unsigned variants
    /// fall back to their signed meaning).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt | Cond::Ltu => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge | Cond::Geu => a >= b,
        }
    }

    /// Lowercase mnemonic suffix, e.g. `"lt"`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::Ltu => "ltu",
            Cond::Geu => "geu",
        }
    }
}

/// Memory access width — the 2-bit `BHWX` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum MemWidth {
    Byte = 0,
    Half = 1,
    Word = 2,
    /// Double-word; accepted by the encoding, unused by the workloads.
    Double = 3,
}

impl MemWidth {
    fn from_bits(v: u64) -> MemWidth {
        match v & 0b11 {
            0 => MemWidth::Byte,
            1 => MemWidth::Half,
            2 => MemWidth::Word,
            _ => MemWidth::Double,
        }
    }

    /// Access size in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
            MemWidth::Double => 8,
        }
    }
}

/// System call codes carried by the `Sys` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SysCode {
    /// Print the argument register as a signed decimal integer + newline.
    PrintInt = 1,
    /// Print the low byte of the argument register as a character.
    PrintChar = 2,
}

impl SysCode {
    fn from_bits(v: u64) -> Option<SysCode> {
        match v {
            1 => Some(SysCode::PrintInt),
            2 => Some(SysCode::PrintChar),
            _ => None,
        }
    }
}

/// Branch target: an index into the program's block table (and thus its
/// Address Translation Table).
pub type BlockTarget = u16;

/// The format-specific payload of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `dest = src1 <op> src2` (Integer ALU format).
    IntAlu {
        op: IntOpcode,
        src1: Gpr,
        src2: Gpr,
        dest: Gpr,
    },
    /// `dest(pred) = src1 <cond> src2` (compare-to-predicate format).
    IntCmp {
        cond: Cond,
        src1: Gpr,
        src2: Gpr,
        dest: Pr,
    },
    /// FP compare-to-predicate (same format over FPR indices).
    FloatCmp {
        cond: Cond,
        src1: Fpr,
        src2: Fpr,
        dest: Pr,
    },
    /// `dest = sext(imm20)` or, when `high`, `dest = imm20 << 12`.
    LoadImm { high: bool, imm: i32, dest: Gpr },
    /// `dest = src1 <op> src2` (FP format; single precision).
    Float {
        op: FloatOpcode,
        src1: Fpr,
        src2: Fpr,
        dest: Fpr,
    },
    /// `dest = (f32)src` — int → float conversion.
    CvtIf { src: Gpr, dest: Fpr },
    /// `dest = (i32)src` — float → int conversion (truncating).
    CvtFi { src: Fpr, dest: Gpr },
    /// `dest = mem[base]`, sign-extended per `width`; `lat` is the
    /// compiler-scheduled latency.
    Load {
        width: MemWidth,
        base: Gpr,
        lat: u8,
        dest: Gpr,
    },
    /// `mem[base] = value` per `width`.
    Store {
        width: MemWidth,
        base: Gpr,
        value: Gpr,
    },
    /// `fdest = mem[base]` (32-bit float load).
    FLoad { base: Gpr, lat: u8, dest: Fpr },
    /// `mem[base] = fvalue` (32-bit float store).
    FStore { base: Gpr, value: Fpr },
    /// Jump to block `target` (conditional when predicated).
    Branch { target: BlockTarget },
    /// Call: `link = <fall-through block>; goto target`.
    Call { target: BlockTarget, link: Gpr },
    /// Return / indirect jump: `goto block(src)`.
    Ret { src: Gpr },
    /// Stop the machine.
    Halt,
    /// Environment call.
    Sys { code: SysCode, arg: Gpr },
}

/// A decoded TEPIC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Tail bit: set on the last operation of a MultiOp (zero-NOP encoding).
    pub tail: bool,
    /// Speculative bit.
    pub spec: bool,
    /// Guard predicate; [`Pr::P0`] means "always execute".
    pub pred: Pr,
    /// Format-specific payload.
    pub kind: OpKind,
}

/// Error returned by [`Operation::decode`] for malformed 40-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOpError {
    /// The offending word.
    pub word: u64,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for DecodeOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#012x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeOpError {}

// Field offsets shared by every format.
const T_OFF: u32 = 0;
const S_OFF: u32 = 1;
const OPT_OFF: u32 = 2;
const OPC_OFF: u32 = 4;
const SRC1_OFF: u32 = 9;
const DEST_OFF: u32 = 29;
const PRED_OFF: u32 = 35;
// IntAlu / IntCmp / Store secondary source.
const SRC2_OFF: u32 = 14;
// IntCmp condition.
const D1_OFF: u32 = 21;
// LoadImm immediate.
const IMM_OFF: u32 = 9;
const IMM_W: u32 = 20;
// Load format fields.
const LD_BHWX_OFF: u32 = 14;
const LD_LAT_OFF: u32 = 24;
// IntAlu / Store width field.
const BHWX_OFF: u32 = 19;
// Branch fields.
const CTR_OFF: u32 = 14;
const TGT_OFF: u32 = 19;
const TGT_W: u32 = 16;

/// Maximum positive value of the 20-bit signed immediate.
pub const IMM_MAX: i32 = (1 << 19) - 1;
/// Minimum value of the 20-bit signed immediate.
pub const IMM_MIN: i32 = -(1 << 19);

impl Operation {
    /// A canonical no-op (`r0 = r0 + r0`); only used internally — the
    /// zero-NOP encoding means NOPs are never stored in an image.
    pub fn nop() -> Operation {
        Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::ZERO,
                src2: Gpr::ZERO,
                dest: Gpr::ZERO,
            },
        }
    }

    /// Encodes the operation into its 40-bit word (in the low 40 bits of the
    /// returned `u64`).
    ///
    /// # Panics
    ///
    /// Panics if a `LoadImm` immediate is outside the signed 20-bit range.
    pub fn encode(&self) -> u64 {
        let mut w = 0u64;
        set_bits(&mut w, T_OFF, 1, self.tail as u64);
        set_bits(&mut w, S_OFF, 1, self.spec as u64);
        let (opt, opc) = self.opt_opcode();
        set_bits(&mut w, OPT_OFF, 2, opt as u64);
        set_bits(&mut w, OPC_OFF, 5, opc);
        set_bits(&mut w, PRED_OFF, 5, self.pred.index() as u64);
        match self.kind {
            OpKind::IntAlu {
                src1, src2, dest, ..
            } => {
                set_bits(&mut w, SRC1_OFF, 5, src1.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, src2.index() as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::IntCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                set_bits(&mut w, SRC1_OFF, 5, src1.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, src2.index() as u64);
                set_bits(&mut w, D1_OFF, 3, cond as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::FloatCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                set_bits(&mut w, SRC1_OFF, 5, src1.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, src2.index() as u64);
                set_bits(&mut w, D1_OFF, 3, cond as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::LoadImm { imm, dest, .. } => {
                assert!(
                    (IMM_MIN..=IMM_MAX).contains(&imm),
                    "immediate {imm} outside 20-bit signed range"
                );
                set_bits(
                    &mut w,
                    IMM_OFF,
                    IMM_W,
                    (imm as u32 as u64) & ((1 << IMM_W) - 1),
                );
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::Float {
                src1, src2, dest, ..
            } => {
                set_bits(&mut w, SRC1_OFF, 5, src1.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, src2.index() as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::CvtIf { src, dest } => {
                set_bits(&mut w, SRC1_OFF, 5, src.index() as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::CvtFi { src, dest } => {
                set_bits(&mut w, SRC1_OFF, 5, src.index() as u64);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::Load {
                width,
                base,
                lat,
                dest,
            } => {
                set_bits(&mut w, SRC1_OFF, 5, base.index() as u64);
                set_bits(&mut w, LD_BHWX_OFF, 2, width as u64);
                set_bits(&mut w, LD_LAT_OFF, 5, lat as u64 & 0x1f);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::FLoad { base, lat, dest } => {
                set_bits(&mut w, SRC1_OFF, 5, base.index() as u64);
                set_bits(&mut w, LD_BHWX_OFF, 2, MemWidth::Word as u64);
                set_bits(&mut w, LD_LAT_OFF, 5, lat as u64 & 0x1f);
                set_bits(&mut w, DEST_OFF, 5, dest.index() as u64);
            }
            OpKind::Store { width, base, value } => {
                set_bits(&mut w, SRC1_OFF, 5, base.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, value.index() as u64);
                set_bits(&mut w, BHWX_OFF, 2, width as u64);
            }
            OpKind::FStore { base, value } => {
                set_bits(&mut w, SRC1_OFF, 5, base.index() as u64);
                set_bits(&mut w, SRC2_OFF, 5, value.index() as u64);
                set_bits(&mut w, BHWX_OFF, 2, MemWidth::Word as u64);
            }
            OpKind::Branch { target } => {
                set_bits(&mut w, TGT_OFF, TGT_W, target as u64);
            }
            OpKind::Call { target, link } => {
                set_bits(&mut w, CTR_OFF, 5, link.index() as u64);
                set_bits(&mut w, TGT_OFF, TGT_W, target as u64);
            }
            OpKind::Ret { src } => {
                set_bits(&mut w, SRC1_OFF, 5, src.index() as u64);
            }
            OpKind::Halt => {}
            OpKind::Sys { code, arg } => {
                set_bits(&mut w, SRC1_OFF, 5, arg.index() as u64);
                set_bits(&mut w, CTR_OFF, 5, code as u64);
            }
        }
        w
    }

    /// The `(OPT, OPCODE)` pair that selects this operation's format.
    pub fn opt_opcode(&self) -> (OpType, u64) {
        match self.kind {
            OpKind::IntAlu { op, .. } => (OpType::Int, op as u64),
            OpKind::IntCmp { .. } => (OpType::Int, int_secondary::CMPP),
            OpKind::LoadImm { high: false, .. } => (OpType::Int, int_secondary::LDI),
            OpKind::LoadImm { high: true, .. } => (OpType::Int, int_secondary::LDIH),
            OpKind::Float { op, .. } => (OpType::Float, op as u64),
            OpKind::FloatCmp { .. } => (OpType::Float, float_secondary::FCMPP),
            OpKind::CvtIf { .. } => (OpType::Float, float_secondary::CVTIF),
            OpKind::CvtFi { .. } => (OpType::Float, float_secondary::CVTFI),
            OpKind::Load { .. } => (OpType::Mem, mem_opcode::LOAD),
            OpKind::Store { .. } => (OpType::Mem, mem_opcode::STORE),
            OpKind::FLoad { .. } => (OpType::Mem, mem_opcode::FLOAD),
            OpKind::FStore { .. } => (OpType::Mem, mem_opcode::FSTORE),
            OpKind::Branch { .. } => (OpType::Ctrl, ctrl_opcode::BR),
            OpKind::Call { .. } => (OpType::Ctrl, ctrl_opcode::BRL),
            OpKind::Ret { .. } => (OpType::Ctrl, ctrl_opcode::BRET),
            OpKind::Halt => (OpType::Ctrl, ctrl_opcode::HALT),
            OpKind::Sys { .. } => (OpType::Ctrl, ctrl_opcode::SYS),
        }
    }

    /// Decodes a 40-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeOpError`] when the word carries an undefined opcode,
    /// or when bits above bit 39 are set.
    pub fn decode(word: u64) -> Result<Operation, DecodeOpError> {
        if word >> 40 != 0 {
            return Err(DecodeOpError {
                word,
                reason: "bits above bit 39 are set",
            });
        }
        let err = |reason| DecodeOpError { word, reason };
        let tail = get_bits(word, T_OFF, 1) != 0;
        let spec = get_bits(word, S_OFF, 1) != 0;
        let opt = OpType::from_bits(get_bits(word, OPT_OFF, 2));
        let opc = get_bits(word, OPC_OFF, 5);
        let pred = Pr::new(get_bits(word, PRED_OFF, 5) as u8);
        let g = |off| Gpr::new(get_bits(word, off, 5) as u8);
        let f = |off| Fpr::new(get_bits(word, off, 5) as u8);
        let kind = match opt {
            OpType::Int => match opc {
                int_secondary::CMPP => OpKind::IntCmp {
                    cond: Cond::from_bits(get_bits(word, D1_OFF, 3)),
                    src1: g(SRC1_OFF),
                    src2: g(SRC2_OFF),
                    dest: Pr::new(get_bits(word, DEST_OFF, 5) as u8),
                },
                int_secondary::LDI | int_secondary::LDIH => {
                    let raw = get_bits(word, IMM_OFF, IMM_W) as u32;
                    // Sign-extend 20 bits.
                    let imm = ((raw << 12) as i32) >> 12;
                    OpKind::LoadImm {
                        high: opc == int_secondary::LDIH,
                        imm,
                        dest: g(DEST_OFF),
                    }
                }
                _ => OpKind::IntAlu {
                    op: IntOpcode::from_bits(opc).ok_or_else(|| err("undefined integer opcode"))?,
                    src1: g(SRC1_OFF),
                    src2: g(SRC2_OFF),
                    dest: g(DEST_OFF),
                },
            },
            OpType::Float => match opc {
                float_secondary::FCMPP => OpKind::FloatCmp {
                    cond: Cond::from_bits(get_bits(word, D1_OFF, 3)),
                    src1: f(SRC1_OFF),
                    src2: f(SRC2_OFF),
                    dest: Pr::new(get_bits(word, DEST_OFF, 5) as u8),
                },
                float_secondary::CVTIF => OpKind::CvtIf {
                    src: g(SRC1_OFF),
                    dest: f(DEST_OFF),
                },
                float_secondary::CVTFI => OpKind::CvtFi {
                    src: f(SRC1_OFF),
                    dest: g(DEST_OFF),
                },
                _ => OpKind::Float {
                    op: FloatOpcode::from_bits(opc).ok_or_else(|| err("undefined float opcode"))?,
                    src1: f(SRC1_OFF),
                    src2: f(SRC2_OFF),
                    dest: f(DEST_OFF),
                },
            },
            OpType::Mem => match opc {
                mem_opcode::LOAD => OpKind::Load {
                    width: MemWidth::from_bits(get_bits(word, LD_BHWX_OFF, 2)),
                    base: g(SRC1_OFF),
                    lat: get_bits(word, LD_LAT_OFF, 5) as u8,
                    dest: g(DEST_OFF),
                },
                mem_opcode::STORE => OpKind::Store {
                    width: MemWidth::from_bits(get_bits(word, BHWX_OFF, 2)),
                    base: g(SRC1_OFF),
                    value: g(SRC2_OFF),
                },
                mem_opcode::FLOAD => OpKind::FLoad {
                    base: g(SRC1_OFF),
                    lat: get_bits(word, LD_LAT_OFF, 5) as u8,
                    dest: f(DEST_OFF),
                },
                mem_opcode::FSTORE => OpKind::FStore {
                    base: g(SRC1_OFF),
                    value: f(SRC2_OFF),
                },
                _ => return Err(err("undefined memory opcode")),
            },
            OpType::Ctrl => match opc {
                ctrl_opcode::BR => OpKind::Branch {
                    target: get_bits(word, TGT_OFF, TGT_W) as u16,
                },
                ctrl_opcode::BRL => OpKind::Call {
                    target: get_bits(word, TGT_OFF, TGT_W) as u16,
                    link: g(CTR_OFF),
                },
                ctrl_opcode::BRET => OpKind::Ret { src: g(SRC1_OFF) },
                ctrl_opcode::HALT => OpKind::Halt,
                ctrl_opcode::SYS => OpKind::Sys {
                    code: SysCode::from_bits(get_bits(word, CTR_OFF, 5))
                        .ok_or_else(|| err("undefined system call code"))?,
                    arg: g(SRC1_OFF),
                },
                _ => return Err(err("undefined control opcode")),
            },
        };
        Ok(Operation {
            tail,
            spec,
            pred,
            kind,
        })
    }

    /// True when the operation is a control transfer that ends a basic
    /// block (branch, call, return, or halt — everything under OPT = `Ctrl`
    /// except `Sys`).
    pub fn ends_block(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Branch { .. } | OpKind::Call { .. } | OpKind::Ret { .. } | OpKind::Halt
        )
    }

    /// True for loads, stores and their FP variants — the operations that
    /// may only use the two memory-capable issue slots.
    pub fn is_mem(&self) -> bool {
        matches!(
            self.kind,
            OpKind::Load { .. }
                | OpKind::Store { .. }
                | OpKind::FLoad { .. }
                | OpKind::FStore { .. }
        )
    }

    /// Result latency in cycles assumed by the LEGO scheduler.
    pub fn latency(&self) -> u32 {
        match self.kind {
            OpKind::Load { .. } | OpKind::FLoad { .. } => 2,
            OpKind::IntAlu {
                op: IntOpcode::Mul, ..
            } => 3,
            OpKind::IntAlu {
                op: IntOpcode::Div | IntOpcode::Rem,
                ..
            } => 8,
            OpKind::Float {
                op: FloatOpcode::Fdiv,
                ..
            } => 8,
            OpKind::Float { .. } | OpKind::CvtIf { .. } | OpKind::CvtFi { .. } => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::disasm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(op: Operation) {
        let w = op.encode();
        assert!(w >> 40 == 0, "encoding exceeds 40 bits: {w:#x}");
        assert_eq!(
            Operation::decode(w).expect("decodes"),
            op,
            "round-trip failed for {op:?}"
        );
    }

    #[test]
    fn int_alu_round_trip_all_opcodes() {
        for op in IntOpcode::ALL {
            rt(Operation {
                tail: true,
                spec: false,
                pred: Pr::new(3),
                kind: OpKind::IntAlu {
                    op,
                    src1: Gpr::new(1),
                    src2: Gpr::new(31),
                    dest: Gpr::new(17),
                },
            });
        }
    }

    #[test]
    fn cmp_round_trip_all_conditions() {
        for cond in Cond::ALL {
            rt(Operation {
                tail: false,
                spec: true,
                pred: Pr::P0,
                kind: OpKind::IntCmp {
                    cond,
                    src1: Gpr::new(9),
                    src2: Gpr::new(10),
                    dest: Pr::new(11),
                },
            });
            rt(Operation {
                tail: false,
                spec: false,
                pred: Pr::P0,
                kind: OpKind::FloatCmp {
                    cond,
                    src1: Fpr::new(1),
                    src2: Fpr::new(2),
                    dest: Pr::new(3),
                },
            });
        }
    }

    #[test]
    fn load_imm_round_trip_extremes() {
        for imm in [0, 1, -1, IMM_MAX, IMM_MIN, 42_i32, -524_287] {
            for high in [false, true] {
                rt(Operation {
                    tail: true,
                    spec: false,
                    pred: Pr::P0,
                    kind: OpKind::LoadImm {
                        high,
                        imm,
                        dest: Gpr::new(5),
                    },
                });
            }
        }
    }

    #[test]
    #[should_panic]
    fn load_imm_overflow_panics() {
        Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::LoadImm {
                high: false,
                imm: IMM_MAX + 1,
                dest: Gpr::new(5),
            },
        }
        .encode();
    }

    #[test]
    fn float_round_trip_all_opcodes() {
        for op in FloatOpcode::ALL {
            rt(Operation {
                tail: true,
                spec: false,
                pred: Pr::new(30),
                kind: OpKind::Float {
                    op,
                    src1: Fpr::new(8),
                    src2: Fpr::new(9),
                    dest: Fpr::new(10),
                },
            });
        }
    }

    #[test]
    fn memory_round_trip() {
        for width in [
            MemWidth::Byte,
            MemWidth::Half,
            MemWidth::Word,
            MemWidth::Double,
        ] {
            rt(Operation {
                tail: false,
                spec: false,
                pred: Pr::P0,
                kind: OpKind::Load {
                    width,
                    base: Gpr::new(4),
                    lat: 2,
                    dest: Gpr::new(6),
                },
            });
            rt(Operation {
                tail: true,
                spec: false,
                pred: Pr::new(1),
                kind: OpKind::Store {
                    width,
                    base: Gpr::new(4),
                    value: Gpr::new(6),
                },
            });
        }
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::FLoad {
                base: Gpr::new(2),
                lat: 2,
                dest: Fpr::new(3),
            },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::FStore {
                base: Gpr::new(2),
                value: Fpr::new(3),
            },
        });
    }

    #[test]
    fn control_round_trip() {
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::new(7),
            kind: OpKind::Branch { target: 0xBEEF },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Call {
                target: 123,
                link: Gpr::LR,
            },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Ret { src: Gpr::LR },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Halt,
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Sys {
                code: SysCode::PrintInt,
                arg: Gpr::new(2),
            },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Sys {
                code: SysCode::PrintChar,
                arg: Gpr::new(2),
            },
        });
    }

    #[test]
    fn conversions_round_trip() {
        rt(Operation {
            tail: false,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::CvtIf {
                src: Gpr::new(3),
                dest: Fpr::new(4),
            },
        });
        rt(Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::CvtFi {
                src: Fpr::new(4),
                dest: Gpr::new(3),
            },
        });
    }

    #[test]
    fn decode_rejects_high_bits() {
        assert!(Operation::decode(1u64 << 40).is_err());
    }

    #[test]
    fn decode_rejects_undefined_opcodes() {
        // OPT=Int, OPCODE=31 is undefined.
        let mut w = 0u64;
        set_bits(&mut w, OPC_OFF, 5, 31);
        assert!(Operation::decode(w).is_err());
        // OPT=Mem, OPCODE=9 is undefined.
        let mut w = 0u64;
        set_bits(&mut w, OPT_OFF, 2, OpType::Mem as u64);
        set_bits(&mut w, OPC_OFF, 5, 9);
        assert!(Operation::decode(w).is_err());
        // OPT=Ctrl, OPCODE=29 is undefined.
        let mut w = 0u64;
        set_bits(&mut w, OPT_OFF, 2, OpType::Ctrl as u64);
        set_bits(&mut w, OPC_OFF, 5, 29);
        assert!(Operation::decode(w).is_err());
    }

    #[test]
    fn cond_negate_is_involution() {
        for c in Cond::ALL {
            assert_eq!(c.negate().negate(), c);
            for a in [-5i32, 0, 3] {
                for b in [-5i32, 0, 3] {
                    assert_eq!(c.eval(a, b), !c.negate().eval(a, b));
                }
            }
        }
    }

    #[test]
    fn cond_eval_unsigned() {
        assert!(Cond::Ltu.eval(5, -1)); // 5 < 0xFFFF_FFFF unsigned
        assert!(!Cond::Lt.eval(5, -1));
        assert!(Cond::Geu.eval(-1, 5));
    }

    #[test]
    fn ends_block_classification() {
        let p = Pr::P0;
        let mk = |kind| Operation {
            tail: true,
            spec: false,
            pred: p,
            kind,
        };
        assert!(mk(OpKind::Branch { target: 0 }).ends_block());
        assert!(mk(OpKind::Call {
            target: 0,
            link: Gpr::LR
        })
        .ends_block());
        assert!(mk(OpKind::Ret { src: Gpr::LR }).ends_block());
        assert!(mk(OpKind::Halt).ends_block());
        assert!(!mk(OpKind::Sys {
            code: SysCode::PrintInt,
            arg: Gpr::RV
        })
        .ends_block());
        assert!(!Operation::nop().ends_block());
    }

    #[test]
    fn mem_classification_and_latency() {
        let op = Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Load {
                width: MemWidth::Word,
                base: Gpr::SP,
                lat: 2,
                dest: Gpr::RV,
            },
        };
        assert!(op.is_mem());
        assert_eq!(op.latency(), 2);
        assert_eq!(Operation::nop().latency(), 1);
    }
}
