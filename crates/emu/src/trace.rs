//! Dynamic block traces and derived statistics.

use tepic_isa::wire::{WireError, WireReader, WireWriter};

/// Version stamp of the [`BlockTrace`] wire layout (artifact cache).
/// Bump when either the byte format *or* the emulator's tracing
/// semantics change, so stale cached traces miss instead of lying.
pub const TRACE_WIRE_VERSION: u32 = 1;

/// The sequence of basic-block ids executed by a program run. This is the
/// paper's "instruction address trace" at block granularity — exactly the
/// information the ATB-driven fetch engine needs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockTrace {
    blocks: Vec<u32>,
}

impl BlockTrace {
    /// Creates an empty trace.
    pub fn new() -> BlockTrace {
        BlockTrace::default()
    }

    /// Appends an executed block.
    pub fn push(&mut self, block: u32) {
        self.blocks.push(block);
    }

    /// The executed block ids in order.
    pub fn blocks(&self) -> &[u32] {
        &self.blocks
    }

    /// Number of block executions.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when nothing was executed.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates `(current, next)` pairs — the fetch engine's unit of work
    /// (the next block is what the ATB's predictor is judged against).
    pub fn transitions(&self) -> impl Iterator<Item = (u32, Option<u32>)> + '_ {
        (0..self.blocks.len()).map(move |i| (self.blocks[i], self.blocks.get(i + 1).copied()))
    }

    /// Per-block execution counts, sized to `num_blocks`.
    pub fn block_counts(&self, num_blocks: usize) -> Vec<u64> {
        let mut counts = vec![0u64; num_blocks];
        for &b in &self.blocks {
            counts[b as usize] += 1;
        }
        counts
    }

    /// Serializes the trace into the artifact-cache wire format:
    /// `u32 version, u64 len, u32 block-id ...`.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u32(TRACE_WIRE_VERSION);
        w.put_len(self.blocks.len());
        for &b in &self.blocks {
            w.put_u32(b);
        }
        w.into_bytes()
    }

    /// Deserializes a trace written by [`BlockTrace::to_wire_bytes`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation, trailing bytes or version mismatch.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<BlockTrace, WireError> {
        let mut r = WireReader::new(bytes);
        let version = r.get_u32()?;
        if version != TRACE_WIRE_VERSION {
            return Err(WireError::BadVersion(version));
        }
        let len = r.get_len()?;
        let mut blocks = Vec::with_capacity(len);
        for _ in 0..len {
            blocks.push(r.get_u32()?);
        }
        if !r.is_exhausted() {
            return Err(WireError::Invalid("trailing bytes after trace".into()));
        }
        Ok(BlockTrace { blocks })
    }
}

impl FromIterator<u32> for BlockTrace {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> BlockTrace {
        BlockTrace {
            blocks: iter.into_iter().collect(),
        }
    }
}

/// Aggregate statistics computed from a trace against its program.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TraceStats {
    /// Dynamic operations (all ops of every executed block).
    pub ops: u64,
    /// Dynamic MultiOps.
    pub mops: u64,
    /// Block executions.
    pub blocks: u64,
    /// Fraction of block transitions that were *not* simple fallthrough.
    pub taken_fraction: f64,
}

impl TraceStats {
    /// Computes statistics for `trace` over `program`.
    pub fn compute(program: &tepic_isa::Program, trace: &BlockTrace) -> TraceStats {
        let mut ops = 0u64;
        let mut mops = 0u64;
        let mut taken = 0u64;
        let mut transitions = 0u64;
        for (cur, next) in trace.transitions() {
            let info = &program.blocks()[cur as usize];
            ops += info.num_ops as u64;
            mops += info.num_mops as u64;
            if let Some(n) = next {
                transitions += 1;
                if n != cur + 1 {
                    taken += 1;
                }
            }
        }
        TraceStats {
            ops,
            mops,
            blocks: trace.len() as u64,
            taken_fraction: if transitions == 0 {
                0.0
            } else {
                taken as f64 / transitions as f64
            },
        }
    }

    /// Average dynamic MultiOp density (operations per MOP) — bounded by
    /// the 6-wide issue machine; the "Ideal" IPC of the cache study.
    pub fn avg_mop_density(&self) -> f64 {
        if self.mops == 0 {
            0.0
        } else {
            self.ops as f64 / self.mops as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_pair_blocks() {
        let t: BlockTrace = [1u32, 2, 5].into_iter().collect();
        let v: Vec<_> = t.transitions().collect();
        assert_eq!(v, vec![(1, Some(2)), (2, Some(5)), (5, None)]);
    }

    #[test]
    fn counts_per_block() {
        let t: BlockTrace = [0u32, 1, 0, 0].into_iter().collect();
        assert_eq!(t.block_counts(3), vec![3, 1, 0]);
    }

    #[test]
    fn empty_trace() {
        let t = BlockTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.transitions().count(), 0);
    }

    #[test]
    fn wire_roundtrip_and_corruption() {
        let t: BlockTrace = [3u32, 1, 4, 1, 5, 9, 2, 6].into_iter().collect();
        let bytes = t.to_wire_bytes();
        assert_eq!(BlockTrace::from_wire_bytes(&bytes).unwrap(), t);
        assert!(BlockTrace::from_wire_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(BlockTrace::from_wire_bytes(&extra).is_err());
        let mut vers = bytes;
        vers[0] ^= 0xff;
        assert!(matches!(
            BlockTrace::from_wire_bytes(&vers),
            Err(WireError::BadVersion(_))
        ));
    }
}
