//! Static and dynamic operation-mix statistics.
//!
//! The compression results all flow from the op distribution (the paper's
//! §2.2 discusses the skew — "the OpType/OpCode fields … are set to
//! INT_OpType and ADD OpCode very often"); this module measures it, both
//! statically over the image and dynamically weighted by the block trace.

use crate::trace::BlockTrace;
use tepic_isa::op::{OpKind, Operation};
use tepic_isa::Program;

/// Operation categories for mix reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpCategory {
    /// Integer ALU (including moves and immediates).
    IntAlu,
    /// Integer/float compares.
    Compare,
    /// Floating-point arithmetic and conversions.
    Float,
    /// Loads.
    Load,
    /// Stores.
    Store,
    /// Branches, calls, returns, halts.
    Control,
    /// Environment calls.
    Sys,
}

impl OpCategory {
    /// All categories, in report order.
    pub const ALL: [OpCategory; 7] = [
        OpCategory::IntAlu,
        OpCategory::Compare,
        OpCategory::Float,
        OpCategory::Load,
        OpCategory::Store,
        OpCategory::Control,
        OpCategory::Sys,
    ];

    /// Category of an operation.
    pub fn of(op: &Operation) -> OpCategory {
        match op.kind {
            OpKind::IntAlu { .. } | OpKind::LoadImm { .. } => OpCategory::IntAlu,
            OpKind::IntCmp { .. } | OpKind::FloatCmp { .. } => OpCategory::Compare,
            OpKind::Float { .. } | OpKind::CvtIf { .. } | OpKind::CvtFi { .. } => OpCategory::Float,
            OpKind::Load { .. } | OpKind::FLoad { .. } => OpCategory::Load,
            OpKind::Store { .. } | OpKind::FStore { .. } => OpCategory::Store,
            OpKind::Branch { .. } | OpKind::Call { .. } | OpKind::Ret { .. } | OpKind::Halt => {
                OpCategory::Control
            }
            OpKind::Sys { .. } => OpCategory::Sys,
        }
    }

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            OpCategory::IntAlu => "ialu",
            OpCategory::Compare => "cmp",
            OpCategory::Float => "float",
            OpCategory::Load => "load",
            OpCategory::Store => "store",
            OpCategory::Control => "ctrl",
            OpCategory::Sys => "sys",
        }
    }
}

/// Mix over the seven categories (counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpMix {
    counts: [u64; 7],
    total: u64,
}

impl OpMix {
    /// Static mix over a program image.
    pub fn static_mix(program: &Program) -> OpMix {
        let mut mix = OpMix::default();
        for op in program.ops() {
            mix.add(OpCategory::of(op), 1);
        }
        mix
    }

    /// Dynamic mix: static per-block mixes weighted by execution counts.
    pub fn dynamic_mix(program: &Program, trace: &BlockTrace) -> OpMix {
        let counts = trace.block_counts(program.num_blocks());
        let mut mix = OpMix::default();
        for (b, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            for op in program.block_ops(b) {
                mix.add(OpCategory::of(op), n);
            }
        }
        mix
    }

    fn add(&mut self, cat: OpCategory, n: u64) {
        let i = OpCategory::ALL
            .iter()
            .position(|&c| c == cat)
            .expect("category");
        self.counts[i] += n;
        self.total += n;
    }

    /// Count for a category.
    pub fn count(&self, cat: OpCategory) -> u64 {
        self.counts[OpCategory::ALL
            .iter()
            .position(|&c| c == cat)
            .expect("category")]
    }

    /// Fraction for a category (0 when empty).
    pub fn fraction(&self, cat: OpCategory) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(cat) as f64 / self.total as f64
        }
    }

    /// Total operations counted.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Emulator, Limits};

    fn compile(src: &str) -> Program {
        lego::compile(src, &lego::Options::default()).unwrap()
    }

    #[test]
    fn static_mix_counts_everything() {
        let p = compile("global a[4]; fn main() { a[0] = 1; print(a[0]); }");
        let mix = OpMix::static_mix(&p);
        assert_eq!(mix.total(), p.num_ops() as u64);
        assert!(mix.count(OpCategory::Store) >= 1);
        assert!(mix.count(OpCategory::Load) >= 1);
        assert!(mix.count(OpCategory::Sys) >= 1);
        assert!(mix.count(OpCategory::Control) >= 1, "main returns");
        let fsum: f64 = OpCategory::ALL.iter().map(|&c| mix.fraction(c)).sum();
        assert!((fsum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_mix_weights_hot_blocks() {
        let p = compile(
            "global a[64]; fn main() { var i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } }",
        );
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        let stat = OpMix::static_mix(&p);
        let dyn_ = OpMix::dynamic_mix(&p, &run.trace);
        assert_eq!(dyn_.total(), run.stats.ops);
        // The loop body stores every iteration: stores are hotter
        // dynamically than statically.
        assert!(dyn_.fraction(OpCategory::Store) > stat.fraction(OpCategory::Store) * 0.9);
        // Control ops (the loop branch) dominate dynamically vs a
        // straight-line reading.
        assert!(dyn_.fraction(OpCategory::Control) > 0.05);
    }

    #[test]
    fn sys_ops_counted_exactly() {
        // Straight-line code: each putc lowers to exactly one Sys op,
        // the implicit halt is the only Control op, and with a single
        // always-executed block the dynamic mix equals the static one.
        let p = compile("fn main() { putc(65); putc(66); putc(67); }");
        let stat = OpMix::static_mix(&p);
        assert_eq!(stat.count(OpCategory::Sys), 3);
        assert_eq!(stat.count(OpCategory::Control), 1, "just the halt");
        assert_eq!(stat.count(OpCategory::Compare), 0);
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        assert_eq!(OpMix::dynamic_mix(&p, &run.trace), stat);
    }

    #[test]
    fn control_edge_kinds_all_count() {
        // Call + ret + halt are the three Control ops in a single-call
        // program — branches, calls, returns and halts share a bucket.
        let p = compile("fn h(a, b) { return (a + b); }\nfn main() { print(h(1, 2)); }");
        let stat = OpMix::static_mix(&p);
        assert_eq!(stat.count(OpCategory::Control), 3, "call + ret + halt");
        assert_eq!(stat.count(OpCategory::Sys), 1, "the print");
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        assert_eq!(OpMix::dynamic_mix(&p, &run.trace), stat);
    }

    #[test]
    fn dead_code_splits_static_from_dynamic() {
        // A never-called function sits in the image (static mix sees its
        // float ops and its ret) but never executes: the dynamic mix
        // must report zero for it.
        let p = compile(
            "fn dead(a) { fvar x = 1.5; return int((float(a) * x)); }\nfn main() { putc(65); }",
        );
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        let stat = OpMix::static_mix(&p);
        let dy = OpMix::dynamic_mix(&p, &run.trace);
        assert_eq!(stat.count(OpCategory::Float), 3, "cvt + mul + cvt");
        assert_eq!(dy.count(OpCategory::Float), 0, "dead code never runs");
        assert_eq!(stat.count(OpCategory::Control), 2, "halt + dead ret");
        assert_eq!(dy.count(OpCategory::Control), 1, "only the halt runs");
    }

    #[test]
    fn loop_trip_count_weights_the_dynamic_mix() {
        // One static store in the loop body executes once per iteration;
        // the compare guarding the loop runs trips+1 times (ten entries
        // plus the failing exit check).
        let p = compile(
            "global a[16];\nfn main() { var i; for (i = 0; i < 10; i = (i + 1)) { a[i] = i; } }",
        );
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        let stat = OpMix::static_mix(&p);
        let dy = OpMix::dynamic_mix(&p, &run.trace);
        assert_eq!(stat.count(OpCategory::Store), 1);
        assert_eq!(dy.count(OpCategory::Store), 10, "one store per trip");
        assert_eq!(stat.count(OpCategory::Compare), 1);
        assert_eq!(dy.count(OpCategory::Compare), 11, "trips + exit check");
        assert_eq!(dy.total(), run.stats.ops, "trace weighting is exact");
    }

    #[test]
    fn float_workload_shows_float_ops() {
        let p = compile(
            "fn main() { fvar x = 1.0; var i; for (i = 0; i < 9; i = i + 1) { x = x * 1.5; } print(int(x)); }",
        );
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        let mix = OpMix::dynamic_mix(&p, &run.trace);
        assert!(mix.fraction(OpCategory::Float) > 0.02);
    }
}
