//! The emulated machine: registers, memory, MOP-at-a-time execution.

use crate::trace::{BlockTrace, TraceStats};
use std::fmt;
use tepic_isa::op::{FloatOpcode, IntOpcode, MemWidth, OpKind, Operation, SysCode};
use tepic_isa::regs::Gpr;
use tepic_isa::Program;

/// Size of the emulated flat memory.
pub const MEM_SIZE: u32 = 8 << 20;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = MEM_SIZE - 64;
/// Link value that terminates the program when returned to.
pub const RET_SENTINEL: u32 = 0xFFFF;

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum dynamic operations before aborting.
    pub max_ops: u64,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_ops: 200_000_000,
        }
    }
}

/// Runtime failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EmuError {
    /// Memory access outside the emulated space.
    BadAddress { addr: u32, block: u32 },
    /// Integer division or remainder by zero.
    DivByZero { block: u32 },
    /// Two operations in one MultiOp wrote the same register.
    WriteConflict { block: u32, what: String },
    /// The operation budget was exhausted.
    TooLong { max_ops: u64 },
    /// A return targeted a nonexistent block.
    BadReturn { target: u32 },
    /// Control fell off the end of the program.
    FellOffEnd { block: u32 },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::BadAddress { addr, block } => {
                write!(f, "bad memory address {addr:#x} in block {block}")
            }
            EmuError::DivByZero { block } => write!(f, "division by zero in block {block}"),
            EmuError::WriteConflict { block, what } => {
                write!(f, "same-cycle write conflict on {what} in block {block}")
            }
            EmuError::TooLong { max_ops } => write!(f, "exceeded {max_ops} operations"),
            EmuError::BadReturn { target } => write!(f, "return to nonexistent block {target}"),
            EmuError::FellOffEnd { block } => {
                write!(f, "control fell off the end after block {block}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// The outcome of a complete run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Program output (from `print`/`putc`).
    pub output: String,
    /// The dynamic block trace.
    pub trace: BlockTrace,
    /// Derived statistics.
    pub stats: TraceStats,
}

enum Write {
    Gpr(u8, i32),
    Fpr(u8, f32),
    Pr(u8, bool),
    Mem(u32, MemWidth, u32),
    FMem(u32, f32),
    Out(String),
}

/// Control decision taken by a block's final MultiOp.
enum Next {
    Fall,
    Goto(u32),
    Stop,
}

/// An executable machine instance bound to one program.
#[derive(Debug)]
pub struct Emulator<'p> {
    program: &'p Program,
    gpr: [i32; 32],
    fpr: [f32; 32],
    pr: [bool; 32],
    mem: Vec<u8>,
    output: String,
    ops_executed: u64,
}

impl<'p> Emulator<'p> {
    /// Creates a machine with the program's data segment loaded, the stack
    /// pointer at [`STACK_TOP`] and the link register at [`RET_SENTINEL`].
    pub fn new(program: &'p Program) -> Emulator<'p> {
        let mut mem = vec![0u8; MEM_SIZE as usize];
        let base = program.data_base() as usize;
        mem[base..base + program.data().len()].copy_from_slice(program.data());
        let mut gpr = [0i32; 32];
        gpr[Gpr::SP.index() as usize] = STACK_TOP as i32;
        gpr[Gpr::LR.index() as usize] = RET_SENTINEL as i32;
        let mut pr = [false; 32];
        pr[0] = true;
        Emulator {
            program,
            gpr,
            fpr: [0.0; 32],
            pr,
            mem,
            output: String::new(),
            ops_executed: 0,
        }
    }

    /// Runs from the program entry to completion.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError`] on runtime faults or when `limits.max_ops` is
    /// exceeded.
    pub fn run(mut self, limits: &Limits) -> Result<RunResult, EmuError> {
        let mut trace = BlockTrace::new();
        let mut block = self.program.entry() as u32;
        loop {
            trace.push(block);
            match self.exec_block(block, limits)? {
                Next::Stop => break,
                Next::Goto(t) => {
                    if t == RET_SENTINEL {
                        break;
                    }
                    if (t as usize) >= self.program.num_blocks() {
                        return Err(EmuError::BadReturn { target: t });
                    }
                    block = t;
                }
                Next::Fall => {
                    block += 1;
                    if (block as usize) >= self.program.num_blocks() {
                        return Err(EmuError::FellOffEnd { block: block - 1 });
                    }
                }
            }
        }
        let stats = TraceStats::compute(self.program, &trace);
        Ok(RunResult {
            output: self.output,
            trace,
            stats,
        })
    }

    /// Executes one block and reports where control goes next.
    fn exec_block(&mut self, block: u32, limits: &Limits) -> Result<Next, EmuError> {
        let info = self.program.blocks()[block as usize];
        self.ops_executed += info.num_ops as u64;
        if self.ops_executed > limits.max_ops {
            return Err(EmuError::TooLong {
                max_ops: limits.max_ops,
            });
        }
        let ops = self.program.block_ops(block as usize);
        let mut next = Next::Fall;
        let mut start = 0usize;
        for end in 0..ops.len() {
            if !ops[end].tail {
                continue;
            }
            let mop = &ops[start..=end];
            start = end + 1;
            if let Some(n) = self.exec_mop(block, mop)? {
                next = n;
            }
        }
        Ok(next)
    }

    /// Executes one MultiOp with read-before-write semantics. Returns the
    /// control decision if the MOP contained a taken transfer.
    fn exec_mop(&mut self, block: u32, mop: &[Operation]) -> Result<Option<Next>, EmuError> {
        let mut writes: Vec<Write> = Vec::with_capacity(mop.len());
        let mut next: Option<Next> = None;
        for op in mop {
            if !self.read_pr(op.pred.index()) {
                continue;
            }
            self.exec_op(block, op, &mut writes, &mut next)?;
        }
        // Detect same-cycle register write conflicts, then apply.
        let mut seen_g = [false; 32];
        let mut seen_f = [false; 32];
        let mut seen_p = [false; 32];
        for w in &writes {
            match *w {
                Write::Gpr(r, _) if r != 0 => {
                    if seen_g[r as usize] {
                        return Err(EmuError::WriteConflict {
                            block,
                            what: format!("r{r}"),
                        });
                    }
                    seen_g[r as usize] = true;
                }
                Write::Fpr(r, _) => {
                    if seen_f[r as usize] {
                        return Err(EmuError::WriteConflict {
                            block,
                            what: format!("f{r}"),
                        });
                    }
                    seen_f[r as usize] = true;
                }
                Write::Pr(r, _) if r != 0 => {
                    if seen_p[r as usize] {
                        return Err(EmuError::WriteConflict {
                            block,
                            what: format!("p{r}"),
                        });
                    }
                    seen_p[r as usize] = true;
                }
                _ => {}
            }
        }
        for w in writes {
            match w {
                Write::Gpr(r, v) => {
                    if r != 0 {
                        self.gpr[r as usize] = v;
                    }
                }
                Write::Fpr(r, v) => self.fpr[r as usize] = v,
                Write::Pr(r, v) => {
                    if r != 0 {
                        self.pr[r as usize] = v;
                    }
                }
                Write::Mem(addr, width, v) => self.store(block, addr, width, v)?,
                Write::FMem(addr, v) => self.store(block, addr, MemWidth::Word, v.to_bits())?,
                Write::Out(s) => self.output.push_str(&s),
            }
        }
        Ok(next)
    }

    fn exec_op(
        &self,
        block: u32,
        op: &Operation,
        writes: &mut Vec<Write>,
        next: &mut Option<Next>,
    ) -> Result<(), EmuError> {
        let g = |r: tepic_isa::regs::Gpr| self.read_gpr(r.index());
        let f = |r: tepic_isa::regs::Fpr| self.fpr[r.index() as usize];
        match op.kind {
            OpKind::IntAlu {
                op: alu,
                src1,
                src2,
                dest,
            } => {
                let (a, b) = (g(src1), g(src2));
                let v: i32 = match alu {
                    IntOpcode::Add => a.wrapping_add(b),
                    IntOpcode::Sub => a.wrapping_sub(b),
                    IntOpcode::Mul => a.wrapping_mul(b),
                    IntOpcode::Div => {
                        if b == 0 {
                            return Err(EmuError::DivByZero { block });
                        }
                        a.wrapping_div(b)
                    }
                    IntOpcode::Rem => {
                        if b == 0 {
                            return Err(EmuError::DivByZero { block });
                        }
                        a.wrapping_rem(b)
                    }
                    IntOpcode::And => a & b,
                    IntOpcode::Or => a | b,
                    IntOpcode::Xor => a ^ b,
                    IntOpcode::Shl => a.wrapping_shl(b as u32 & 31),
                    IntOpcode::Shr => ((a as u32).wrapping_shr(b as u32 & 31)) as i32,
                    IntOpcode::Sra => a.wrapping_shr(b as u32 & 31),
                    IntOpcode::Mov => a,
                    IntOpcode::Not => !a,
                    IntOpcode::Min => a.min(b),
                    IntOpcode::Max => a.max(b),
                };
                writes.push(Write::Gpr(dest.index(), v));
            }
            OpKind::IntCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                writes.push(Write::Pr(dest.index(), cond.eval(g(src1), g(src2))));
            }
            OpKind::FloatCmp {
                cond,
                src1,
                src2,
                dest,
            } => {
                writes.push(Write::Pr(dest.index(), cond.eval_f32(f(src1), f(src2))));
            }
            OpKind::LoadImm { high, imm, dest } => {
                let v = if high { imm << 12 } else { imm };
                writes.push(Write::Gpr(dest.index(), v));
            }
            OpKind::Float {
                op: fop,
                src1,
                src2,
                dest,
            } => {
                let (a, b) = (f(src1), f(src2));
                let v = match fop {
                    FloatOpcode::Fadd => a + b,
                    FloatOpcode::Fsub => a - b,
                    FloatOpcode::Fmul => a * b,
                    FloatOpcode::Fdiv => a / b,
                    FloatOpcode::Fneg => -a,
                    FloatOpcode::Fabs => a.abs(),
                    FloatOpcode::Fmin => a.min(b),
                    FloatOpcode::Fmax => a.max(b),
                    FloatOpcode::Fmov => a,
                };
                writes.push(Write::Fpr(dest.index(), v));
            }
            OpKind::CvtIf { src, dest } => {
                writes.push(Write::Fpr(dest.index(), g(src) as f32));
            }
            OpKind::CvtFi { src, dest } => {
                let x = f(src);
                let v = if x.is_nan() { 0 } else { x as i32 };
                writes.push(Write::Gpr(dest.index(), v));
            }
            OpKind::Load {
                width, base, dest, ..
            } => {
                let addr = g(base) as u32;
                let raw = self.load(block, addr, width)?;
                let v = match width {
                    MemWidth::Byte => raw as u8 as i32,         // zero-extend
                    MemWidth::Half => raw as u16 as i16 as i32, // sign-extend
                    _ => raw as i32,
                };
                writes.push(Write::Gpr(dest.index(), v));
            }
            OpKind::Store { width, base, value } => {
                writes.push(Write::Mem(g(base) as u32, width, g(value) as u32));
            }
            OpKind::FLoad { base, dest, .. } => {
                let raw = self.load(block, g(base) as u32, MemWidth::Word)?;
                writes.push(Write::Fpr(dest.index(), f32::from_bits(raw)));
            }
            OpKind::FStore { base, value } => {
                writes.push(Write::FMem(g(base) as u32, f(value)));
            }
            OpKind::Branch { target } => {
                *next = Some(Next::Goto(target as u32));
            }
            OpKind::Call { target, link } => {
                writes.push(Write::Gpr(link.index(), (block + 1) as i32));
                *next = Some(Next::Goto(target as u32));
            }
            OpKind::Ret { src } => {
                *next = Some(Next::Goto(g(src) as u32));
            }
            OpKind::Halt => {
                *next = Some(Next::Stop);
            }
            OpKind::Sys { code, arg } => {
                let v = g(arg);
                let s = match code {
                    SysCode::PrintInt => format!("{v}\n"),
                    SysCode::PrintChar => ((v as u8) as char).to_string(),
                };
                writes.push(Write::Out(s));
            }
        }
        Ok(())
    }

    fn read_gpr(&self, r: u8) -> i32 {
        if r == 0 {
            0
        } else {
            self.gpr[r as usize]
        }
    }

    fn read_pr(&self, r: u8) -> bool {
        if r == 0 {
            true
        } else {
            self.pr[r as usize]
        }
    }

    fn load(&self, block: u32, addr: u32, width: MemWidth) -> Result<u32, EmuError> {
        let n = width.bytes().min(4);
        if addr as usize + n > self.mem.len() {
            return Err(EmuError::BadAddress { addr, block });
        }
        let mut buf = [0u8; 4];
        buf[..n].copy_from_slice(&self.mem[addr as usize..addr as usize + n]);
        Ok(u32::from_le_bytes(buf))
    }

    fn store(
        &mut self,
        block: u32,
        addr: u32,
        width: MemWidth,
        value: u32,
    ) -> Result<(), EmuError> {
        let n = width.bytes().min(4);
        if addr as usize + n > self.mem.len() {
            return Err(EmuError::BadAddress { addr, block });
        }
        self.mem[addr as usize..addr as usize + n].copy_from_slice(&value.to_le_bytes()[..n]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lego::{compile, Options};

    fn run_src(src: &str) -> RunResult {
        let p = compile(src, &Options::default()).expect("compiles");
        Emulator::new(&p).run(&Limits::default()).expect("runs")
    }

    #[test]
    fn arithmetic_and_print() {
        let r = run_src("fn main() { print(2 + 3 * 4); print(10 / 3); print(10 % 3); }");
        assert_eq!(r.output, "14\n3\n1\n");
    }

    #[test]
    fn negative_numbers_and_bitops() {
        let r = run_src(
            "fn main() { print(0 - 7); print(5 & 3); print(5 | 3); print(5 ^ 3); print(~0); print(1 << 10); print(1024 >> 3); }",
        );
        assert_eq!(r.output, "-7\n1\n7\n6\n-1\n1024\n128\n");
    }

    #[test]
    fn loops_accumulate() {
        let r = run_src(
            "fn main() { var i; var s = 0; for (i = 1; i <= 100; i = i + 1) { s = s + i; } print(s); }",
        );
        assert_eq!(r.output, "5050\n");
        assert!(r.trace.len() > 100, "loop iterations appear in the trace");
    }

    #[test]
    fn branches_and_boolean_values() {
        let r = run_src(
            r#"
            fn main() {
                var x = 5;
                if (x > 3 && x < 10) { print(1); } else { print(0); }
                if (x == 5 || x == 6) { print(2); }
                var b = !(x < 3);
                print(b);
            }
        "#,
        );
        assert_eq!(r.output, "1\n2\n1\n");
    }

    #[test]
    fn arrays_and_globals() {
        let r = run_src(
            r#"
            global a[10];
            global scalar = 99;
            bglobal msg[6] = "ok";
            fn main() {
                var i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
                print(a[7]);
                print(scalar);
                putc(msg[0]); putc(msg[1]); putc(10);
            }
        "#,
        );
        assert_eq!(r.output, "49\n99\nok\n");
    }

    #[test]
    fn calls_and_recursion() {
        let r = run_src(
            r#"
            fn main() { print(fib(15)); print(fact(6)); }
            fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
            fn fact(n) { if (n <= 1) { return 1; } return n * fact(n-1); }
        "#,
        );
        assert_eq!(r.output, "610\n720\n");
    }

    #[test]
    fn deep_recursion_uses_stack() {
        let r = run_src(
            r#"
            fn main() { print(depth(1000)); }
            fn depth(n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
        "#,
        );
        assert_eq!(r.output, "1000\n");
    }

    #[test]
    fn floats_work() {
        let r = run_src(
            r#"
            fglobal fs[2];
            fn main() {
                fvar x = 1.5;
                fvar y = 2.25;
                fs[0] = x * y + 0.125;
                print(int(fs[0] * 1000.0));
                fvar z = 0.0 - 3.5;
                print(int(z));
            }
        "#,
        );
        assert_eq!(r.output, "3500\n-3\n");
    }

    #[test]
    fn byte_and_word_memory() {
        let r = run_src(
            r#"
            bglobal b[4];
            global w[2];
            fn main() {
                b[0] = 250;      // stays unsigned on reload
                b[1] = 300;      // truncates to 44
                w[0] = 100000;
                print(b[0]); print(b[1]); print(w[0]);
            }
        "#,
        );
        assert_eq!(r.output, "250\n44\n100000\n");
    }

    #[test]
    fn division_by_zero_detected() {
        let p = compile(
            "fn main() { var z = 0; print(5 / z); }",
            &Options::default(),
        )
        .unwrap();
        let err = Emulator::new(&p).run(&Limits::default()).unwrap_err();
        assert!(matches!(err, EmuError::DivByZero { .. }));
    }

    #[test]
    fn op_budget_enforced() {
        let p = compile(
            "fn main() { var i = 0; while (i < 1000000) { i = i + 1; } }",
            &Options::default(),
        )
        .unwrap();
        let err = Emulator::new(&p)
            .run(&Limits { max_ops: 10_000 })
            .unwrap_err();
        assert!(matches!(err, EmuError::TooLong { .. }));
    }

    #[test]
    fn trace_stats_are_consistent() {
        let r = run_src("fn main() { var i; for (i = 0; i < 50; i = i + 1) { print(i); } }");
        assert_eq!(r.stats.blocks, r.trace.len() as u64);
        assert!(r.stats.ops >= r.stats.mops);
        let d = r.stats.avg_mop_density();
        assert!((1.0..=6.0).contains(&d), "MOP density {d} out of range");
        assert!(r.stats.taken_fraction > 0.0, "loop back edges are taken");
    }

    #[test]
    fn unoptimized_code_matches_optimized_output() {
        let src = r#"
            global a[32];
            fn main() {
                var i; var s = 0;
                for (i = 0; i < 32; i = i + 1) { a[i] = i * 3 - 7; }
                for (i = 0; i < 32; i = i + 1) { s = s + a[i]; }
                print(s);
                print(sum3(4, 5, 6));
            }
            fn sum3(a1, b1, c1) { return a1 + b1 + c1; }
        "#;
        let o1 = run_src(src).output;
        let p2 = compile(
            src,
            &Options {
                optimize: false,
                ..Options::default()
            },
        )
        .unwrap();
        let o2 = Emulator::new(&p2).run(&Limits::default()).unwrap().output;
        assert_eq!(o1, o2);
    }
}

#[cfg(test)]
mod vliw_semantics_tests {
    use super::*;
    use tepic_isa::op::{IntOpcode, OpKind, Operation};
    use tepic_isa::regs::{Gpr, Pr};
    use tepic_isa::{BlockInfo, FuncInfo, Program};

    fn prog(ops: Vec<Operation>) -> Program {
        let n = ops.len();
        let mops = ops.iter().filter(|o| o.tail).count();
        Program::new(
            ops,
            vec![BlockInfo {
                first_op: 0,
                num_ops: n,
                num_mops: mops,
                func: 0,
            }],
            vec![FuncInfo {
                name: "main".into(),
                first_block: 0,
                num_blocks: 1,
            }],
            0,
            vec![],
            0x1_0000,
        )
        .unwrap()
    }

    fn ldi(tail: bool, dest: u8, imm: i32) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::LoadImm {
                high: false,
                imm,
                dest: Gpr::new(dest),
            },
        }
    }

    fn add(tail: bool, dest: u8, a: u8, b: u8) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::IntAlu {
                op: IntOpcode::Add,
                src1: Gpr::new(a),
                src2: Gpr::new(b),
                dest: Gpr::new(dest),
            },
        }
    }

    fn sys_print(tail: bool, reg: u8) -> Operation {
        Operation {
            tail,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Sys {
                code: tepic_isa::op::SysCode::PrintInt,
                arg: Gpr::new(reg),
            },
        }
    }

    fn halt() -> Operation {
        Operation {
            tail: true,
            spec: false,
            pred: Pr::P0,
            kind: OpKind::Halt,
        }
    }

    #[test]
    fn same_cycle_raw_reads_old_value() {
        // MOP 1: r8 = 5. MOP 2: [r9 = r8 + r8 ; r8 = 100] — the add must
        // read the pre-cycle r8 (5), not 100.
        let p = prog(vec![
            ldi(true, 8, 5),
            add(false, 9, 8, 8),
            ldi(true, 8, 100),
            sys_print(true, 9),
            halt(),
        ]);
        let r = Emulator::new(&p).run(&Limits::default()).unwrap();
        assert_eq!(r.output, "10\n", "read-before-write semantics violated");
    }

    #[test]
    fn same_cycle_write_conflict_is_detected() {
        // Two writes to r8 in one MOP is a scheduler bug the machine
        // must refuse to paper over.
        let p = prog(vec![ldi(false, 8, 1), ldi(true, 8, 2), halt()]);
        let err = Emulator::new(&p).run(&Limits::default()).unwrap_err();
        assert!(matches!(err, EmuError::WriteConflict { .. }), "got {err:?}");
    }

    #[test]
    fn predicated_false_op_is_skipped() {
        // p1 is false at reset; the guarded write must not land.
        let guarded = Operation {
            tail: true,
            spec: false,
            pred: Pr::new(1),
            kind: OpKind::LoadImm {
                high: false,
                imm: 42,
                dest: Gpr::new(8),
            },
        };
        let p = prog(vec![ldi(true, 8, 7), guarded, sys_print(true, 8), halt()]);
        let r = Emulator::new(&p).run(&Limits::default()).unwrap();
        assert_eq!(r.output, "7\n", "false-predicated op must be skipped");
    }

    #[test]
    fn writes_to_r0_are_ignored() {
        let p = prog(vec![ldi(true, 0, 99), sys_print(true, 0), halt()]);
        let r = Emulator::new(&p).run(&Limits::default()).unwrap();
        assert_eq!(r.output, "0\n", "r0 must stay hardwired to zero");
    }

    #[test]
    fn bad_memory_access_is_reported() {
        // Load from an address far outside the emulated space.
        let ops = vec![
            ldi(true, 8, 0x7FFFF),
            Operation {
                tail: true,
                spec: false,
                pred: Pr::P0,
                kind: OpKind::IntAlu {
                    op: IntOpcode::Mul,
                    src1: Gpr::new(8),
                    src2: Gpr::new(8),
                    dest: Gpr::new(8),
                },
            },
            Operation {
                tail: true,
                spec: false,
                pred: Pr::P0,
                kind: OpKind::Load {
                    width: tepic_isa::op::MemWidth::Word,
                    base: Gpr::new(8),
                    lat: 2,
                    dest: Gpr::new(9),
                },
            },
            halt(),
        ];
        let p = prog(ops);
        let err = Emulator::new(&p).run(&Limits::default()).unwrap_err();
        assert!(matches!(err, EmuError::BadAddress { .. }), "got {err:?}");
    }
}
