//! # yula — the TEPIC emulator
//!
//! Executes linked [`tepic_isa::Program`]s with faithful VLIW semantics
//! and produces the dynamic *block trace* consumed by the instruction
//! fetch simulator (the role of the TINKER YULA tool in the paper, §2.1).
//!
//! Semantics:
//!
//! * execution proceeds **MultiOp by MultiOp**: every operation in a MOP
//!   reads machine state as of the start of the cycle, and all writes
//!   apply together at its end — so a mis-scheduled same-cycle RAW
//!   dependence is *observable* as wrong output, and two same-cycle writes
//!   to one register are reported as an error;
//! * control transfers only occur at block ends (atomic-block fetch,
//!   paper §3.1); a predicated branch whose guard is false falls through;
//! * `r0` reads as zero (writes ignored), `p0` reads as true;
//! * calls write the *fall-through block index* to their link register;
//!   returning to [`RET_SENTINEL`] terminates the program (how `main`
//!   exits);
//! * byte loads zero-extend, half-word loads sign-extend.
//!
//! # Example
//!
//! ```
//! use yula::{Emulator, Limits};
//!
//! let p = lego::compile("fn main() { print(6 * 7); }", &lego::Options::default()).unwrap();
//! let result = Emulator::new(&p).run(&Limits::default()).unwrap();
//! assert_eq!(result.output, "42\n");
//! assert!(result.trace.len() > 0);
//! ```

mod machine;
pub mod opmix;
mod trace;

pub use machine::{EmuError, Emulator, Limits, RunResult, MEM_SIZE, RET_SENTINEL, STACK_TOP};
pub use opmix::{OpCategory, OpMix};
pub use trace::{BlockTrace, TraceStats, TRACE_WIRE_VERSION};

/// Compiles-and-runs convenience used everywhere in tests and benches.
///
/// # Errors
///
/// Propagates [`EmuError`].
pub fn run_program(program: &tepic_isa::Program, limits: &Limits) -> Result<RunResult, EmuError> {
    Emulator::new(program).run(limits)
}
