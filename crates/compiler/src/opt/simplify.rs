//! CFG simplification: jump threading through trivial blocks and
//! unreachable-block elimination.
//!
//! A *trivial* block has no instructions and ends in an unconditional
//! jump; branches to it are retargeted to its destination. Unreachable
//! blocks are emptied in place (block indices stay stable, so no
//! renumbering is needed; empty unreachable blocks cost nothing
//! downstream because machine emission drops empty blocks).

use std::collections::HashSet;
use tinker_ir::{BlockRef, Function, Terminator};

/// Runs the pass; returns true when anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    changed |= thread_jumps(f);
    changed |= drop_unreachable(f);
    changed |= merge_straightline(f);
    changed
}

/// Resolves chains of empty jump-only blocks.
fn thread_jumps(f: &mut Function) -> bool {
    let n = f.blocks.len();
    // target[b] = ultimate destination when b is trivial.
    let mut resolve: Vec<BlockRef> = (0..n as u32).map(BlockRef).collect();
    for b in (0..n).rev() {
        let blk = &f.blocks[b];
        if blk.insts.is_empty() {
            if let Terminator::Jump(t) = blk.term {
                // Avoid cycles of empty blocks (infinite empty loop).
                let r = resolve[t.0 as usize];
                if r.0 as usize != b {
                    resolve[b] = r;
                }
            }
        }
    }
    let mut changed = false;
    for b in 0..n {
        let term = &mut f.blocks[b].term;
        match term {
            Terminator::Jump(t) => {
                let r = resolve[t.0 as usize];
                if r != *t {
                    *t = r;
                    changed = true;
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                let rt = resolve[then_bb.0 as usize];
                let re = resolve[else_bb.0 as usize];
                if rt != *then_bb {
                    *then_bb = rt;
                    changed = true;
                }
                if re != *else_bb {
                    *else_bb = re;
                    changed = true;
                }
                // Both arms equal → plain jump.
                if *then_bb == *else_bb {
                    let t = *then_bb;
                    *term = Terminator::Jump(t);
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

/// Empties blocks unreachable from the entry.
fn drop_unreachable(f: &mut Function) -> bool {
    let n = f.blocks.len();
    let mut seen = HashSet::new();
    let mut work = vec![f.entry()];
    while let Some(b) = work.pop() {
        if !seen.insert(b.0) {
            continue;
        }
        for s in f.block(b).term.successors() {
            work.push(s);
        }
    }
    let mut changed = false;
    for b in 0..n {
        if !seen.contains(&(b as u32)) {
            let blk = &mut f.blocks[b];
            if !blk.insts.is_empty() || blk.term != Terminator::Halt {
                blk.insts.clear();
                blk.term = Terminator::Halt;
                changed = true;
            }
        }
    }
    changed
}

/// Merges a block with its unique successor when that successor has no
/// other predecessors (classic straight-line merging). Improves block
/// sizes (the paper's atomic fetch unit) without changing semantics.
fn merge_straightline(f: &mut Function) -> bool {
    // Predecessor counts.
    let n = f.blocks.len();
    let mut pred_count = vec![0usize; n];
    for b in 0..n {
        for s in f.blocks[b].term.successors() {
            pred_count[s.0 as usize] += 1;
        }
    }
    let mut changed = false;
    for b in 0..n {
        while let Terminator::Jump(t) = f.blocks[b].term {
            let ti = t.0 as usize;
            if ti == b || pred_count[ti] != 1 || ti == f.entry().0 as usize {
                break;
            }
            // Splice successor into b.
            let succ_insts = std::mem::take(&mut f.blocks[ti].insts);
            let succ_term = std::mem::replace(&mut f.blocks[ti].term, Terminator::Halt);
            let blk = &mut f.blocks[b];
            blk.insts.extend(succ_insts);
            blk.term = succ_term;
            pred_count[ti] = 0;
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{Cond, FunctionBuilder, RegClass};

    #[test]
    fn threads_through_empty_block() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let mid = b.new_block();
        let end = b.new_block();
        let p = b.param(0);
        b.set_term(e, Terminator::Jump(mid));
        b.set_term(mid, Terminator::Jump(end));
        b.set_term(end, Terminator::Ret(Some(p)));
        let mut f = b.finish();
        assert!(run(&mut f));
        // After threading + merging, the entry goes straight to (or
        // contains) the return.
        match &f.blocks[0].term {
            Terminator::Ret(_) => {}
            Terminator::Jump(t) => assert_eq!(*t, end),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn condbr_same_arms_becomes_jump() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let stub1 = b.new_block();
        let stub2 = b.new_block();
        let end = b.new_block();
        let p0 = b.param(0);
        let z = b.iconst(e, 0);
        let p = b.icmp(e, Cond::Lt, p0, z);
        b.set_term(
            e,
            Terminator::CondBr {
                pred: p,
                then_bb: stub1,
                else_bb: stub2,
            },
        );
        b.set_term(stub1, Terminator::Jump(end));
        b.set_term(stub2, Terminator::Jump(end));
        b.set_term(end, Terminator::Ret(Some(p0)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            f.blocks[0].term,
            Terminator::Jump(_) | Terminator::Ret(_)
        ));
    }

    #[test]
    fn unreachable_blocks_emptied() {
        let mut b = FunctionBuilder::new("f", 0, None);
        let e = b.entry();
        b.set_term(e, Terminator::Ret(None));
        let orphan = b.new_block();
        let one = b.iconst(orphan, 1);
        b.set_term(orphan, Terminator::Ret(Some(one)));
        let mut f = b.finish();
        // fix class: orphan returns Some but f ret None → make it valid
        f.blocks[orphan.0 as usize].term = Terminator::Ret(None);
        assert!(run(&mut f));
        assert!(f.blocks[orphan.0 as usize].insts.is_empty());
        assert_eq!(f.blocks[orphan.0 as usize].term, Terminator::Halt);
    }

    #[test]
    fn merges_single_pred_chain() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let nxt = b.new_block();
        let p = b.param(0);
        let v = b.iconst(e, 1);
        b.set_term(e, Terminator::Jump(nxt));
        let s = b.ibin(nxt, tinker_ir::IBinOp::Add, p, v);
        b.set_term(nxt, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(f.blocks[0].term, Terminator::Ret(_)));
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn does_not_merge_into_loop_header() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.set_term(e, Terminator::Jump(head));
        let p0 = b.param(0);
        let z = b.iconst(head, 0);
        let p = b.icmp(head, Cond::Gt, p0, z);
        b.set_term(
            head,
            Terminator::CondBr {
                pred: p,
                then_bb: body,
                else_bb: exit,
            },
        );
        b.set_term(body, Terminator::Jump(head));
        b.set_term(exit, Terminator::Ret(Some(p0)));
        let mut f = b.finish();
        run(&mut f);
        // head has two predecessors; entry must still jump to it.
        assert_eq!(f.blocks[0].term, Terminator::Jump(head));
    }
}
