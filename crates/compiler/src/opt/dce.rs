//! Global dead-code elimination.
//!
//! Backward liveness fixpoint over the CFG; a side-effect-free
//! instruction whose destination is dead after it is removed. Calls keep
//! their side effects but drop an unused return value binding.

use std::collections::HashSet;
use tinker_ir::{Function, Inst};

/// Runs the pass; returns true when anything changed.
pub fn run(f: &mut Function) -> bool {
    let nb = f.blocks.len();
    // Block-level liveness over vreg ids.
    let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
    let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
    let succs: Vec<Vec<u32>> = f
        .blocks
        .iter()
        .map(|b| b.term.successors().iter().map(|s| s.0).collect())
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out: HashSet<u32> = HashSet::new();
            for &s in &succs[bi] {
                out.extend(live_in[s as usize].iter().copied());
            }
            // Backward through the block.
            let mut live = out.clone();
            let block = &f.blocks[bi];
            for v in block.term.uses() {
                live.insert(v.0);
            }
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.def() {
                    live.remove(&d.0);
                }
                for u in inst.uses() {
                    live.insert(u.0);
                }
            }
            if out != live_out[bi] || live != live_in[bi] {
                changed = true;
                live_out[bi] = out;
                live_in[bi] = live;
            }
        }
    }

    // Sweep: delete dead side-effect-free instructions.
    let mut any = false;
    #[allow(clippy::needless_range_loop)] // parallel access to f.blocks[bi]
    for bi in 0..nb {
        let mut live = live_out[bi].clone();
        for v in f.blocks[bi].term.uses() {
            live.insert(v.0);
        }
        let block = &mut f.blocks[bi];
        let mut keep: Vec<bool> = vec![true; block.insts.len()];
        for (i, inst) in block.insts.iter_mut().enumerate().rev() {
            let dead_def = inst.def().map(|d| !live.contains(&d.0)).unwrap_or(false);
            if dead_def && !inst.has_side_effects() {
                keep[i] = false;
                any = true;
                continue; // its uses do not become live
            }
            if dead_def {
                // A call with an unused return value keeps its effects.
                if let Inst::Call { ret, .. } = inst {
                    *ret = None;
                }
            }
            if let Some(d) = inst.def() {
                live.remove(&d.0);
            }
            for u in inst.uses() {
                live.insert(u.0);
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{FunctionBuilder, IBinOp, Module, RegClass, Terminator, Width};

    #[test]
    fn removes_dead_arithmetic() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let _dead = b.ibin(e, IBinOp::Add, p, p);
        b.set_term(e, Terminator::Ret(Some(p)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(f.blocks[0].insts.is_empty());
    }

    #[test]
    fn keeps_stores_and_sys() {
        let mut b = FunctionBuilder::new("f", 1, None);
        let e = b.entry();
        let p = b.param(0);
        b.store(e, Width::Word, p, 0, p);
        b.push(
            e,
            Inst::Sys {
                code: tinker_ir::SysCode::PrintInt,
                arg: p,
            },
        );
        b.set_term(e, Terminator::Ret(None));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 2);
    }

    #[test]
    fn keeps_call_but_drops_unused_ret() {
        let mut m = Module::new();
        let callee = m.add_func(FunctionBuilder::new("g", 0, Some(RegClass::Int)).finish());
        let mut b = FunctionBuilder::new("f", 0, None);
        let e = b.entry();
        let _r = b.call(e, callee, vec![], Some(RegClass::Int));
        b.set_term(e, Terminator::Ret(None));
        let mut f = b.finish();
        assert!(!run(&mut f) || !f.blocks[0].insts.is_empty());
        match &f.blocks[0].insts[0] {
            Inst::Call { ret, .. } => assert!(ret.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keeps_values_live_across_blocks() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let v = b.ibin(e, IBinOp::Add, p, p); // used in the next block
        let nxt = b.new_block();
        b.set_term(e, Terminator::Jump(nxt));
        b.set_term(nxt, Terminator::Ret(Some(v)));
        let mut f = b.finish();
        assert!(!run(&mut f), "nothing should be removed");
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn chains_of_dead_code_removed_in_one_run() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let a = b.ibin(e, IBinOp::Add, p, p);
        let c = b.ibin(e, IBinOp::Mul, a, a);
        let _d = b.ibin(e, IBinOp::Sub, c, a);
        b.set_term(e, Terminator::Ret(Some(p)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(f.blocks[0].insts.is_empty(), "whole dead chain removed");
    }
}
