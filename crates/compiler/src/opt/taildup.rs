//! Tail duplication — enlarging basic blocks by cloning small join
//! blocks into their jump predecessors.
//!
//! The paper's §1 notes that the VLIW/superscalar code-size gap is kept
//! down "by restricting code duplication in the compiler to RISC-like
//! levels": duplication buys larger atomic fetch blocks (fewer block
//! boundaries, fewer prediction points, denser MOPs) at the price of ROM
//! bytes — the exact currency this paper is about. The pass is therefore
//! off by default and driven by [`crate::Options::tail_duplicate`]; the
//! `ext_tail_duplication` experiment quantifies the trade.
//!
//! Mechanics: a block `J` with several predecessors and at most
//! `max_insts` instructions is cloned into every predecessor that ends
//! in an unconditional `Jump(J)` (the clone simply replaces the jump).
//! Registers are *not* renamed — the IR is not SSA, and the clones live
//! on disjoint control paths, so the copied assignments are semantically
//! identical. Unreachable originals are swept by the CFG simplifier.

use tinker_ir::{BlockRef, Function, Terminator};

/// Runs one round of tail duplication; returns true when anything
/// changed. Self-loops are never duplicated.
pub fn run(f: &mut Function, max_insts: usize) -> bool {
    let n = f.blocks.len();
    // Predecessor counts (entry gets a virtual one).
    let mut preds: Vec<Vec<BlockRef>> = vec![Vec::new(); n];
    for b in f.block_refs() {
        for s in f.block(b).term.successors() {
            preds[s.0 as usize].push(b);
        }
    }
    let mut changed = false;
    for j in 0..n as u32 {
        let jref = BlockRef(j);
        if preds[j as usize].len() < 2 {
            continue;
        }
        let jb = f.block(jref);
        if jb.insts.len() > max_insts {
            continue;
        }
        // Never duplicate a block that can reach itself in one step (the
        // clone would grow a loop body every round).
        if jb.term.successors().contains(&jref) {
            continue;
        }
        let insts = jb.insts.clone();
        let term = jb.term.clone();
        for &p in &preds[j as usize] {
            if p == jref {
                continue;
            }
            let pb = f.block_mut(p);
            if pb.term == Terminator::Jump(jref) {
                pb.insts.extend(insts.iter().cloned());
                pb.term = term.clone();
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{Cond, FunctionBuilder, IBinOp, Module, RegClass, SysCode, Terminator};

    /// Diamond whose join block prints — classic tail-dup target.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let t = b.new_block();
        let el = b.new_block();
        let join = b.new_block();
        let p0 = b.param(0);
        let z = b.iconst(e, 0);
        let p = b.icmp(e, Cond::Gt, p0, z);
        b.set_term(
            e,
            Terminator::CondBr {
                pred: p,
                then_bb: t,
                else_bb: el,
            },
        );
        let one = b.iconst(t, 1);
        b.push(
            t,
            tinker_ir::Inst::IUn {
                op: tinker_ir::IUnOp::Mov,
                dst: p0,
                a: one,
            },
        );
        b.set_term(t, Terminator::Jump(join));
        let two = b.iconst(el, 2);
        b.push(
            el,
            tinker_ir::Inst::IUn {
                op: tinker_ir::IUnOp::Mov,
                dst: p0,
                a: two,
            },
        );
        b.set_term(el, Terminator::Jump(join));
        let s = b.ibin(join, IBinOp::Add, p0, p0);
        b.push(
            join,
            tinker_ir::Inst::Sys {
                code: SysCode::PrintInt,
                arg: s,
            },
        );
        b.set_term(join, Terminator::Ret(Some(s)));
        b.finish()
    }

    #[test]
    fn duplicates_join_into_both_arms() {
        let mut f = diamond();
        assert!(run(&mut f, 8));
        // Both arms now end in Ret (the join's terminator).
        assert!(matches!(f.blocks[1].term, Terminator::Ret(_)));
        assert!(matches!(f.blocks[2].term, Terminator::Ret(_)));
        // And contain the join's instructions.
        assert!(f.blocks[1].insts.len() >= 4);
        let mut m = Module::new();
        m.add_func(f);
        m.verify().expect("still valid IR");
    }

    #[test]
    fn respects_size_threshold() {
        let mut f = diamond();
        assert!(!run(&mut f, 1), "join has 2 insts; threshold 1 must refuse");
        assert!(matches!(f.blocks[1].term, Terminator::Jump(_)));
    }

    #[test]
    fn never_duplicates_self_loops() {
        let mut b = FunctionBuilder::new("f", 1, None);
        let e = b.entry();
        let l = b.new_block();
        b.set_term(e, Terminator::Jump(l));
        let p0 = b.param(0);
        let z = b.iconst(l, 0);
        let p = b.icmp(l, Cond::Gt, p0, z);
        let exit = b.new_block();
        b.set_term(
            l,
            Terminator::CondBr {
                pred: p,
                then_bb: l,
                else_bb: exit,
            },
        );
        b.set_term(exit, Terminator::Ret(None));
        let mut f = b.finish();
        assert!(!run(&mut f, 16), "self-looping block must not be cloned");
    }

    #[test]
    fn conditional_predecessors_keep_the_original() {
        // A join reached by a CondBr arm keeps the original block; only
        // Jump predecessors get clones.
        let mut f = diamond();
        // Rewire the else arm to fall into join via CondBr (synthetic).
        f.blocks[2].term = Terminator::CondBr {
            pred: tinker_ir::VReg(2), // the predicate from entry
            then_bb: BlockRef(3),
            else_bb: BlockRef(3),
        };
        run(&mut f, 8);
        // Block 3 must still exist with its code (referenced by CondBr).
        assert!(!f.blocks[3].insts.is_empty());
    }
}
