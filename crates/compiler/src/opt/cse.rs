//! Block-local common-subexpression elimination via value numbering.
//!
//! Within a block, a pure instruction whose `(operator, operands)` tuple
//! was already computed — and whose operands have not been redefined
//! since — is replaced by a copy from the earlier result. Loads are
//! excluded (stores/calls could intervene); copy propagation then melts
//! the inserted moves.

use std::collections::HashMap;
use tinker_ir::{Function, IUnOp, Inst, VReg};

/// A pure computation's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    IConst(i64),
    /// Bit pattern, so -0.0 and NaN payloads stay distinct.
    FConst(u32),
    GlobalAddr(u32),
    IBin(u8, u32, u32),
    IUn(u8, u32),
    FBin(u8, u32, u32),
    FNeg(u32),
    FAbs(u32),
    CvtIF(u32),
    CvtFI(u32),
}

fn key_of(inst: &Inst) -> Option<Key> {
    Some(match inst {
        Inst::IConst { value, .. } => Key::IConst(*value),
        Inst::FConst { value, .. } => Key::FConst(value.to_bits()),
        Inst::GlobalAddr { global, .. } => Key::GlobalAddr(global.0),
        Inst::IBin { op, a, b, .. } => Key::IBin(*op as u8, a.0, b.0),
        Inst::IUn { op, a, .. } => Key::IUn(*op as u8, a.0),
        Inst::FBin { op, a, b, .. } => Key::FBin(*op as u8, a.0, b.0),
        Inst::FNeg { a, .. } => Key::FNeg(a.0),
        Inst::FAbs { a, .. } => Key::FAbs(a.0),
        Inst::CvtIF { a, .. } => Key::CvtIF(a.0),
        Inst::CvtFI { a, .. } => Key::CvtFI(a.0),
        _ => return None,
    })
}

/// Registers a key reads (for invalidation).
fn key_operands(k: &Key) -> Vec<u32> {
    match k {
        Key::IConst(_) | Key::FConst(_) | Key::GlobalAddr(_) => vec![],
        Key::IBin(_, a, b) | Key::FBin(_, a, b) => vec![*a, *b],
        Key::IUn(_, a) | Key::FNeg(a) | Key::FAbs(a) | Key::CvtIF(a) | Key::CvtFI(a) => {
            vec![*a]
        }
    }
}

/// Runs the pass; returns true when anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // key → vreg currently holding the value.
        let mut available: HashMap<Key, VReg> = HashMap::new();
        for inst in &mut block.insts {
            let key = key_of(inst);
            if let Some(k) = &key {
                if let Some(&prev) = available.get(k) {
                    // Replace with a copy; classes agree by construction.
                    let dst = inst.def().expect("pure insts define");
                    if dst != prev {
                        let is_float = matches!(
                            k,
                            Key::FConst(_)
                                | Key::FBin(..)
                                | Key::FNeg(_)
                                | Key::FAbs(_)
                                | Key::CvtIF(_)
                        );
                        *inst = if is_float {
                            Inst::FMov { dst, a: prev }
                        } else {
                            Inst::IUn {
                                op: IUnOp::Mov,
                                dst,
                                a: prev,
                            }
                        };
                        changed = true;
                    }
                }
            }
            // Invalidate everything touching the (re)defined register.
            if let Some(d) = inst.def() {
                available.retain(|k, &mut v| v != d && !key_operands(k).contains(&d.0));
                // Record the fresh value (from the possibly-rewritten inst).
                if let Some(k) = key_of(inst) {
                    // A Mov produced by the rewrite shouldn't shadow the
                    // canonical entry; only record genuinely new keys.
                    available.entry(k).or_insert(d);
                }
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{FunctionBuilder, IBinOp, Module, RegClass, Terminator};

    #[test]
    fn eliminates_repeated_addition() {
        let mut b = FunctionBuilder::new("f", 2, Some(RegClass::Int));
        let e = b.entry();
        let (x, y) = (b.param(0), b.param(1));
        let s1 = b.ibin(e, IBinOp::Add, x, y);
        let s2 = b.ibin(e, IBinOp::Add, x, y); // duplicate
        let t = b.ibin(e, IBinOp::Mul, s1, s2);
        b.set_term(e, Terminator::Ret(Some(t)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(
            matches!(f.blocks[0].insts[1], Inst::IUn { op: IUnOp::Mov, .. }),
            "duplicate becomes a copy: {:?}",
            f.blocks[0].insts[1]
        );
        let mut m = Module::new();
        m.add_func(f);
        m.verify().unwrap();
    }

    #[test]
    fn redefinition_blocks_reuse() {
        // x = a+b; a = 0; y = a+b  →  second a+b must NOT reuse x.
        let mut b = FunctionBuilder::new("f", 2, Some(RegClass::Int));
        let e = b.entry();
        let (a, c) = (b.param(0), b.param(1));
        let _x = b.ibin(e, IBinOp::Add, a, c);
        let z = b.iconst(e, 0);
        b.push(
            e,
            Inst::IUn {
                op: IUnOp::Mov,
                dst: a,
                a: z,
            },
        );
        let y = b.ibin(e, IBinOp::Add, a, c);
        b.set_term(e, Terminator::Ret(Some(y)));
        let mut f = b.finish();
        run(&mut f);
        assert!(
            matches!(
                f.blocks[0].insts.last(),
                Some(Inst::IBin {
                    op: IBinOp::Add,
                    ..
                })
            ),
            "must stay a real add"
        );
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let c1 = b.iconst(e, 42);
        let c2 = b.iconst(e, 42);
        let s = b.ibin(e, IBinOp::Add, c1, c2);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            f.blocks[0].insts[1],
            Inst::IUn { op: IUnOp::Mov, .. }
        ));
    }

    #[test]
    fn float_constants_compare_by_bits() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let a = b.fconst(e, 0.0);
        let c = b.fconst(e, -0.0); // different bit pattern!
        let s = b.fbin(e, tinker_ir::FBinOp::Add, a, c);
        let i = b.cvt_fi(e, s);
        b.set_term(e, Terminator::Ret(Some(i)));
        let mut f = b.finish();
        run(&mut f);
        assert!(
            matches!(f.blocks[0].insts[1], Inst::FConst { .. }),
            "-0.0 must not be folded into 0.0"
        );
    }

    #[test]
    fn loads_are_never_cse_d() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let l1 = b.load(e, tinker_ir::Width::Word, p, 0);
        b.store(e, tinker_ir::Width::Word, p, 0, l1);
        let l2 = b.load(e, tinker_ir::Width::Word, p, 0);
        b.set_term(e, Terminator::Ret(Some(l2)));
        let mut f = b.finish();
        run(&mut f);
        assert!(
            matches!(f.blocks[0].insts[2], Inst::Load { .. }),
            "load stays a load"
        );
    }
}
