//! IR optimization passes, iterated to a fixed point by
//! [`optimize_module`].
//!
//! All passes are conservative with respect to the non-SSA IR: value
//! tracking is block-local (a virtual register may be redefined on other
//! paths), while dead-code elimination uses a global liveness fixpoint.

pub mod constfold;
pub mod copyprop;
pub mod cse;
pub mod dce;
pub mod simplify;
pub mod taildup;

use tinker_ir::Module;

/// Runs the full pass pipeline (fold → CSE → copy-prop → simplify → DCE)
/// up to
/// `max_iter` times or until nothing changes.
///
/// Returns the number of iterations that made progress.
pub fn optimize_module(m: &mut Module, max_iter: usize) -> usize {
    let mut iterations = 0;
    for _ in 0..max_iter {
        let mut changed = false;
        for f in m.funcs_mut() {
            changed |= constfold::run(f);
            changed |= cse::run(f);
            changed |= copyprop::run(f);
            changed |= simplify::run(f);
            changed |= dce::run(f);
        }
        if !changed {
            break;
        }
        iterations += 1;
    }
    debug_assert!(m.verify().is_ok(), "optimizer broke the module");
    iterations
}

#[cfg(test)]
mod tests {
    use crate::lang::{lower_program, parser::parse};

    #[test]
    fn pipeline_reaches_fixed_point_and_verifies() {
        let mut m = lower_program(
            &parse(
                r#"
            global a[8];
            fn main() {
                var x = 2 + 3;
                var y = x * 4;
                var dead = 17;
                if (1 < 2) { a[0] = y; } else { a[1] = 0; }
                print(a[0]);
            }
        "#,
            )
            .unwrap(),
        )
        .unwrap();
        let before: usize = m.funcs()[0].blocks.iter().map(|b| b.insts.len()).sum();
        super::optimize_module(&mut m, 10);
        m.verify().unwrap();
        let after: usize = m.funcs()[0].blocks.iter().map(|b| b.insts.len()).sum();
        assert!(
            after < before,
            "optimizer should shrink the function ({before} -> {after})"
        );
    }
}
