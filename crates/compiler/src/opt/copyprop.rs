//! Block-local copy propagation.
//!
//! Within a block, after `dst = mov src`, later reads of `dst` are
//! rewritten to `src` until either register is redefined. Predicates are
//! never copied, so only the integer and float files participate.

use std::collections::HashMap;
use tinker_ir::{Function, IUnOp, Inst, VReg};

/// Runs the pass; returns true when anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        // copy_of[d] = s when "d currently equals s".
        let mut copy_of: HashMap<u32, u32> = HashMap::new();
        for inst in &mut block.insts {
            // Rewrite uses through the copy map.
            let remap = |copy_of: &HashMap<u32, u32>, v: &mut VReg, changed: &mut bool| {
                if let Some(&s) = copy_of.get(&v.0) {
                    *v = VReg(s);
                    *changed = true;
                }
            };
            match inst {
                Inst::IBin { a, b, .. }
                | Inst::ICmp { a, b, .. }
                | Inst::FBin { a, b, .. }
                | Inst::FCmp { a, b, .. } => {
                    remap(&copy_of, a, &mut changed);
                    remap(&copy_of, b, &mut changed);
                }
                Inst::IUn { a, .. }
                | Inst::FNeg { a, .. }
                | Inst::FAbs { a, .. }
                | Inst::FMov { a, .. }
                | Inst::CvtIF { a, .. }
                | Inst::CvtFI { a, .. } => remap(&copy_of, a, &mut changed),
                Inst::Load { base, .. } | Inst::FLoad { base, .. } => {
                    remap(&copy_of, base, &mut changed)
                }
                Inst::Store { base, value, .. } => {
                    remap(&copy_of, base, &mut changed);
                    remap(&copy_of, value, &mut changed);
                }
                Inst::FStore { base, value, .. } => {
                    remap(&copy_of, base, &mut changed);
                    remap(&copy_of, value, &mut changed);
                }
                Inst::Call { args, .. } => {
                    for a in args {
                        remap(&copy_of, a, &mut changed);
                    }
                }
                Inst::Sys { arg, .. } => remap(&copy_of, arg, &mut changed),
                Inst::IConst { .. } | Inst::FConst { .. } | Inst::GlobalAddr { .. } => {}
            }
            // Kill mappings involving the redefined register.
            if let Some(d) = inst.def() {
                copy_of.remove(&d.0);
                copy_of.retain(|_, &mut s| s != d.0);
                // Record fresh copies.
                match inst {
                    Inst::IUn {
                        op: IUnOp::Mov,
                        dst,
                        a,
                    } if dst != a => {
                        copy_of.insert(dst.0, a.0);
                    }
                    Inst::FMov { dst, a } if dst != a => {
                        copy_of.insert(dst.0, a.0);
                    }
                    _ => {}
                }
            }
        }
        // Rewrite the terminator's uses too.
        match &mut block.term {
            tinker_ir::Terminator::Ret(Some(v)) => {
                if let Some(&s) = copy_of.get(&v.0) {
                    *v = VReg(s);
                    changed = true;
                }
            }
            tinker_ir::Terminator::CondBr { pred, .. } => {
                if let Some(&s) = copy_of.get(&pred.0) {
                    *pred = VReg(s);
                    changed = true;
                }
            }
            _ => {}
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{FunctionBuilder, IBinOp, RegClass, Terminator};

    #[test]
    fn propagates_simple_copy() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let c = b.iun(e, IUnOp::Mov, p); // c = mov p
        let one = b.iconst(e, 1);
        let s = b.ibin(e, IBinOp::Add, c, one);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        assert!(run(&mut f));
        match &f.blocks[0].insts[2] {
            Inst::IBin { a, .. } => assert_eq!(*a, p),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redefinition_of_source_kills_mapping() {
        // c = mov p; p = 7; use c → must NOT become 7's register.
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let c = b.iun(e, IUnOp::Mov, p);
        let seven = b.iconst(e, 7);
        b.push(
            e,
            Inst::IUn {
                op: IUnOp::Mov,
                dst: p,
                a: seven,
            },
        );
        let s = b.ibin(e, IBinOp::Add, c, c);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        match &f.blocks[0].insts.last().unwrap() {
            Inst::IBin { a, b: rhs, .. } => {
                assert_eq!(*a, c, "use of c must stay c after p was redefined");
                assert_eq!(*rhs, c);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn propagates_into_terminator() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let c = b.iun(e, IUnOp::Mov, p);
        b.set_term(e, Terminator::Ret(Some(c)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Ret(Some(p)));
    }

    #[test]
    fn no_change_reports_false() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        b.set_term(e, Terminator::Ret(Some(p)));
        let mut f = b.finish();
        assert!(!run(&mut f));
    }
}
