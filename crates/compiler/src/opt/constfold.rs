//! Block-local constant folding and algebraic strength reduction.
//!
//! Tracks `vreg → constant` within each block (invalidated on
//! redefinition) and rewrites:
//!
//! * integer/float binaries over two known constants → a constant;
//! * `x * 2^k` → `x << k`, `x * 1` → copy, `x + 0`/`x - 0`/`x | 0`/
//!   `x ^ 0` → copy, `x & 0`/`x * 0` → 0;
//! * comparisons over two known constants feed
//!   [`crate::opt::simplify`]'s branch folding via a recorded constant
//!   predicate.

use std::collections::HashMap;
use tinker_ir::{Cond, FBinOp, Function, IBinOp, IUnOp, Inst};

/// Runs the pass; returns true when anything changed.
pub fn run(f: &mut Function) -> bool {
    let mut changed = false;
    for block in &mut f.blocks {
        let mut consts: HashMap<u32, i64> = HashMap::new();
        let mut fconsts: HashMap<u32, f32> = HashMap::new();
        let mut pconsts: HashMap<u32, bool> = HashMap::new();
        for inst in &mut block.insts {
            // Invalidate the destination before folding (self-redefines).
            let def = inst.def();
            let get = |m: &HashMap<u32, i64>, v: tinker_ir::VReg| m.get(&v.0).copied();
            let getf = |m: &HashMap<u32, f32>, v: tinker_ir::VReg| m.get(&v.0).copied();
            let new_inst: Option<Inst> = match inst {
                Inst::IBin { op, dst, a, b } => {
                    let (ca, cb) = (get(&consts, *a), get(&consts, *b));
                    match (ca, cb) {
                        (Some(x), Some(y)) => eval_ibin(*op, x, y).map(|v| Inst::IConst {
                            dst: *dst,
                            value: v,
                        }),
                        (_, Some(y)) => fold_identity_rhs(*op, *dst, *a, y),
                        (Some(x), _) => fold_identity_lhs(*op, *dst, *b, x),
                        _ => None,
                    }
                }
                Inst::FBin { op, dst, a, b } => match (getf(&fconsts, *a), getf(&fconsts, *b)) {
                    (Some(x), Some(y)) => eval_fbin(*op, x, y).map(|v| Inst::FConst {
                        dst: *dst,
                        value: v,
                    }),
                    _ => None,
                },
                Inst::IUn { op, dst, a } => get(&consts, *a).map(|x| Inst::IConst {
                    dst: *dst,
                    value: match op {
                        IUnOp::Mov => x,
                        IUnOp::Not => !(x as i32) as i64,
                        IUnOp::Neg => (x as i32).wrapping_neg() as i64,
                    },
                }),
                Inst::ICmp { .. } => None, // tracked below, after invalidation
                Inst::CvtIF { dst, a } => get(&consts, *a).map(|x| Inst::FConst {
                    dst: *dst,
                    value: x as i32 as f32,
                }),
                Inst::CvtFI { dst, a } => getf(&fconsts, *a).map(|x| Inst::IConst {
                    dst: *dst,
                    value: (x as i32) as i64,
                }),
                _ => None,
            };
            if let Some(ni) = new_inst {
                *inst = ni;
                changed = true;
            }
            // Update the tracked constants for the (possibly new) inst.
            if let Some(d) = def {
                consts.remove(&d.0);
                fconsts.remove(&d.0);
                pconsts.remove(&d.0);
            }
            match inst {
                Inst::IConst { dst, value } => {
                    consts.insert(dst.0, *value);
                }
                Inst::FConst { dst, value } => {
                    fconsts.insert(dst.0, *value);
                }
                Inst::ICmp { cond, dst, a, b } => {
                    if let (Some(&x), Some(&y)) = (consts.get(&a.0), consts.get(&b.0)) {
                        pconsts.insert(dst.0, eval_cond(*cond, x as i32, y as i32));
                    }
                }
                Inst::Call { .. } => {
                    // Calls do not clobber locals (registers), only memory;
                    // constants stay valid.
                }
                _ => {}
            }
        }
        // Fold conditional branches over constant predicates.
        if let tinker_ir::Terminator::CondBr {
            pred,
            then_bb,
            else_bb,
        } = block.term.clone()
        {
            if let Some(&v) = pconsts.get(&pred.0) {
                block.term = tinker_ir::Terminator::Jump(if v { then_bb } else { else_bb });
                changed = true;
            }
        }
    }
    changed
}

fn eval_ibin(op: IBinOp, x: i64, y: i64) -> Option<i64> {
    let (x, y) = (x as i32, y as i32);
    let v: i32 = match op {
        IBinOp::Add => x.wrapping_add(y),
        IBinOp::Sub => x.wrapping_sub(y),
        IBinOp::Mul => x.wrapping_mul(y),
        IBinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        IBinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        IBinOp::And => x & y,
        IBinOp::Or => x | y,
        IBinOp::Xor => x ^ y,
        IBinOp::Shl => x.wrapping_shl(y as u32 & 31),
        IBinOp::Shr => ((x as u32).wrapping_shr(y as u32 & 31)) as i32,
        IBinOp::Sra => x.wrapping_shr(y as u32 & 31),
        IBinOp::Min => x.min(y),
        IBinOp::Max => x.max(y),
    };
    Some(v as i64)
}

fn eval_fbin(op: FBinOp, x: f32, y: f32) -> Option<f32> {
    Some(match op {
        FBinOp::Add => x + y,
        FBinOp::Sub => x - y,
        FBinOp::Mul => x * y,
        FBinOp::Div => x / y,
        FBinOp::Min => x.min(y),
        FBinOp::Max => x.max(y),
    })
}

fn eval_cond(c: Cond, a: i32, b: i32) -> bool {
    match c {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => a < b,
        Cond::Le => a <= b,
        Cond::Gt => a > b,
        Cond::Ge => a >= b,
        Cond::LtU => (a as u32) < (b as u32),
        Cond::GeU => (a as u32) >= (b as u32),
    }
}

/// `a <op> const` identities.
fn fold_identity_rhs(op: IBinOp, dst: tinker_ir::VReg, a: tinker_ir::VReg, y: i64) -> Option<Inst> {
    match (op, y) {
        (
            IBinOp::Add
            | IBinOp::Sub
            | IBinOp::Or
            | IBinOp::Xor
            | IBinOp::Shl
            | IBinOp::Shr
            | IBinOp::Sra,
            0,
        ) => Some(Inst::IUn {
            op: IUnOp::Mov,
            dst,
            a,
        }),
        (IBinOp::Mul | IBinOp::Div, 1) => Some(Inst::IUn {
            op: IUnOp::Mov,
            dst,
            a,
        }),
        (IBinOp::Mul | IBinOp::And, 0) => Some(Inst::IConst { dst, value: 0 }),
        (IBinOp::Mul, v) if v > 1 && (v & (v - 1)) == 0 => {
            // x * 2^k → handled by simplify (needs a fresh const vreg);
            // leave to keep this pass allocation-free.
            None
        }
        _ => None,
    }
}

/// `const <op> b` identities.
fn fold_identity_lhs(op: IBinOp, dst: tinker_ir::VReg, b: tinker_ir::VReg, x: i64) -> Option<Inst> {
    match (op, x) {
        (IBinOp::Add | IBinOp::Or | IBinOp::Xor, 0) => Some(Inst::IUn {
            op: IUnOp::Mov,
            dst,
            a: b,
        }),
        (IBinOp::Mul, 1) => Some(Inst::IUn {
            op: IUnOp::Mov,
            dst,
            a: b,
        }),
        (IBinOp::Mul | IBinOp::And, 0) => Some(Inst::IConst { dst, value: 0 }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinker_ir::{FunctionBuilder, RegClass, Terminator};

    #[test]
    fn folds_constant_addition() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let x = b.iconst(e, 2);
        let y = b.iconst(e, 3);
        let s = b.ibin(e, IBinOp::Add, x, y);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::IConst { value: 5, .. }
        ));
    }

    #[test]
    fn folds_division_by_zero_left_alone() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let x = b.iconst(e, 2);
        let z = b.iconst(e, 0);
        let s = b.ibin(e, IBinOp::Div, x, z);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::IBin {
                op: IBinOp::Div,
                ..
            }
        ));
    }

    #[test]
    fn folds_identities() {
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let p = b.param(0);
        let z = b.iconst(e, 0);
        let s = b.ibin(e, IBinOp::Add, p, z);
        b.set_term(e, Terminator::Ret(Some(s)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert!(matches!(
            f.blocks[0].insts[1],
            Inst::IUn { op: IUnOp::Mov, .. }
        ));
    }

    #[test]
    fn folds_constant_branch_to_jump() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let x = b.iconst(e, 1);
        let y = b.iconst(e, 2);
        let p = b.icmp(e, Cond::Lt, x, y);
        let t = b.new_block();
        let el = b.new_block();
        b.set_term(
            e,
            Terminator::CondBr {
                pred: p,
                then_bb: t,
                else_bb: el,
            },
        );
        let one = b.iconst(t, 1);
        b.set_term(t, Terminator::Ret(Some(one)));
        let zero = b.iconst(el, 0);
        b.set_term(el, Terminator::Ret(Some(zero)));
        let mut f = b.finish();
        assert!(run(&mut f));
        assert_eq!(f.blocks[0].term, Terminator::Jump(t));
    }

    #[test]
    fn redefinition_invalidates_tracking() {
        // v = 2; v = param; w = v + 1 must NOT fold w to 3.
        let mut b = FunctionBuilder::new("f", 1, Some(RegClass::Int));
        let e = b.entry();
        let v = b.iconst(e, 2);
        let p = b.param(0);
        b.push(
            e,
            Inst::IUn {
                op: IUnOp::Mov,
                dst: v,
                a: p,
            },
        );
        let one = b.iconst(e, 1);
        let w = b.ibin(e, IBinOp::Add, v, one);
        b.set_term(e, Terminator::Ret(Some(w)));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts.last(),
            Some(Inst::IBin {
                op: IBinOp::Add,
                ..
            })
        ));
    }

    #[test]
    fn folds_float_constants_and_conversions() {
        let mut b = FunctionBuilder::new("f", 0, Some(RegClass::Int));
        let e = b.entry();
        let x = b.fconst(e, 1.5);
        let y = b.fconst(e, 2.0);
        let s = b.fbin(e, FBinOp::Mul, x, y);
        let i = b.cvt_fi(e, s);
        b.set_term(e, Terminator::Ret(Some(i)));
        let mut f = b.finish();
        assert!(run(&mut f));
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts[3],
            Inst::IConst { value: 3, .. }
        ));
    }
}
