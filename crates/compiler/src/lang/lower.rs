//! Lowering from the Tink AST to `tinker-ir`.
//!
//! Conventions established here:
//!
//! * every Tink function returns an integer; a missing `return` yields 0;
//! * locals live in virtual registers (parameters are copied into fresh
//!   locals so they are assignable);
//! * array accesses compute `base + index·elem_size` with shifts for
//!   power-of-two element sizes;
//! * boolean operators lower to control flow (short-circuit); a comparison
//!   used as a *value* lowers to a 0/1 diamond;
//! * mixed int/float arithmetic promotes the integer side (`CvtIF`);
//!   assignments convert implicitly in both directions.

use super::ast::*;
use std::collections::HashMap;
use std::fmt;
use tinker_ir::{
    BlockRef, Cond, FBinOp, FuncId, FunctionBuilder, Global, GlobalId, IBinOp, IUnOp, Inst, Module,
    RegClass, SysCode, Terminator, VReg, Width,
};

/// Semantic lowering failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// Description, including the offending symbol where known.
    pub message: String,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.message)
    }
}

impl std::error::Error for LowerError {}

fn err<T>(m: impl Into<String>) -> Result<T, LowerError> {
    Err(LowerError { message: m.into() })
}

#[derive(Clone, Copy)]
struct GlobalSym {
    id: GlobalId,
    kind: ElemKind,
}

/// Lowers a parsed program to an IR module. The module contains every
/// declared function; `main` must exist (checked here because every
/// workload needs an entry point).
///
/// # Errors
///
/// Returns [`LowerError`] for unknown symbols, arity mismatches, type
/// errors and a missing `main`.
pub fn lower_program(prog: &Program) -> Result<Module, LowerError> {
    let mut module = Module::new();
    // Globals first.
    let mut globals: HashMap<String, GlobalSym> = HashMap::new();
    for g in &prog.globals {
        if globals.contains_key(&g.name) {
            return err(format!("duplicate global {}", g.name));
        }
        let elem = match g.kind {
            ElemKind::Byte => 1u32,
            ElemKind::Half => 2u32,
            ElemKind::Word | ElemKind::Float => 4u32,
        };
        let size = g.count * elem;
        let init = match &g.init {
            GlobalInit::None => vec![],
            GlobalInit::IntList(vs) => {
                if vs.len() > g.count as usize {
                    return err(format!("initializer for {} too long", g.name));
                }
                match g.kind {
                    ElemKind::Byte => vs.iter().map(|&v| v as u8).collect(),
                    ElemKind::Half => vs.iter().flat_map(|&v| (v as i16).to_le_bytes()).collect(),
                    _ => vs.iter().flat_map(|&v| (v as i32).to_le_bytes()).collect(),
                }
            }
            GlobalInit::FloatList(vs) => {
                if vs.len() > g.count as usize || g.kind != ElemKind::Float {
                    return err(format!("bad float initializer for {}", g.name));
                }
                vs.iter().flat_map(|&v| v.to_le_bytes()).collect()
            }
            GlobalInit::Str(s) => {
                if g.kind != ElemKind::Byte || s.len() + 1 > g.count as usize {
                    return err(format!("bad string initializer for {}", g.name));
                }
                let mut b: Vec<u8> = s.bytes().collect();
                b.push(0);
                b
            }
        };
        let id = module.add_global(Global {
            name: g.name.clone(),
            size,
            init,
        });
        globals.insert(g.name.clone(), GlobalSym { id, kind: g.kind });
    }

    // Pre-declare all functions so calls can be forward.
    let mut func_ids: HashMap<String, (FuncId, usize)> = HashMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        if func_ids.contains_key(&f.name) {
            return err(format!("duplicate function {}", f.name));
        }
        func_ids.insert(f.name.clone(), (FuncId(i as u32), f.params.len()));
    }
    if !func_ids.contains_key("main") {
        return err("program has no main function");
    }

    for f in &prog.funcs {
        let lowered = FuncLowerer::lower(f, &globals, &func_ids)?;
        module.add_func(lowered);
    }
    Ok(module)
}

struct FuncLowerer<'a> {
    b: FunctionBuilder,
    cur: BlockRef,
    /// Whether `cur` already received a real terminator.
    terminated: bool,
    locals: HashMap<String, VReg>,
    /// Names of locals declared with `fvar`.
    float_locals: std::collections::HashSet<String>,
    globals: &'a HashMap<String, GlobalSym>,
    funcs: &'a HashMap<String, (FuncId, usize)>,
    /// (continue target, break target) stack.
    loops: Vec<(BlockRef, BlockRef)>,
}

impl<'a> FuncLowerer<'a> {
    fn lower(
        decl: &FuncDecl,
        globals: &'a HashMap<String, GlobalSym>,
        funcs: &'a HashMap<String, (FuncId, usize)>,
    ) -> Result<tinker_ir::Function, LowerError> {
        let mut b = FunctionBuilder::new(&decl.name, decl.params.len() as u32, Some(RegClass::Int));
        let entry = b.entry();
        let mut locals = HashMap::new();
        // Copy params into assignable locals.
        for (i, p) in decl.params.iter().enumerate() {
            let v = b.new_vreg(RegClass::Int);
            let pv = b.param(i as u32);
            b.push(
                entry,
                Inst::IUn {
                    op: IUnOp::Mov,
                    dst: v,
                    a: pv,
                },
            );
            locals.insert(p.clone(), v);
        }
        let mut lo = FuncLowerer {
            b,
            cur: entry,
            terminated: false,
            locals,
            float_locals: Default::default(),
            globals,
            funcs,
            loops: vec![],
        };
        lo.stmts(&decl.body)?;
        if !lo.terminated {
            let zero = lo.b.iconst(lo.cur, 0);
            lo.b.set_term(lo.cur, Terminator::Ret(Some(zero)));
        }
        Ok(lo.b.finish())
    }

    fn start_block(&mut self, b: BlockRef) {
        self.cur = b;
        self.terminated = false;
    }

    fn terminate(&mut self, t: Terminator) {
        if !self.terminated {
            self.b.set_term(self.cur, t);
            self.terminated = true;
        }
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), LowerError> {
        for s in body {
            if self.terminated {
                // Dead code after return/break; skip (DCE would drop it).
                break;
            }
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        match s {
            Stmt::VarDecl { name, float, init } => {
                let class = if *float {
                    RegClass::Float
                } else {
                    RegClass::Int
                };
                let v = self.b.new_vreg(class);
                self.locals.insert(name.clone(), v);
                if *float {
                    self.float_locals.insert(name.clone());
                } else {
                    self.float_locals.remove(name);
                }
                if let Some(e) = init {
                    let (val, vf) = self.value(e)?;
                    let val = self.coerce(val, vf, *float)?;
                    self.copy_into(v, val, *float);
                } else {
                    // Zero-init for determinism.
                    if *float {
                        let z = self.b.fconst(self.cur, 0.0);
                        self.b.push(self.cur, Inst::FMov { dst: v, a: z });
                    } else {
                        let z = self.b.iconst(self.cur, 0);
                        self.b.push(
                            self.cur,
                            Inst::IUn {
                                op: IUnOp::Mov,
                                dst: v,
                                a: z,
                            },
                        );
                    }
                }
                Ok(())
            }
            Stmt::Assign { lvalue, value } => {
                let (val, vf) = self.value(value)?;
                match lvalue {
                    LValue::Var(name) => {
                        if let Some(&dst) = self.locals.get(name) {
                            let dst_float = self.local_is_float(name);
                            let val = self.coerce(val, vf, dst_float)?;
                            self.copy_into(dst, val, dst_float);
                        } else if let Some(&g) = self.globals.get(name) {
                            self.store_global(g, None, val, vf)?;
                        } else {
                            return err(format!("unknown variable {name}"));
                        }
                        Ok(())
                    }
                    LValue::Index { name, index } => {
                        let g = *self.globals.get(name).ok_or_else(|| LowerError {
                            message: format!("unknown array {name}"),
                        })?;
                        let (idx, idx_f) = self.value(index)?;
                        if idx_f {
                            return err("array index must be an integer");
                        }
                        self.store_global(g, Some(idx), val, vf)?;
                        Ok(())
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_bb = self.b.new_block();
                let else_bb = self.b.new_block();
                let join = self.b.new_block();
                self.cond(cond, then_bb, else_bb)?;
                self.start_block(then_bb);
                self.stmts(then_body)?;
                self.terminate(Terminator::Jump(join));
                self.start_block(else_bb);
                self.stmts(else_body)?;
                self.terminate(Terminator::Jump(join));
                self.start_block(join);
                Ok(())
            }
            Stmt::While { cond, body } => {
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.terminate(Terminator::Jump(head));
                self.start_block(head);
                self.cond(cond, body_bb, exit)?;
                self.start_block(body_bb);
                self.loops.push((head, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Terminator::Jump(head));
                self.start_block(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.b.new_block();
                let body_bb = self.b.new_block();
                let step_bb = self.b.new_block();
                let exit = self.b.new_block();
                self.terminate(Terminator::Jump(head));
                self.start_block(head);
                self.cond(cond, body_bb, exit)?;
                self.start_block(body_bb);
                self.loops.push((step_bb, exit));
                self.stmts(body)?;
                self.loops.pop();
                self.terminate(Terminator::Jump(step_bb));
                self.start_block(step_bb);
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.terminate(Terminator::Jump(head));
                self.start_block(exit);
                Ok(())
            }
            Stmt::Break => match self.loops.last() {
                Some(&(_, exit)) => {
                    self.terminate(Terminator::Jump(exit));
                    Ok(())
                }
                None => err("break outside loop"),
            },
            Stmt::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.terminate(Terminator::Jump(cont));
                    Ok(())
                }
                None => err("continue outside loop"),
            },
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => {
                        let (v, f) = self.value(e)?;
                        self.coerce(v, f, false)?
                    }
                    None => self.b.iconst(self.cur, 0),
                };
                self.terminate(Terminator::Ret(Some(v)));
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                self.value(e)?;
                Ok(())
            }
        }
    }

    fn local_is_float(&self, name: &str) -> bool {
        // Recorded at declaration via a parallel map would duplicate state;
        // instead locals map is queried and the builder's class table is
        // authoritative. We shadow it with a name convention-free lookup
        // through `float_locals`.
        self.float_locals.contains(name)
    }

    /// Copies `src` into the named local's vreg.
    fn copy_into(&mut self, dst: VReg, src: VReg, float: bool) {
        if float {
            self.b.push(self.cur, Inst::FMov { dst, a: src });
        } else {
            self.b.push(
                self.cur,
                Inst::IUn {
                    op: IUnOp::Mov,
                    dst,
                    a: src,
                },
            );
        }
    }

    /// Converts a value to the requested class if needed.
    fn coerce(&mut self, v: VReg, is_float: bool, want_float: bool) -> Result<VReg, LowerError> {
        Ok(match (is_float, want_float) {
            (false, true) => self.b.cvt_if(self.cur, v),
            (true, false) => self.b.cvt_fi(self.cur, v),
            _ => v,
        })
    }

    fn store_global(
        &mut self,
        g: GlobalSym,
        index: Option<VReg>,
        val: VReg,
        val_float: bool,
    ) -> Result<(), LowerError> {
        let addr = self.element_addr(g, index);
        match g.kind {
            ElemKind::Float => {
                let v = self.coerce(val, val_float, true)?;
                self.b.fstore(self.cur, addr, 0, v);
            }
            ElemKind::Word => {
                let v = self.coerce(val, val_float, false)?;
                self.b.store(self.cur, Width::Word, addr, 0, v);
            }
            ElemKind::Byte => {
                let v = self.coerce(val, val_float, false)?;
                self.b.store(self.cur, Width::Byte, addr, 0, v);
            }
            ElemKind::Half => {
                let v = self.coerce(val, val_float, false)?;
                self.b.store(self.cur, Width::Half, addr, 0, v);
            }
        }
        Ok(())
    }

    fn element_addr(&mut self, g: GlobalSym, index: Option<VReg>) -> VReg {
        let base = self.b.global_addr(self.cur, g.id);
        match index {
            None => base,
            Some(idx) => {
                let scaled = match g.kind {
                    ElemKind::Byte => idx,
                    ElemKind::Half => {
                        let one = self.b.iconst(self.cur, 1);
                        self.b.ibin(self.cur, IBinOp::Shl, idx, one)
                    }
                    _ => {
                        let two = self.b.iconst(self.cur, 2);
                        self.b.ibin(self.cur, IBinOp::Shl, idx, two)
                    }
                };
                self.b.ibin(self.cur, IBinOp::Add, base, scaled)
            }
        }
    }

    /// Lowers `e` for its value; returns `(vreg, is_float)`.
    fn value(&mut self, e: &Expr) -> Result<(VReg, bool), LowerError> {
        match e {
            Expr::Int(v) => Ok((self.b.iconst(self.cur, *v), false)),
            Expr::Float(v) => Ok((self.b.fconst(self.cur, *v), true)),
            Expr::Var(name) => {
                if let Some(&v) = self.locals.get(name) {
                    Ok((v, self.local_is_float(name)))
                } else if let Some(&g) = self.globals.get(name) {
                    let addr = self.element_addr(g, None);
                    Ok(self.load_elem(g, addr))
                } else {
                    err(format!("unknown variable {name}"))
                }
            }
            Expr::Index { name, index } => {
                let g = *self.globals.get(name).ok_or_else(|| LowerError {
                    message: format!("unknown array {name}"),
                })?;
                let (idx, f) = self.value(index)?;
                if f {
                    return err("array index must be an integer");
                }
                let addr = self.element_addr(g, Some(idx));
                Ok(self.load_elem(g, addr))
            }
            Expr::Un {
                op: UnOp::Neg,
                expr,
            } => {
                let (v, f) = self.value(expr)?;
                if f {
                    let dst = self.b.new_vreg(RegClass::Float);
                    self.b.push(self.cur, Inst::FNeg { dst, a: v });
                    Ok((dst, true))
                } else {
                    Ok((self.b.iun(self.cur, IUnOp::Neg, v), false))
                }
            }
            Expr::Un {
                op: UnOp::Not,
                expr,
            } => {
                let (v, f) = self.value(expr)?;
                if f {
                    return err("~ requires an integer operand");
                }
                Ok((self.b.iun(self.cur, IUnOp::Not, v), false))
            }
            Expr::Un { op: UnOp::LNot, .. }
            | Expr::Bin {
                op:
                    BinOp::LAnd
                    | BinOp::LOr
                    | BinOp::Eq
                    | BinOp::Ne
                    | BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge,
                ..
            } => {
                // Boolean used as a value: materialize a 0/1 diamond.
                let result = self.b.new_vreg(RegClass::Int);
                let tbb = self.b.new_block();
                let fbb = self.b.new_block();
                let join = self.b.new_block();
                self.cond(e, tbb, fbb)?;
                self.start_block(tbb);
                let one = self.b.iconst(self.cur, 1);
                self.b.push(
                    self.cur,
                    Inst::IUn {
                        op: IUnOp::Mov,
                        dst: result,
                        a: one,
                    },
                );
                self.terminate(Terminator::Jump(join));
                self.start_block(fbb);
                let zero = self.b.iconst(self.cur, 0);
                self.b.push(
                    self.cur,
                    Inst::IUn {
                        op: IUnOp::Mov,
                        dst: result,
                        a: zero,
                    },
                );
                self.terminate(Terminator::Jump(join));
                self.start_block(join);
                Ok((result, false))
            }
            Expr::Bin { op, lhs, rhs } => {
                let (a, af) = self.value(lhs)?;
                let (c, cf) = self.value(rhs)?;
                let float = af || cf;
                if float {
                    let fop = match op {
                        BinOp::Add => FBinOp::Add,
                        BinOp::Sub => FBinOp::Sub,
                        BinOp::Mul => FBinOp::Mul,
                        BinOp::Div => FBinOp::Div,
                        other => return err(format!("{other:?} not supported on floats")),
                    };
                    let a = self.coerce(a, af, true)?;
                    let c = self.coerce(c, cf, true)?;
                    Ok((self.b.fbin(self.cur, fop, a, c), true))
                } else {
                    let iop = match op {
                        BinOp::Add => IBinOp::Add,
                        BinOp::Sub => IBinOp::Sub,
                        BinOp::Mul => IBinOp::Mul,
                        BinOp::Div => IBinOp::Div,
                        BinOp::Rem => IBinOp::Rem,
                        BinOp::And => IBinOp::And,
                        BinOp::Or => IBinOp::Or,
                        BinOp::Xor => IBinOp::Xor,
                        BinOp::Shl => IBinOp::Shl,
                        BinOp::Shr => IBinOp::Shr,
                        other => unreachable!("comparison {other:?} handled above"),
                    };
                    Ok((self.b.ibin(self.cur, iop, a, c), false))
                }
            }
            Expr::Call { name, args } => self.call(name, args),
        }
    }

    fn load_elem(&mut self, g: GlobalSym, addr: VReg) -> (VReg, bool) {
        match g.kind {
            ElemKind::Float => (self.b.fload(self.cur, addr, 0), true),
            ElemKind::Word => (self.b.load(self.cur, Width::Word, addr, 0), false),
            ElemKind::Byte => (self.b.load(self.cur, Width::Byte, addr, 0), false),
            ElemKind::Half => (self.b.load(self.cur, Width::Half, addr, 0), false),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(VReg, bool), LowerError> {
        // Builtins first.
        match (name, args.len()) {
            ("print", 1) => {
                let (v, f) = self.value(&args[0])?;
                let v = self.coerce(v, f, false)?;
                self.b.push(
                    self.cur,
                    Inst::Sys {
                        code: SysCode::PrintInt,
                        arg: v,
                    },
                );
                return Ok((self.b.iconst(self.cur, 0), false));
            }
            ("putc", 1) => {
                let (v, f) = self.value(&args[0])?;
                let v = self.coerce(v, f, false)?;
                self.b.push(
                    self.cur,
                    Inst::Sys {
                        code: SysCode::PrintChar,
                        arg: v,
                    },
                );
                return Ok((self.b.iconst(self.cur, 0), false));
            }
            ("float", 1) => {
                let (v, f) = self.value(&args[0])?;
                return Ok((self.coerce(v, f, true)?, true));
            }
            ("int", 1) => {
                let (v, f) = self.value(&args[0])?;
                return Ok((self.coerce(v, f, false)?, false));
            }
            _ => {}
        }
        let &(id, arity) = self.funcs.get(name).ok_or_else(|| LowerError {
            message: format!("unknown function {name}"),
        })?;
        if args.len() != arity {
            return err(format!(
                "{name} expects {arity} arguments, got {}",
                args.len()
            ));
        }
        let mut argv = Vec::with_capacity(args.len());
        for a in args {
            let (v, f) = self.value(a)?;
            argv.push(self.coerce(v, f, false)?);
        }
        let ret = self.b.call(self.cur, id, argv, Some(RegClass::Int));
        Ok((ret.expect("int return"), false))
    }

    /// Lowers `e` as a condition branching to `then_bb` / `else_bb`.
    fn cond(&mut self, e: &Expr, then_bb: BlockRef, else_bb: BlockRef) -> Result<(), LowerError> {
        match e {
            Expr::Bin {
                op: BinOp::LAnd,
                lhs,
                rhs,
            } => {
                let mid = self.b.new_block();
                self.cond(lhs, mid, else_bb)?;
                self.start_block(mid);
                self.cond(rhs, then_bb, else_bb)
            }
            Expr::Bin {
                op: BinOp::LOr,
                lhs,
                rhs,
            } => {
                let mid = self.b.new_block();
                self.cond(lhs, then_bb, mid)?;
                self.start_block(mid);
                self.cond(rhs, then_bb, else_bb)
            }
            Expr::Un {
                op: UnOp::LNot,
                expr,
            } => self.cond(expr, else_bb, then_bb),
            Expr::Bin {
                op: op @ (BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge),
                lhs,
                rhs,
            } => {
                let (a, af) = self.value(lhs)?;
                let (c, cf) = self.value(rhs)?;
                let cond = match op {
                    BinOp::Eq => Cond::Eq,
                    BinOp::Ne => Cond::Ne,
                    BinOp::Lt => Cond::Lt,
                    BinOp::Le => Cond::Le,
                    BinOp::Gt => Cond::Gt,
                    BinOp::Ge => Cond::Ge,
                    _ => unreachable!(),
                };
                let p = if af || cf {
                    let a = self.coerce(a, af, true)?;
                    let c = self.coerce(c, cf, true)?;
                    self.b.fcmp(self.cur, cond, a, c)
                } else {
                    self.b.icmp(self.cur, cond, a, c)
                };
                self.terminate(Terminator::CondBr {
                    pred: p,
                    then_bb,
                    else_bb,
                });
                Ok(())
            }
            _ => {
                let (v, f) = self.value(e)?;
                let v = self.coerce(v, f, false)?;
                let zero = self.b.iconst(self.cur, 0);
                let p = self.b.icmp(self.cur, Cond::Ne, v, zero);
                self.terminate(Terminator::CondBr {
                    pred: p,
                    then_bb,
                    else_bb,
                });
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::parser::parse;

    fn lower(src: &str) -> Module {
        let prog = parse(src).unwrap();
        let m = lower_program(&prog).unwrap();
        m.verify().expect("verifies");
        m
    }

    #[test]
    fn lowers_minimal_main() {
        let m = lower("fn main() { print(42); }");
        assert_eq!(m.funcs().len(), 1);
        assert!(m.func_by_name("main").is_some());
    }

    #[test]
    fn missing_main_rejected() {
        let prog = parse("fn f() { }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn lowers_loops_and_arrays() {
        let m = lower(
            r#"
            global a[10];
            fn main() {
                var i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
                print(a[5]);
            }
        "#,
        );
        let (_, f) = m.func_by_name("main").unwrap();
        assert!(
            f.blocks.len() >= 4,
            "loop produces head/body/step/exit blocks"
        );
    }

    #[test]
    fn lowers_calls_with_forward_reference() {
        let m = lower(
            r#"
            fn main() { print(helper(3)); }
            fn helper(x) { return x + 1; }
        "#,
        );
        assert_eq!(m.funcs().len(), 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let prog = parse("fn main() { f(1, 2); } fn f(x) { return x; }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn unknown_symbol_rejected() {
        let prog = parse("fn main() { x = 3; }").unwrap();
        assert!(lower_program(&prog).is_err());
        let prog = parse("fn main() { print(q(1)); }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn float_promotion() {
        let m = lower(
            r#"
            fglobal fs[4];
            fn main() {
                fvar x = 1.5;
                fvar y = x * 2;      // int promoted
                fs[0] = y;
                var i = int(y + 0.5);
                print(i);
            }
        "#,
        );
        m.verify().unwrap();
    }

    #[test]
    fn float_rem_rejected() {
        let prog = parse("fn main() { fvar x = 1.0; fvar y = x % 2.0; }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn boolean_as_value() {
        let m = lower("fn main() { var b = (3 < 4); print(b); }");
        let (_, f) = m.func_by_name("main").unwrap();
        assert!(f.blocks.len() >= 3, "diamond for boolean materialization");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let prog = parse("fn main() { break; }").unwrap();
        assert!(lower_program(&prog).is_err());
    }

    #[test]
    fn short_circuit_creates_blocks() {
        let m = lower("fn main() { var a = 1; if (a < 2 && a > 0) { print(1); } }");
        let (_, f) = m.func_by_name("main").unwrap();
        assert!(f.blocks.len() >= 4);
    }

    #[test]
    fn global_initializers_encoded() {
        let m = lower(
            r#"
            global tab[3] = { 1, -2, 3 };
            bglobal s[8] = "ab";
            fglobal fc[1] = { 2.5 };
            fn main() { print(tab[0]); }
        "#,
        );
        let g = &m.globals()[0];
        assert_eq!(g.size, 12);
        assert_eq!(&g.init[0..4], &1i32.to_le_bytes());
        assert_eq!(&g.init[4..8], &(-2i32).to_le_bytes());
        let s = &m.globals()[1];
        assert_eq!(&s.init, &[b'a', b'b', 0]);
        let f = &m.globals()[2];
        assert_eq!(&f.init, &2.5f32.to_le_bytes());
    }
}

#[cfg(test)]
mod half_tests {
    use super::*;
    use crate::lang::parser::parse;

    #[test]
    fn hglobal_lowers_with_half_width_and_2byte_elements() {
        let m = lower_program(
            &parse("hglobal h[4] = { 7, -8 }; fn main() { h[2] = h[0] + h[1]; print(h[2]); }")
                .unwrap(),
        )
        .unwrap();
        m.verify().unwrap();
        let g = &m.globals()[0];
        assert_eq!(g.size, 8, "4 half-words = 8 bytes");
        assert_eq!(&g.init[0..2], &7i16.to_le_bytes());
        assert_eq!(&g.init[2..4], &(-8i16).to_le_bytes());
        // The function must contain Half-width memory ops.
        let f = &m.funcs()[0];
        let has_half = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Load {
                    width: Width::Half,
                    ..
                } | Inst::Store {
                    width: Width::Half,
                    ..
                }
            )
        });
        assert!(has_half, "half-width accesses expected");
    }
}
