//! The *Tink* frontend language.
//!
//! Tink is a small C-like systems language sufficient to express the
//! benchmark suite: 32-bit integers and floats, global scalar/array data
//! (word, half, byte and float element widths, with initializers),
//! functions
//! with up to six parameters, recursion, `if`/`while`/`for`, short-circuit
//! booleans, and the `print`/`putc` output builtins.
//!
//! Grammar sketch (see `parser.rs` for the precise rules):
//!
//! ```text
//! program   := (global | func)*
//! global    := ("global" | "hglobal" | "bglobal" | "fglobal") ident "[" num "]" ("=" init)? ";"
//!            | "global" ident ("=" expr)? ";"
//! func      := "fn" ident "(" params ")" block
//! stmt      := "var" ident ("=" expr)? ";" | "fvar" ident ("=" expr)? ";"
//!            | lvalue "=" expr ";" | "if" "(" expr ")" block ("else" (block|if))?
//!            | "while" "(" expr ")" block | "for" "(" ... ")" block
//!            | "break" ";" | "continue" ";" | "return" expr? ";" | expr ";"
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::Program;
pub use lower::lower_program;
pub use parser::{parse, ParseError};
