//! Recursive-descent / precedence-climbing parser for Tink.

use super::ast::*;
use super::lexer::{lex, LexError, SpannedTok, Tok};
use std::fmt;

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            message: e.message,
        }
    }
}

/// Parses a full Tink program.
///
/// # Errors
///
/// Returns [`ParseError`] describing the first syntax error.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Global => prog.globals.push(self.global(ElemKind::Word)?),
                Tok::BGlobal => prog.globals.push(self.global(ElemKind::Byte)?),
                Tok::HGlobal => prog.globals.push(self.global(ElemKind::Half)?),
                Tok::FGlobal => prog.globals.push(self.global(ElemKind::Float)?),
                Tok::Fn => prog.funcs.push(self.func()?),
                other => return self.err(format!("expected declaration, found {other:?}")),
            }
        }
        Ok(prog)
    }

    fn global(&mut self, kind: ElemKind) -> Result<GlobalDecl, ParseError> {
        self.next(); // keyword
        let name = self.ident()?;
        let count = if *self.peek() == Tok::LBracket {
            self.next();
            let n = match self.next() {
                Tok::Int(v) if v > 0 && v <= 16 * 1024 * 1024 => v as u32,
                other => return self.err(format!("expected positive array size, found {other:?}")),
            };
            self.expect(Tok::RBracket)?;
            n
        } else {
            1
        };
        let init = if *self.peek() == Tok::Assign {
            self.next();
            match self.peek().clone() {
                Tok::Str(s) => {
                    self.next();
                    if kind != ElemKind::Byte {
                        return self.err("string initializer requires a byte global");
                    }
                    GlobalInit::Str(s)
                }
                Tok::LBrace => {
                    self.next();
                    if kind == ElemKind::Float {
                        let mut vals = Vec::new();
                        loop {
                            match self.next() {
                                Tok::Float(v) => vals.push(v),
                                Tok::Int(v) => vals.push(v as f32),
                                Tok::Minus => match self.next() {
                                    Tok::Float(v) => vals.push(-v),
                                    Tok::Int(v) => vals.push(-(v as f32)),
                                    other => {
                                        return self.err(format!(
                                            "expected number after -, found {other:?}"
                                        ))
                                    }
                                },
                                other => {
                                    return self.err(format!("expected float, found {other:?}"))
                                }
                            }
                            match self.next() {
                                Tok::Comma => continue,
                                Tok::RBrace => break,
                                other => {
                                    return self.err(format!("expected , or }}, found {other:?}"))
                                }
                            }
                        }
                        GlobalInit::FloatList(vals)
                    } else {
                        let mut vals = Vec::new();
                        loop {
                            match self.next() {
                                Tok::Int(v) => vals.push(v),
                                Tok::Minus => match self.next() {
                                    Tok::Int(v) => vals.push(-v),
                                    other => {
                                        return self
                                            .err(format!("expected int after -, found {other:?}"))
                                    }
                                },
                                other => {
                                    return self.err(format!("expected integer, found {other:?}"))
                                }
                            }
                            match self.next() {
                                Tok::Comma => continue,
                                Tok::RBrace => break,
                                other => {
                                    return self.err(format!("expected , or }}, found {other:?}"))
                                }
                            }
                        }
                        GlobalInit::IntList(vals)
                    }
                }
                Tok::Int(v) => {
                    self.next();
                    GlobalInit::IntList(vec![v])
                }
                Tok::Minus => {
                    self.next();
                    match self.next() {
                        Tok::Int(v) => GlobalInit::IntList(vec![-v]),
                        other => return self.err(format!("expected int after -, found {other:?}")),
                    }
                }
                Tok::Float(v) => {
                    self.next();
                    GlobalInit::FloatList(vec![v])
                }
                other => return self.err(format!("expected initializer, found {other:?}")),
            }
        } else {
            GlobalInit::None
        };
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            kind,
            count,
            init,
        })
    }

    fn func(&mut self) -> Result<FuncDecl, ParseError> {
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                params.push(self.ident()?);
                if *self.peek() == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        if params.len() > 6 {
            return self.err("functions support at most 6 parameters");
        }
        let body = self.block()?;
        Ok(FuncDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.next();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Var | Tok::FVar => {
                let float = *self.peek() == Tok::FVar;
                self.next();
                let name = self.ident()?;
                let init = if *self.peek() == Tok::Assign {
                    self.next();
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::VarDecl { name, float, init })
            }
            Tok::If => self.if_stmt(),
            Tok::While => {
                self.next();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::For => {
                self.next();
                self.expect(Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    self.next();
                    None
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = self.expr()?;
                self.expect(Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Break => {
                self.next();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.next();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::Return => {
                self.next();
                let v = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return(v))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::If)?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_body = self.block()?;
        let else_body = if *self.peek() == Tok::Else {
            self.next();
            if *self.peek() == Tok::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            vec![]
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
        })
    }

    /// Assignment or expression statement (no trailing `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        // Lookahead for `ident =` or `ident [ ... ] =`.
        if let Tok::Ident(name) = self.peek().clone() {
            let save = self.pos;
            self.next();
            match self.peek().clone() {
                Tok::Assign => {
                    self.next();
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        lvalue: LValue::Var(name),
                        value,
                    });
                }
                Tok::LBracket => {
                    self.next();
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    if *self.peek() == Tok::Assign {
                        self.next();
                        let value = self.expr()?;
                        return Ok(Stmt::Assign {
                            lvalue: LValue::Index {
                                name,
                                index: Box::new(index),
                            },
                            value,
                        });
                    }
                    self.pos = save;
                }
                _ => self.pos = save,
            }
        }
        Ok(Stmt::ExprStmt(self.expr()?))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.bin_expr(0)
    }

    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (BinOp::LOr, 1),
                Tok::AmpAmp => (BinOp::LAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::Eq => (BinOp::Eq, 6),
                Tok::Ne => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.next();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.next();
                Ok(Expr::Un {
                    op: UnOp::Neg,
                    expr: Box::new(self.unary()?),
                })
            }
            Tok::Tilde => {
                self.next();
                Ok(Expr::Un {
                    op: UnOp::Not,
                    expr: Box::new(self.unary()?),
                })
            }
            Tok::Bang => {
                self.next();
                Ok(Expr::Un {
                    op: UnOp::LNot,
                    expr: Box::new(self.unary()?),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.next();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.next();
                Ok(Expr::Float(v))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.next();
                match self.peek() {
                    Tok::LParen => {
                        self.next();
                        let mut args = Vec::new();
                        if *self.peek() != Tok::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Tok::Comma {
                                    self.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen)?;
                        Ok(Expr::Call { name, args })
                    }
                    Tok::LBracket => {
                        self.next();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Index {
                            name,
                            index: Box::new(index),
                        })
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("fn main() { print(1); }").unwrap();
        assert_eq!(p.funcs.len(), 1);
        assert_eq!(p.funcs[0].name, "main");
        assert_eq!(p.funcs[0].body.len(), 1);
    }

    #[test]
    fn parses_globals() {
        let p = parse(
            r#"
            global x;
            global tab[4] = { 1, 2, -3, 4 };
            bglobal msg[8] = "hi";
            fglobal coef[2] = { 0.5, -1.25 };
        "#,
        )
        .unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.globals[1].init, GlobalInit::IntList(vec![1, 2, -3, 4]));
        assert_eq!(p.globals[2].init, GlobalInit::Str("hi".into()));
        assert_eq!(p.globals[3].init, GlobalInit::FloatList(vec![0.5, -1.25]));
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn f() { var x; x = 1 + 2 * 3; }").unwrap();
        match &p.funcs[0].body[1] {
            Stmt::Assign {
                value:
                    Expr::Bin {
                        op: BinOp::Add,
                        rhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            fn f(n) {
                var s; s = 0;
                for (var_i = 0; var_i < n; var_i = var_i + 1) { s = s + var_i; }
                while (s > 100) { s = s - 100; if (s == 50) { break; } else { continue; } }
                return s;
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.funcs[0].params, vec!["n"]);
        assert!(matches!(p.funcs[0].body[2], Stmt::For { .. }));
        assert!(matches!(p.funcs[0].body[3], Stmt::While { .. }));
    }

    #[test]
    fn parses_array_assignment() {
        let p = parse("global a[4]; fn f() { a[2] = a[1] + 1; }").unwrap();
        assert!(matches!(
            p.funcs[0].body[0],
            Stmt::Assign {
                lvalue: LValue::Index { .. },
                ..
            }
        ));
    }

    #[test]
    fn short_circuit_precedence() {
        let p =
            parse("fn f(a, b) { if (a < 1 && b > 2 || a == b) { return 1; } return 0; }").unwrap();
        match &p.funcs[0].body[0] {
            Stmt::If {
                cond:
                    Expr::Bin {
                        op: BinOp::LOr,
                        lhs,
                        ..
                    },
                ..
            } => {
                assert!(matches!(
                    **lhs,
                    Expr::Bin {
                        op: BinOp::LAnd,
                        ..
                    }
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn else_if_chains() {
        let p = parse(
            "fn f(x) { if (x) { return 1; } else if (x > 1) { return 2; } else { return 3; } }",
        );
        assert!(p.is_ok());
    }

    #[test]
    fn rejects_seven_params() {
        assert!(parse("fn f(a,b,c,d,e,g,h) { }").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("fn f() { var; }").is_err());
        assert!(parse("fn f() { x = ; }").is_err());
        assert!(parse("fn f() {").is_err());
        assert!(parse("global g[0];").is_err());
    }
}
