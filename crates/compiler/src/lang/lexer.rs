//! Tink lexer.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals and identifiers.
    Int(i64),
    Float(f32),
    Str(String),
    Ident(String),
    // Keywords.
    Fn,
    Var,
    FVar,
    Global,
    BGlobal,
    HGlobal,
    FGlobal,
    If,
    Else,
    While,
    For,
    Break,
    Continue,
    Return,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // Operators.
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token plus its 1-based source line (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub line: u32,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes Tink source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on unknown characters, malformed numbers or
/// unterminated strings.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let err = |line: u32, m: &str| LexError {
        line,
        message: m.to_string(),
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // Float literal: digits '.' digits
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: f32 = text
                        .parse()
                        .map_err(|_| err(line, &format!("bad float literal {text}")))?;
                    out.push(SpannedTok {
                        tok: Tok::Float(v),
                        line,
                    });
                } else if i < b.len() && (b[i] == b'x' || b[i] == b'X') && &src[start..i] == "0" {
                    i += 1;
                    let hs = i;
                    while i < b.len() && b[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    if hs == i {
                        return Err(err(line, "empty hex literal"));
                    }
                    let v = i64::from_str_radix(&src[hs..i], 16)
                        .map_err(|_| err(line, "hex literal overflow"))?;
                    out.push(SpannedTok {
                        tok: Tok::Int(v),
                        line,
                    });
                } else {
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(line, &format!("bad integer literal {text}")))?;
                    out.push(SpannedTok {
                        tok: Tok::Int(v),
                        line,
                    });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "var" => Tok::Var,
                    "fvar" => Tok::FVar,
                    "global" => Tok::Global,
                    "bglobal" => Tok::BGlobal,
                    "hglobal" => Tok::HGlobal,
                    "fglobal" => Tok::FGlobal,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "for" => Tok::For,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "return" => Tok::Return,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(SpannedTok { tok, line });
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err(line, "unterminated string literal"));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return Err(err(line, "unterminated escape"));
                            }
                            let e = match b[i] {
                                b'n' => '\n',
                                b't' => '\t',
                                b'0' => '\0',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(err(
                                        line,
                                        &format!("unknown escape \\{}", other as char),
                                    ))
                                }
                            };
                            s.push(e);
                            i += 1;
                        }
                        b'\n' => return Err(err(line, "newline in string literal")),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            b'\'' => {
                // Character literal → integer token.
                if i + 2 < b.len() && b[i + 1] != b'\\' && b[i + 2] == b'\'' {
                    out.push(SpannedTok {
                        tok: Tok::Int(b[i + 1] as i64),
                        line,
                    });
                    i += 3;
                } else if i + 3 < b.len() && b[i + 1] == b'\\' && b[i + 3] == b'\'' {
                    let v = match b[i + 2] {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        _ => return Err(err(line, "unknown character escape")),
                    };
                    out.push(SpannedTok {
                        tok: Tok::Int(v as i64),
                        line,
                    });
                    i += 4;
                } else {
                    return Err(err(line, "malformed character literal"));
                }
            }
            _ => {
                let two = if i + 1 < b.len() { &src[i..i + 2] } else { "" };
                let (tok, adv) = match two {
                    "<<" => (Tok::Shl, 2),
                    ">>" => (Tok::Shr, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "==" => (Tok::Eq, 2),
                    "!=" => (Tok::Ne, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b',' => (Tok::Comma, 1),
                        b';' => (Tok::Semi, 1),
                        b'=' => (Tok::Assign, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'^' => (Tok::Caret, 1),
                        b'~' => (Tok::Tilde, 1),
                        b'!' => (Tok::Bang, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        other => {
                            return Err(err(
                                line,
                                &format!("unexpected character {:?}", other as char),
                            ))
                        }
                    },
                };
                out.push(SpannedTok { tok, line });
                i += adv;
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("fn main var x"),
            vec![
                Tok::Fn,
                Tok::Ident("main".into()),
                Tok::Var,
                Tok::Ident("x".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            toks("42 0x1F 3.5"),
            vec![Tok::Int(42), Tok::Int(31), Tok::Float(3.5), Tok::Eof]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("<= >= == != << >> && ||"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // two three\n2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""hi\n""#), vec![Tok::Str("hi\n".into()), Tok::Eof]);
    }

    #[test]
    fn char_literals() {
        assert_eq!(
            toks(r"'A' '\n'"),
            vec![Tok::Int(65), Tok::Int(10), Tok::Eof]
        );
    }

    #[test]
    fn line_numbers_tracked() {
        let ts = lex("1\n2\n3").unwrap();
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
        assert_eq!(ts[2].line, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("a $ b").is_err());
        assert!(lex("\"unterminated").is_err());
    }
}
