//! Tink abstract syntax tree.

/// Binary operators (integer or float, resolved during lowering).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
    LNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Int(i64),
    Float(f32),
    /// Variable reference (local or global scalar).
    Var(String),
    /// `name[index]` — global array element.
    Index {
        name: String,
        index: Box<Expr>,
    },
    Bin {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Un {
        op: UnOp,
        expr: Box<Expr>,
    },
    Call {
        name: String,
        args: Vec<Expr>,
    },
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    Index { name: String, index: Box<Expr> },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x;` / `var x = e;`
    VarDecl {
        name: String,
        float: bool,
        init: Option<Expr>,
    },
    Assign {
        lvalue: LValue,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// `for (init; cond; step) body` — any part optional except cond.
    For {
        init: Option<Box<Stmt>>,
        cond: Expr,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Break,
    Continue,
    Return(Option<Expr>),
    ExprStmt(Expr),
}

/// Element width of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    Word,
    Byte,
    /// 16-bit signed half-words.
    Half,
    Float,
}

/// Global initializer.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// No initializer (zero-filled).
    None,
    /// `= { 1, 2, 3 }` (ints or floats per element kind).
    IntList(Vec<i64>),
    FloatList(Vec<f32>),
    /// `= "text"` (byte globals only; NUL-terminated).
    Str(String),
}

/// A global declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    pub kind: ElemKind,
    /// Element count (1 for scalars).
    pub count: u32,
    pub init: GlobalInit,
}

/// A function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
}

/// A whole parsed program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub funcs: Vec<FuncDecl>,
}
