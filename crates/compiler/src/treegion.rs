//! Treegion formation and treegion-guided block layout.
//!
//! A *treegion* (Havanki/Banerjia/Conte) is a single-entry tree of basic
//! blocks: block `b` joins its parent's treegion when `b` has exactly one
//! CFG predecessor. Side entrances (join points) and loop headers start
//! new treegions. The LEGO compiler schedules over treegions and then
//! decomposes back into basic blocks (paper §2.1, §3.1 note); here the
//! formation drives **block layout**: blocks of one treegion are laid out
//! depth-first, preferring the statically likelier child as the
//! fall-through successor, which maximizes sequential fetch in the atomic
//! block discipline.

use std::collections::HashSet;
use tinker_ir::{BlockRef, CfgInfo, Function};

/// One treegion: blocks forming a single-entry tree in the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Treegion {
    /// The tree root (its only entry point).
    pub root: BlockRef,
    /// Member blocks in depth-first order (root first).
    pub blocks: Vec<BlockRef>,
}

/// Partitions the reachable CFG into treegions.
///
/// Every reachable block belongs to exactly one treegion; a block roots a
/// new treegion iff it is the function entry, has more than one
/// predecessor, or is the target of a back edge.
pub fn form_treegions(func: &Function, cfg: &CfgInfo) -> Vec<Treegion> {
    let mut regions = Vec::new();
    let mut assigned: HashSet<u32> = HashSet::new();

    // Roots: entry + join points + loop headers, in RPO for determinism.
    let is_root = |b: BlockRef| -> bool {
        b == func.entry() || cfg.preds[b.0 as usize].len() != 1 || {
            // Back-edge target: a predecessor later in RPO.
            let my = cfg.rpo_index[b.0 as usize];
            cfg.preds[b.0 as usize]
                .iter()
                .any(|p| cfg.rpo_index[p.0 as usize] >= my)
        }
    };

    for &root in &cfg.rpo {
        if assigned.contains(&root.0) || !is_root(root) {
            continue;
        }
        let mut blocks = Vec::new();
        // DFS over single-pred children, likelier child first.
        let mut stack = vec![root];
        while let Some(b) = stack.pop() {
            if assigned.contains(&b.0) {
                continue;
            }
            assigned.insert(b.0);
            blocks.push(b);
            let mut children: Vec<BlockRef> = cfg.succs[b.0 as usize]
                .iter()
                .copied()
                .filter(|&s| !is_root(s) && !assigned.contains(&s.0))
                .collect();
            // Push the likelier child last so DFS visits it first.
            children.sort_by_key(|&c| cfg.static_freq(c));
            stack.extend(children);
        }
        regions.push(Treegion { root, blocks });
    }

    // Any block not yet assigned (e.g. unreachable-from-roots oddities)
    // becomes its own region, preserving totality.
    for &b in &cfg.rpo {
        if !assigned.contains(&b.0) {
            assigned.insert(b.0);
            regions.push(Treegion {
                root: b,
                blocks: vec![b],
            });
        }
    }
    regions
}

/// Produces a block layout: treegions in RPO-of-roots order, each
/// treegion's blocks contiguous in tree order. The entry block is always
/// first. Unreachable blocks are appended at the end (they still need
/// addresses).
pub fn layout_order(func: &Function, cfg: &CfgInfo) -> Vec<BlockRef> {
    let regions = form_treegions(func, cfg);
    let mut order: Vec<BlockRef> = Vec::with_capacity(func.blocks.len());
    let mut seen = HashSet::new();
    for r in &regions {
        for &b in &r.blocks {
            if seen.insert(b.0) {
                order.push(b);
            }
        }
    }
    for b in func.block_refs() {
        if seen.insert(b.0) {
            order.push(b);
        }
    }
    debug_assert_eq!(order.len(), func.blocks.len());
    debug_assert_eq!(order.first(), Some(&func.entry()));
    order
}

/// Simple statistics over a function's treegions (reported by the
/// experiment harness; the paper motivates treegions by their size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreegionStats {
    /// Number of treegions.
    pub count: usize,
    /// Mean blocks per treegion.
    pub avg_blocks: f64,
    /// Largest treegion, in blocks.
    pub max_blocks: usize,
}

/// Computes [`TreegionStats`] for a function.
pub fn stats(func: &Function, cfg: &CfgInfo) -> TreegionStats {
    let regions = form_treegions(func, cfg);
    let total: usize = regions.iter().map(|r| r.blocks.len()).sum();
    TreegionStats {
        count: regions.len(),
        avg_blocks: if regions.is_empty() {
            0.0
        } else {
            total as f64 / regions.len() as f64
        },
        max_blocks: regions.iter().map(|r| r.blocks.len()).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{lower_program, parser::parse};
    use tinker_ir::CfgInfo;

    fn func_of(src: &str) -> tinker_ir::Function {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        let (_, f) = m.func_by_name("main").unwrap();
        f.clone()
    }

    #[test]
    fn every_block_in_exactly_one_region() {
        let f = func_of(
            "fn main() { var i = 0; while (i < 5) { if (i > 2) { print(i); } i = i + 1; } }",
        );
        let cfg = CfgInfo::compute(&f);
        let regions = form_treegions(&f, &cfg);
        let mut count = vec![0usize; f.blocks.len()];
        for r in &regions {
            for b in &r.blocks {
                count[b.0 as usize] += 1;
            }
        }
        for (i, &c) in count.iter().enumerate() {
            if cfg.is_reachable(BlockRef(i as u32)) {
                assert_eq!(c, 1, "block {i} in {c} regions");
            }
        }
    }

    #[test]
    fn roots_are_single_entry() {
        let f =
            func_of("fn main() { var x = 1; if (x) { print(1); } else { print(2); } print(3); }");
        let cfg = CfgInfo::compute(&f);
        for r in form_treegions(&f, &cfg) {
            // Non-root members must have exactly one predecessor.
            for &b in &r.blocks[1..] {
                assert_eq!(
                    cfg.preds[b.0 as usize].len(),
                    1,
                    "side entrance into treegion"
                );
            }
        }
    }

    #[test]
    fn layout_starts_at_entry_and_is_a_permutation() {
        let f = func_of(
            "fn main() { var i = 0; for (i = 0; i < 9; i = i + 1) { if (i % 2) { print(i); } } }",
        );
        let cfg = CfgInfo::compute(&f);
        let order = layout_order(&f, &cfg);
        assert_eq!(order[0], f.entry());
        let mut sorted: Vec<u32> = order.iter().map(|b| b.0).collect();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..f.blocks.len() as u32).collect();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn loop_header_roots_a_region() {
        let f = func_of("fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }");
        let cfg = CfgInfo::compute(&f);
        let regions = form_treegions(&f, &cfg);
        // Find the block with loop_depth 1 and >1 preds — the header must
        // be some region's root.
        let header = f
            .block_refs()
            .find(|&b| cfg.loop_depth[b.0 as usize] == 1 && cfg.preds[b.0 as usize].len() > 1)
            .expect("loop header exists");
        assert!(regions.iter().any(|r| r.root == header));
    }

    #[test]
    fn stats_are_consistent() {
        let f = func_of("fn main() { print(1); }");
        let cfg = CfgInfo::compute(&f);
        let s = stats(&f, &cfg);
        assert!(s.count >= 1);
        assert!(s.max_blocks >= 1);
        assert!(s.avg_blocks >= 1.0);
    }
}
