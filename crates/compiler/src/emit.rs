//! Final emission: scheduled machine functions → an executable
//! [`tepic_isa::Program`] with global block numbering, resolved call and
//! branch targets, tail bits, and the data segment.

use crate::machine::{MFunction, MInst, MReg};
use crate::sched::SchedFunction;
use std::fmt;
use tepic_isa::op::{OpKind, Operation};
use tepic_isa::regs::{Fpr, Gpr, Pr};
use tepic_isa::{BlockInfo, FuncInfo, Program};
use tinker_ir::RegClass;

/// Emission failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitError {
    /// The assembled program failed `Program` validation.
    Program(tepic_isa::image::ProgramError),
    /// More blocks than the 16-bit branch target field supports.
    TooManyBlocks(usize),
    /// `main` is missing.
    NoMain,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmitError::Program(e) => write!(f, "program validation failed: {e}"),
            EmitError::TooManyBlocks(n) => write!(f, "{n} blocks exceed 16-bit target space"),
            EmitError::NoMain => write!(f, "no main function"),
        }
    }
}

impl std::error::Error for EmitError {}

/// Per-function block numbering: empty machine blocks are dropped and any
/// reference to them resolves forward to the next kept block.
struct FnLayout {
    /// machine block index → *global* block id it resolves to.
    resolve: Vec<u32>,
    /// Kept machine block indices in order.
    kept: Vec<usize>,
}

impl FnLayout {
    fn resolve_local(&self, machine_block: u32) -> u32 {
        self.resolve[machine_block as usize]
    }
}

/// Assembles scheduled functions into a program.
///
/// `funcs` pairs each machine function (for block metadata) with its
/// schedule; `main_index` selects the entry function; `data`/`data_base`
/// give the initial data segment.
///
/// # Errors
///
/// Returns [`EmitError`] on validation failure or a missing entry.
pub fn emit_program(
    funcs: &[(MFunction, SchedFunction)],
    main_index: usize,
    data: Vec<u8>,
    data_base: u32,
) -> Result<Program, EmitError> {
    if main_index >= funcs.len() {
        return Err(EmitError::NoMain);
    }

    // Pass 1: number kept blocks globally.
    let mut layouts: Vec<FnLayout> = Vec::with_capacity(funcs.len());
    let mut next_global = 0u32;
    for (_, sched) in funcs {
        let nb = sched.blocks.len();
        let mut kept = Vec::new();
        let mut kept_id = vec![u32::MAX; nb];
        for (bi, cycles) in sched.blocks.iter().enumerate() {
            if !cycles.is_empty() {
                kept_id[bi] = next_global + kept.len() as u32;
                kept.push(bi);
            }
        }
        let mut resolve = vec![u32::MAX; nb];
        let mut next_kept = u32::MAX;
        for bi in (0..nb).rev() {
            if kept_id[bi] != u32::MAX {
                next_kept = kept_id[bi];
            }
            resolve[bi] = next_kept;
        }
        debug_assert!(
            resolve.iter().all(|&r| r != u32::MAX),
            "function ends with an empty block"
        );
        next_global += kept.len() as u32;
        layouts.push(FnLayout { resolve, kept });
    }
    if next_global as usize > u16::MAX as usize + 1 {
        return Err(EmitError::TooManyBlocks(next_global as usize));
    }

    // Pass 2: emit operations.
    let mut ops: Vec<Operation> = Vec::new();
    let mut blocks: Vec<BlockInfo> = Vec::new();
    let mut func_infos: Vec<FuncInfo> = Vec::new();
    for (fi, (mf, sched)) in funcs.iter().enumerate() {
        let lay = &layouts[fi];
        let first_block = blocks.len();
        for &bi in &lay.kept {
            let cycles = &sched.blocks[bi];
            let first_op = ops.len();
            let mut num_ops = 0usize;
            for cycle in cycles {
                for (k, inst) in cycle.iter().enumerate() {
                    let tail = k + 1 == cycle.len();
                    ops.push(lower_inst(inst, tail, lay, &layouts));
                    num_ops += 1;
                }
            }
            blocks.push(BlockInfo {
                first_op,
                num_ops,
                num_mops: cycles.len(),
                func: fi,
            });
        }
        func_infos.push(FuncInfo {
            name: mf.name.clone(),
            first_block,
            num_blocks: lay.kept.len(),
        });
    }

    let entry = layouts[main_index].resolve[0] as usize;
    Program::new(ops, blocks, func_infos, entry, data, data_base).map_err(EmitError::Program)
}

fn gpr(r: MReg) -> Gpr {
    Gpr::new(r.phys())
}

fn fpr(r: MReg) -> Fpr {
    Fpr::new(r.phys())
}

fn pr(r: MReg) -> Pr {
    Pr::new(r.phys())
}

fn lower_inst(inst: &MInst, tail: bool, lay: &FnLayout, all: &[FnLayout]) -> Operation {
    let mut pred = Pr::P0;
    let kind = match inst {
        MInst::IntAlu { op, dst, a, b } => OpKind::IntAlu {
            op: *op,
            src1: gpr(*a),
            src2: gpr(*b),
            dest: gpr(*dst),
        },
        MInst::IntCmp { cond, dst, a, b } => OpKind::IntCmp {
            cond: *cond,
            src1: gpr(*a),
            src2: gpr(*b),
            dest: pr(*dst),
        },
        MInst::FloatCmp { cond, dst, a, b } => OpKind::FloatCmp {
            cond: *cond,
            src1: fpr(*a),
            src2: fpr(*b),
            dest: pr(*dst),
        },
        MInst::LoadImm { high, imm, dst } => OpKind::LoadImm {
            high: *high,
            imm: *imm,
            dest: gpr(*dst),
        },
        MInst::Float { op, dst, a, b } => OpKind::Float {
            op: *op,
            src1: fpr(*a),
            src2: fpr(*b),
            dest: fpr(*dst),
        },
        MInst::CvtIf { dst, a } => OpKind::CvtIf {
            src: gpr(*a),
            dest: fpr(*dst),
        },
        MInst::CvtFi { dst, a } => OpKind::CvtFi {
            src: fpr(*a),
            dest: gpr(*dst),
        },
        MInst::Load { width, dst, base } => OpKind::Load {
            width: *width,
            base: gpr(*base),
            lat: 2,
            dest: gpr(*dst),
        },
        MInst::Store { width, base, value } => OpKind::Store {
            width: *width,
            base: gpr(*base),
            value: gpr(*value),
        },
        MInst::FLoad { dst, base } => OpKind::FLoad {
            base: gpr(*base),
            lat: 2,
            dest: fpr(*dst),
        },
        MInst::FStore { base, value } => OpKind::FStore {
            base: gpr(*base),
            value: fpr(*value),
        },
        MInst::Copy { class, dst, src } => match class {
            RegClass::Int => OpKind::IntAlu {
                op: tepic_isa::op::IntOpcode::Mov,
                src1: gpr(*src),
                src2: Gpr::ZERO,
                dest: gpr(*dst),
            },
            RegClass::Float => OpKind::Float {
                op: tepic_isa::op::FloatOpcode::Fmov,
                src1: fpr(*src),
                src2: fpr(*src),
                dest: fpr(*dst),
            },
            RegClass::Pred => unreachable!("predicate copies are never emitted"),
        },
        MInst::Branch { pred: p, target } => {
            if let Some(pp) = p {
                pred = pr(*pp);
            }
            OpKind::Branch {
                target: lay.resolve_local(*target) as u16,
            }
        }
        MInst::Call { callee, .. } => OpKind::Call {
            target: all[callee.0 as usize].resolve_local(0) as u16,
            link: Gpr::LR,
        },
        MInst::Ret { addr } => OpKind::Ret { src: gpr(*addr) },
        MInst::Halt => OpKind::Halt,
        MInst::Sys { code, arg } => OpKind::Sys {
            code: *code,
            arg: gpr(*arg),
        },
    };
    Operation {
        tail,
        spec: false,
        pred,
        kind,
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::{compile, Options};
    use tepic_isa::op::OpKind;

    #[test]
    fn entry_is_mains_first_block() {
        let p = compile(
            "fn helper() { return 3; } fn main() { print(helper()); }",
            &Options::default(),
        )
        .unwrap();
        // main is the second function; the entry block must belong to it.
        let entry_func = p.blocks()[p.entry()].func;
        assert_eq!(p.funcs()[entry_func].name, "main");
    }

    #[test]
    fn calls_resolve_to_callee_entry_blocks() {
        let p = compile(
            "fn main() { print(f(1)); } fn f(x) { return x * 2; }",
            &Options::default(),
        )
        .unwrap();
        let f_entry = {
            let (fi, info) = p
                .funcs()
                .iter()
                .enumerate()
                .find(|(_, f)| f.name == "f")
                .expect("f exists");
            let _ = fi;
            info.first_block
        };
        let mut found = false;
        for op in p.ops() {
            if let OpKind::Call { target, .. } = op.kind {
                assert_eq!(target as usize, f_entry, "call targets f's entry");
                found = true;
            }
        }
        assert!(found, "no call emitted");
    }

    #[test]
    fn tail_bits_delimit_mops_consistently() {
        let p = compile(
            "fn main() { var i; var s = 0; for (i = 0; i < 5; i = i + 1) { s = s + i * i; } print(s); }",
            &Options::default(),
        )
        .unwrap();
        for b in 0..p.num_blocks() {
            let ops = p.block_ops(b);
            assert!(
                ops.last().unwrap().tail,
                "block {b} missing trailing tail bit"
            );
            let mops = tepic_isa::mop::count_mops(ops);
            assert_eq!(mops, p.blocks()[b].num_mops);
            for mop in tepic_isa::mop::mops(ops) {
                assert!(
                    tepic_isa::mop::is_legal_mop(mop),
                    "illegal MOP in block {b}"
                );
            }
        }
    }

    #[test]
    fn branch_targets_stay_in_function_and_resolve() {
        let src = r#"
            fn main() {
                var i;
                for (i = 0; i < 3; i = i + 1) {
                    if (i == 1) { print(10); } else { print(20); }
                }
            }
        "#;
        let p = compile(src, &Options::default()).unwrap();
        let main_info = p.funcs().iter().find(|f| f.name == "main").unwrap();
        let range = main_info.first_block..main_info.first_block + main_info.num_blocks;
        for op in p.ops() {
            if let OpKind::Branch { target } = op.kind {
                assert!(
                    range.contains(&(target as usize)),
                    "branch escapes its function: {target}"
                );
            }
        }
    }

    #[test]
    fn no_empty_blocks_survive_emission() {
        // Join blocks and fallthrough stubs collapse away.
        let src = "fn main() { var x = 1; if (x > 0) { x = 2; } print(x); }";
        let p = compile(src, &Options::default()).unwrap();
        for b in 0..p.num_blocks() {
            assert!(p.blocks()[b].num_ops > 0, "block {b} is empty");
        }
    }

    #[test]
    fn unoptimized_emission_also_validates() {
        let src = r#"
            global a[4];
            fn main() { a[0] = 1 + 2; print(a[0]); }
        "#;
        let p = compile(
            src,
            &Options {
                optimize: false,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(p.num_ops() > 0);
    }
}
