//! Linear-scan register allocation onto the TEPIC register files.
//!
//! Pools (see [`crate::machine`] for the reservation rationale):
//!
//! * GPR: caller-saved `r8..=r15`, callee-saved `r16..=r25` and `r28`;
//! * FPR: caller-saved `f0..=f15`, callee-saved `f16..=f29`;
//! * PR: `p1..=p31` (all caller-saved; predicate live ranges are
//!   block-local by construction and never cross calls).
//!
//! Intervals that span a call site must receive a callee-saved register
//! (calls clobber the caller-saved files) or spill to the stack frame.
//! Spill code uses the reserved scratch registers (`r30` for addresses,
//! `r26`/`r27` and `f30`/`f31` for values), so allocation never needs to
//! iterate.

use crate::liveness::{Interval, Liveness};
use crate::machine::{MFunction, MInst, MReg};
use std::collections::HashMap;
use std::fmt;
use tepic_isa::op::{IntOpcode, MemWidth};
use tepic_isa::regs::Gpr;
use tinker_ir::RegClass;

/// Allocatable pools per class: (caller-saved, callee-saved).
fn pools(class: RegClass) -> (&'static [u8], &'static [u8]) {
    match class {
        RegClass::Int => (
            &[8, 9, 10, 11, 12, 13, 14, 15],
            &[16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 28],
        ),
        RegClass::Float => (
            &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
            &[16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29],
        ),
        RegClass::Pred => (
            &[
                1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23,
                24, 25, 26, 27, 28, 29, 30, 31,
            ],
            &[],
        ),
    }
}

/// GPR scratch for spill addresses.
const ADDR_TMP: u8 = 30;
/// GPR scratch registers for spilled values.
const GPR_TMPS: [u8; 2] = [26, 27];
/// FPR scratch registers for spilled values.
const FPR_TMPS: [u8; 2] = [30, 31];

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegAllocError {
    /// A predicate interval would need to spill — cannot happen with the
    /// frontend's block-local predicate discipline; reported rather than
    /// silently miscompiled.
    PredicateSpill { func: String },
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegAllocError::PredicateSpill { func } => {
                write!(f, "{func}: predicate register pressure requires spilling")
            }
        }
    }
}

impl std::error::Error for RegAllocError {}

/// Result of allocation: the rewritten function plus frame facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameInfo {
    /// Stack frame size in bytes (0 = no frame, no prologue).
    pub frame_size: u32,
    /// Number of spill slots.
    pub spill_slots: u32,
    /// Callee-saved GPRs the function uses (saved/restored).
    pub saved_gprs: Vec<u8>,
    /// Callee-saved FPRs the function uses.
    pub saved_fprs: Vec<u8>,
}

#[derive(Clone, Copy)]
enum Loc {
    Reg(u8),
    Slot(u32),
}

/// Allocates registers for `f` in place: every `MReg::Virt` is replaced by
/// a physical register or spill code, and the prologue/epilogue is
/// inserted when a frame is needed.
///
/// # Errors
///
/// [`RegAllocError::PredicateSpill`] when predicate pressure exceeds the
/// 31 allocatable predicates (unreachable via the Tink frontend).
pub fn allocate(f: &mut MFunction) -> Result<FrameInfo, RegAllocError> {
    let liveness = Liveness::compute(f);
    let mut intervals = liveness.intervals(f);
    intervals.sort_by_key(|iv| (iv.start, iv.end, iv.vreg));

    // Call sites in linear index space.
    let mut call_points: Vec<u32> = Vec::new();
    {
        let mut idx = 0u32;
        for b in &f.blocks {
            for inst in &b.insts {
                if matches!(inst, MInst::Call { .. }) {
                    call_points.push(idx);
                }
                idx += 1;
            }
        }
    }
    let crosses_call =
        |iv: &Interval| -> bool { call_points.iter().any(|&c| iv.start < c && c < iv.end) };

    let mut loc: Vec<Option<Loc>> = vec![None; f.vclass.len()];
    let mut next_slot = 0u32;
    let mut used_callee: HashMap<RegClass, Vec<u8>> = HashMap::new();

    // Per-class active lists: (end, vreg, reg).
    let mut active: HashMap<RegClass, Vec<(u32, u32, u8)>> = HashMap::new();

    for iv in &intervals {
        let class = f.vclass[iv.vreg as usize];
        let (caller, callee) = pools(class);
        let act = active.entry(class).or_default();
        act.retain(|&(end, _, _)| end >= iv.start);

        let needs_callee = class != RegClass::Pred && crosses_call(iv);
        let in_use: Vec<u8> = act.iter().map(|&(_, _, r)| r).collect();
        let free = |pool: &[u8]| pool.iter().copied().find(|r| !in_use.contains(r));

        let choice = if needs_callee {
            free(callee)
        } else {
            free(caller).or_else(|| free(callee))
        };

        match choice {
            Some(reg) => {
                if callee.contains(&reg) {
                    let v = used_callee.entry(class).or_default();
                    if !v.contains(&reg) {
                        v.push(reg);
                    }
                }
                loc[iv.vreg as usize] = Some(Loc::Reg(reg));
                act.push((iv.end, iv.vreg, reg));
            }
            None => {
                // Try to steal from the active interval with the furthest
                // end whose register is compatible with our constraint.
                let victim = act
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, _, r))| !needs_callee || callee.contains(&r))
                    .max_by_key(|(_, &(end, _, _))| end)
                    .map(|(i, &v)| (i, v));
                match victim {
                    Some((ai, (vend, vvreg, vreg_phys))) if vend > iv.end => {
                        if class == RegClass::Pred {
                            return Err(RegAllocError::PredicateSpill {
                                func: f.name.clone(),
                            });
                        }
                        // Victim spills; we take its register.
                        loc[vvreg as usize] = Some(Loc::Slot(next_slot));
                        next_slot += 1;
                        loc[iv.vreg as usize] = Some(Loc::Reg(vreg_phys));
                        act.remove(ai);
                        act.push((iv.end, iv.vreg, vreg_phys));
                    }
                    _ => {
                        if class == RegClass::Pred {
                            return Err(RegAllocError::PredicateSpill {
                                func: f.name.clone(),
                            });
                        }
                        loc[iv.vreg as usize] = Some(Loc::Slot(next_slot));
                        next_slot += 1;
                    }
                }
            }
        }
    }

    let saved_gprs = used_callee.remove(&RegClass::Int).unwrap_or_default();
    let saved_fprs = used_callee.remove(&RegClass::Float).unwrap_or_default();
    let spill_slots = next_slot;
    // Frame: spill slots, then saved GPRs, then saved FPRs (4 bytes each).
    let frame_size = (spill_slots + saved_gprs.len() as u32 + saved_fprs.len() as u32) * 4;

    rewrite(f, &loc, spill_slots, frame_size, &saved_gprs, &saved_fprs);

    Ok(FrameInfo {
        frame_size,
        spill_slots,
        saved_gprs,
        saved_fprs,
    })
}

/// Emits `dst_gpr(ADDR_TMP) = sp + off` into `out`.
fn emit_slot_addr(out: &mut Vec<MInst>, off: u32) {
    let sp = MReg::Phys(Gpr::SP.index());
    let at = MReg::Phys(ADDR_TMP);
    if off == 0 {
        out.push(MInst::IntAlu {
            op: IntOpcode::Add,
            dst: at,
            a: sp,
            b: MReg::Phys(0),
        });
    } else {
        out.push(MInst::LoadImm {
            high: false,
            imm: off as i32,
            dst: at,
        });
        out.push(MInst::IntAlu {
            op: IntOpcode::Add,
            dst: at,
            a: sp,
            b: at,
        });
    }
}

fn emit_reload(out: &mut Vec<MInst>, class: RegClass, slot_off: u32, tmp: u8) {
    emit_slot_addr(out, slot_off);
    let at = MReg::Phys(ADDR_TMP);
    match class {
        RegClass::Int => out.push(MInst::Load {
            width: MemWidth::Word,
            dst: MReg::Phys(tmp),
            base: at,
        }),
        RegClass::Float => out.push(MInst::FLoad {
            dst: MReg::Phys(tmp),
            base: at,
        }),
        RegClass::Pred => unreachable!("predicates never spill"),
    }
}

fn emit_spill_store(out: &mut Vec<MInst>, class: RegClass, slot_off: u32, tmp: u8) {
    emit_slot_addr(out, slot_off);
    let at = MReg::Phys(ADDR_TMP);
    match class {
        RegClass::Int => out.push(MInst::Store {
            width: MemWidth::Word,
            base: at,
            value: MReg::Phys(tmp),
        }),
        RegClass::Float => out.push(MInst::FStore {
            base: at,
            value: MReg::Phys(tmp),
        }),
        RegClass::Pred => unreachable!("predicates never spill"),
    }
}

fn rewrite(
    f: &mut MFunction,
    loc: &[Option<Loc>],
    spill_slots: u32,
    frame_size: u32,
    saved_gprs: &[u8],
    saved_fprs: &[u8],
) {
    for block in &mut f.blocks {
        let old = std::mem::take(&mut block.insts);
        let mut out: Vec<MInst> = Vec::with_capacity(old.len());
        for mut inst in old {
            // Map spilled *uses* to temps (reload before the inst).
            let mut use_tmp: HashMap<u32, u8> = HashMap::new();
            let mut def_spill: Option<(u32, RegClass, u8)> = None;
            let mut gpr_tmp_i = 0usize;
            let mut fpr_tmp_i = 0usize;
            // First pass: plan temps for spilled operands.
            for (class, r) in inst.uses() {
                if let MReg::Virt(v) = r {
                    if let Some(Loc::Slot(s)) = loc[v as usize] {
                        if use_tmp.contains_key(&v) {
                            continue;
                        }
                        let tmp = match class {
                            RegClass::Int => {
                                let t = GPR_TMPS[gpr_tmp_i];
                                gpr_tmp_i += 1;
                                t
                            }
                            RegClass::Float => {
                                let t = FPR_TMPS[fpr_tmp_i];
                                fpr_tmp_i += 1;
                                t
                            }
                            RegClass::Pred => unreachable!("predicates never spill"),
                        };
                        emit_reload(&mut out, class, s * 4, tmp);
                        use_tmp.insert(v, tmp);
                    }
                }
            }
            for (class, r) in inst.defs() {
                if let MReg::Virt(v) = r {
                    if let Some(Loc::Slot(s)) = loc[v as usize] {
                        // Reuse the use temp when the same vreg is both
                        // read and written, else grab a fresh one.
                        let tmp = use_tmp.get(&v).copied().unwrap_or(match class {
                            RegClass::Int => GPR_TMPS[gpr_tmp_i.min(1)],
                            RegClass::Float => FPR_TMPS[fpr_tmp_i.min(1)],
                            RegClass::Pred => unreachable!(),
                        });
                        def_spill = Some((s, class, tmp));
                        use_tmp.insert(v, tmp);
                    }
                }
            }
            inst.map_regs(|class, _, r| match r {
                MReg::Virt(v) => match loc[v as usize] {
                    Some(Loc::Reg(p)) => MReg::Phys(p),
                    Some(Loc::Slot(_)) => MReg::Phys(use_tmp[&v]),
                    None => {
                        // A register with no interval is dead everywhere;
                        // route it to a scratch so the op stays encodable.
                        MReg::Phys(match class {
                            RegClass::Int => GPR_TMPS[0],
                            RegClass::Float => FPR_TMPS[0],
                            RegClass::Pred => 31,
                        })
                    }
                },
                phys => phys,
            });
            // Drop no-op copies produced by coalescable moves.
            let is_nop_copy = matches!(inst, MInst::Copy { dst, src, .. } if dst == src);
            if !is_nop_copy {
                out.push(inst);
            }
            if let Some((s, class, tmp)) = def_spill {
                emit_spill_store(&mut out, class, s * 4, tmp);
            }
        }
        block.insts = out;
    }

    if frame_size == 0 {
        return;
    }
    let sp = MReg::Phys(Gpr::SP.index());
    let at = MReg::Phys(ADDR_TMP);

    // Prologue at the entry block head: sp -= frame; save callee regs.
    let mut pro: Vec<MInst> = vec![
        MInst::LoadImm {
            high: false,
            imm: frame_size as i32,
            dst: at,
        },
        MInst::IntAlu {
            op: IntOpcode::Sub,
            dst: sp,
            a: sp,
            b: at,
        },
    ];
    for (i, &r) in saved_gprs.iter().enumerate() {
        let off = (spill_slots + i as u32) * 4;
        emit_slot_addr(&mut pro, off);
        pro.push(MInst::Store {
            width: MemWidth::Word,
            base: at,
            value: MReg::Phys(r),
        });
    }
    for (i, &r) in saved_fprs.iter().enumerate() {
        let off = (spill_slots + saved_gprs.len() as u32 + i as u32) * 4;
        emit_slot_addr(&mut pro, off);
        pro.push(MInst::FStore {
            base: at,
            value: MReg::Phys(r),
        });
    }
    let entry = &mut f.blocks[0].insts;
    pro.append(entry);
    *entry = pro;

    // Epilogue before every Ret.
    for block in &mut f.blocks {
        if let Some(MInst::Ret { addr }) = block.insts.last().cloned() {
            block.insts.pop();
            let mut epi: Vec<MInst> = Vec::new();
            // Preserve the return target across the restores.
            let link_tmp = MReg::Phys(GPR_TMPS[0]);
            if addr != link_tmp {
                epi.push(MInst::Copy {
                    class: RegClass::Int,
                    dst: link_tmp,
                    src: addr,
                });
            }
            for (i, &r) in saved_gprs.iter().enumerate() {
                let off = (spill_slots + i as u32) * 4;
                emit_slot_addr(&mut epi, off);
                epi.push(MInst::Load {
                    width: MemWidth::Word,
                    dst: MReg::Phys(r),
                    base: at,
                });
            }
            for (i, &r) in saved_fprs.iter().enumerate() {
                let off = (spill_slots + saved_gprs.len() as u32 + i as u32) * 4;
                emit_slot_addr(&mut epi, off);
                epi.push(MInst::FLoad {
                    dst: MReg::Phys(r),
                    base: at,
                });
            }
            epi.push(MInst::LoadImm {
                high: false,
                imm: frame_size as i32,
                dst: at,
            });
            epi.push(MInst::IntAlu {
                op: IntOpcode::Add,
                dst: sp,
                a: sp,
                b: at,
            });
            epi.push(MInst::Ret { addr: link_tmp });
            block.insts.append(&mut epi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{lower_program, parser::parse};
    use crate::machine::{layout_order, lower_function, ConstPool, DataLayout, DATA_BASE};

    fn alloc_fn(src: &str, name: &str) -> (MFunction, FrameInfo) {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        let (_, f) = m.func_by_name(name).unwrap();
        let layout = DataLayout::new(&m, DATA_BASE);
        let mut pool = ConstPool::default();
        let mut mf = lower_function(&m, f, &layout_order(f), &layout, &mut pool);
        let fi = allocate(&mut mf).unwrap();
        (mf, fi)
    }

    fn assert_fully_physical(f: &MFunction) {
        for b in &f.blocks {
            for i in &b.insts {
                for (_, r) in i.defs().into_iter().chain(i.uses()) {
                    assert!(matches!(r, MReg::Phys(_)), "unallocated operand in {i:?}");
                }
            }
        }
    }

    #[test]
    fn simple_function_allocates_without_frame() {
        let (f, fi) = alloc_fn("fn main() { var a = 1; var b = 2; print(a + b); }", "main");
        assert_fully_physical(&f);
        assert_eq!(fi.spill_slots, 0);
    }

    #[test]
    fn value_live_across_call_gets_callee_saved_or_spills() {
        let src = r#"
            fn main() { var x = 5; var y = f(1); print(x + y); }
            fn f(a) { return a + 1; }
        "#;
        let (f, fi) = alloc_fn(src, "main");
        assert_fully_physical(&f);
        // `x` crosses the call: either a callee-saved GPR was used (and
        // saved) or it spilled.
        assert!(!fi.saved_gprs.is_empty() || fi.spill_slots > 0);
        if fi.frame_size > 0 {
            // Prologue must open with the sp adjustment.
            assert!(matches!(f.blocks[0].insts[0], MInst::LoadImm { .. }));
            assert!(matches!(
                f.blocks[0].insts[1],
                MInst::IntAlu {
                    op: IntOpcode::Sub,
                    ..
                }
            ));
        }
    }

    #[test]
    fn high_pressure_forces_spills() {
        // 30 simultaneously-live integer locals exceed the 19 allocatable
        // GPRs.
        let mut body = String::new();
        for i in 0..30 {
            body.push_str(&format!("var x{i} = {i};\n"));
        }
        body.push_str("var s = 0;\n");
        for i in 0..30 {
            body.push_str(&format!("s = s + x{i};\n"));
        }
        // Keep them all live by summing in reverse too.
        for i in (0..30).rev() {
            body.push_str(&format!("s = s + x{i};\n"));
        }
        let src = format!("fn main() {{ {body} print(s); }}");
        let (f, fi) = alloc_fn(&src, "main");
        assert_fully_physical(&f);
        assert!(fi.spill_slots > 0, "expected spills under pressure");
        assert!(fi.frame_size >= fi.spill_slots * 4);
    }

    #[test]
    fn reserved_registers_never_allocated() {
        let mut body = String::new();
        for i in 0..24 {
            body.push_str(&format!("var x{i} = {i};\n"));
        }
        let mut sum = String::from("0");
        for i in 0..24 {
            sum = format!("{sum} + x{i}");
        }
        let src = format!("fn main() {{ {body} print({sum}); }}");
        let (f, _) = alloc_fn(&src, "main");
        for b in &f.blocks {
            for inst in &b.insts {
                // The frame adjustment legitimately writes sp; everything
                // else must not.
                let is_sp_adjust = matches!(
                    inst,
                    MInst::IntAlu {
                        op: IntOpcode::Sub | IntOpcode::Add,
                        dst: MReg::Phys(29),
                        a: MReg::Phys(29),
                        ..
                    }
                );
                if is_sp_adjust {
                    continue;
                }
                for (class, r) in inst.defs() {
                    if class == RegClass::Int {
                        if let MReg::Phys(p) = r {
                            assert_ne!(p, Gpr::SP.index(), "allocator wrote sp: {inst:?}");
                        }
                    }
                }
            }
        }
        assert_fully_physical(&f);
    }

    #[test]
    fn epilogue_restores_before_ret() {
        let src = r#"
            fn main() { print(g(3)); }
            fn g(n) { var keep = n * 2; var t = h(n); return keep + t; }
            fn h(n) { return n + 1; }
        "#;
        let (f, fi) = alloc_fn(src, "g");
        assert_fully_physical(&f);
        if fi.frame_size > 0 {
            // The block ending in Ret must adjust sp back just before.
            let ret_block = f
                .blocks
                .iter()
                .find(|b| matches!(b.insts.last(), Some(MInst::Ret { .. })))
                .expect("ret block");
            let n = ret_block.insts.len();
            assert!(matches!(
                ret_block.insts[n - 2],
                MInst::IntAlu {
                    op: IntOpcode::Add,
                    ..
                }
            ));
        }
    }

    #[test]
    fn recursion_allocates() {
        let src = r#"
            fn main() { print(fib(10)); }
            fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        "#;
        let (f, fi) = alloc_fn(src, "fib");
        assert_fully_physical(&f);
        // fib keeps n and fib(n-1) across calls.
        assert!(fi.frame_size > 0 || !fi.saved_gprs.is_empty());
    }
}
