//! Global liveness analysis over machine functions (virtual registers).
//!
//! Standard backward dataflow at block granularity, then per-instruction
//! refinement to build the live intervals the linear-scan allocator
//! consumes. Physical registers are excluded — by construction the ABI
//! registers are never allocatable and their uses are confined to
//! adjacent copy instructions (see [`crate::machine`]).

use crate::machine::{MFunction, MReg};
use std::collections::HashSet;

/// Live interval of a virtual register over the linearized instruction
/// index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Virtual register index.
    pub vreg: u32,
    /// First point (a def) covered.
    pub start: u32,
    /// Last point (a use or def) covered, inclusive.
    pub end: u32,
    /// Approximate spill weight (use count, loop-weighted upstream).
    pub weight: u32,
}

/// Liveness facts for one machine function.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_in[b]` — vregs live at entry of block `b`.
    pub live_in: Vec<HashSet<u32>>,
    /// `live_out[b]` — vregs live at exit of block `b`.
    pub live_out: Vec<HashSet<u32>>,
    /// Global linear index of the first instruction of each block.
    pub block_start: Vec<u32>,
    /// Total linearized instruction count.
    pub num_points: u32,
}

impl Liveness {
    /// Runs the dataflow analysis.
    pub fn compute(f: &MFunction) -> Liveness {
        let nb = f.blocks.len();
        let mut use_set: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        let mut def_set: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        for (bi, b) in f.blocks.iter().enumerate() {
            for inst in &b.insts {
                for (_, r) in inst.uses() {
                    if let MReg::Virt(v) = r {
                        if !def_set[bi].contains(&v) {
                            use_set[bi].insert(v);
                        }
                    }
                }
                for (_, r) in inst.defs() {
                    if let MReg::Virt(v) = r {
                        def_set[bi].insert(v);
                    }
                }
            }
        }
        let mut live_in: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        let mut live_out: Vec<HashSet<u32>> = vec![HashSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                let mut out = HashSet::new();
                for s in f.successors(bi) {
                    out.extend(live_in[s].iter().copied());
                }
                let mut inn: HashSet<u32> = use_set[bi].clone();
                for &v in &out {
                    if !def_set[bi].contains(&v) {
                        inn.insert(v);
                    }
                }
                if out != live_out[bi] || inn != live_in[bi] {
                    changed = true;
                    live_out[bi] = out;
                    live_in[bi] = inn;
                }
            }
        }
        let mut block_start = Vec::with_capacity(nb);
        let mut idx = 0u32;
        for b in &f.blocks {
            block_start.push(idx);
            idx += b.insts.len() as u32;
        }
        Liveness {
            live_in,
            live_out,
            block_start,
            num_points: idx,
        }
    }

    /// Builds coarse live intervals (min start, max end per vreg). A vreg
    /// live into or out of a block extends across that whole block, so
    /// holes are over-approximated away — the classic linear-scan trade.
    pub fn intervals(&self, f: &MFunction) -> Vec<Interval> {
        let nv = f.vclass.len();
        let mut start = vec![u32::MAX; nv];
        let mut end = vec![0u32; nv];
        let mut weight = vec![0u32; nv];
        let mut touch = |v: u32, point: u32| {
            let vi = v as usize;
            if start[vi] == u32::MAX || point < start[vi] {
                start[vi] = point;
            }
            if point > end[vi] {
                end[vi] = point;
            }
        };
        for (bi, b) in f.blocks.iter().enumerate() {
            let bstart = self.block_start[bi];
            let bend = bstart + b.insts.len() as u32;
            for &v in &self.live_in[bi] {
                touch(v, bstart);
            }
            for &v in &self.live_out[bi] {
                // Live-out extends to the block's end point.
                touch(v, bend.saturating_sub(1).max(bstart));
                touch(v, bstart);
            }
            for (ii, inst) in b.insts.iter().enumerate() {
                let p = bstart + ii as u32;
                for (_, r) in inst.defs() {
                    if let MReg::Virt(v) = r {
                        touch(v, p);
                        weight[v as usize] += 1;
                    }
                }
                for (_, r) in inst.uses() {
                    if let MReg::Virt(v) = r {
                        touch(v, p);
                        weight[v as usize] += 1;
                    }
                }
            }
        }
        (0..nv as u32)
            .filter(|&v| start[v as usize] != u32::MAX)
            .map(|v| Interval {
                vreg: v,
                start: start[v as usize],
                end: end[v as usize],
                weight: weight[v as usize],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{lower_program, parser::parse};
    use crate::machine::{layout_order, lower_function, ConstPool, DataLayout, DATA_BASE};

    fn machine_of(src: &str, name: &str) -> MFunction {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        let (_, f) = m.func_by_name(name).unwrap();
        let layout = DataLayout::new(&m, DATA_BASE);
        let mut pool = ConstPool::default();
        lower_function(&m, f, &layout_order(f), &layout, &mut pool)
    }

    #[test]
    fn loop_variable_live_across_backedge() {
        let f = machine_of(
            "fn main() { var i = 0; while (i < 10) { i = i + 1; } print(i); }",
            "main",
        );
        let lv = Liveness::compute(&f);
        // Some block must have a nonempty live-in (the loop-carried `i`).
        assert!(lv.live_in.iter().any(|s| !s.is_empty()));
        let ivs = lv.intervals(&f);
        assert!(!ivs.is_empty());
        for iv in &ivs {
            assert!(iv.start <= iv.end);
            assert!(iv.end < lv.num_points);
        }
    }

    #[test]
    fn straight_line_intervals_are_local() {
        let f = machine_of("fn main() { var a = 1; var b = 2; print(a + b); }", "main");
        let lv = Liveness::compute(&f);
        let ivs = lv.intervals(&f);
        // All intervals fit within the program.
        for iv in &ivs {
            assert!(iv.weight >= 1);
        }
    }

    #[test]
    fn dead_def_gets_point_interval() {
        let f = machine_of("fn main() { var a = 5; print(1); }", "main");
        let lv = Liveness::compute(&f);
        let ivs = lv.intervals(&f);
        // `a`'s value vreg is defined but never used (print(1) ignores it);
        // its interval is still well-formed.
        assert!(ivs.iter().all(|iv| iv.start <= iv.end));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::lang::{lower_program, parser::parse};
    use crate::machine::{layout_order, lower_function, ConstPool, DataLayout, DATA_BASE};

    fn machine(src: &str, name: &str) -> MFunction {
        let m = lower_program(&parse(src).unwrap()).unwrap();
        let (_, f) = m.func_by_name(name).unwrap();
        let layout = DataLayout::new(&m, DATA_BASE);
        let mut pool = ConstPool::default();
        lower_function(&m, f, &layout_order(f), &layout, &mut pool)
    }

    #[test]
    fn value_live_across_call_has_interval_spanning_the_call() {
        let src = r#"
            fn main() { var keep = 11; var t = f(2); print(keep + t); }
            fn f(x) { return x; }
        "#;
        let f = machine(src, "main");
        let lv = Liveness::compute(&f);
        let ivs = lv.intervals(&f);
        // Find the call's linear index.
        let mut idx = 0u32;
        let mut call_at = None;
        for b in &f.blocks {
            for inst in &b.insts {
                if matches!(inst, crate::machine::MInst::Call { .. }) {
                    call_at = Some(idx);
                }
                idx += 1;
            }
        }
        let call_at = call_at.expect("has a call");
        assert!(
            ivs.iter().any(|iv| iv.start < call_at && iv.end > call_at),
            "some interval must span the call (the kept variable)"
        );
    }

    #[test]
    fn block_start_indices_are_cumulative() {
        let f = machine(
            "fn main() { var x = 1; if (x > 0) { print(1); } print(2); }",
            "main",
        );
        let lv = Liveness::compute(&f);
        let mut expect = 0u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            assert_eq!(lv.block_start[bi], expect);
            expect += b.insts.len() as u32;
        }
        assert_eq!(lv.num_points, expect);
    }
}
