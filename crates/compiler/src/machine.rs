//! Machine-level representation: TEPIC operations over virtual (or
//! physical) registers, organized into machine blocks with explicit
//! fallthrough.
//!
//! Machine lowering fixes the TEPIC calling convention:
//!
//! * arguments in `r2..=r7`, return value in `r1`, link in `r31`;
//! * `r0` is zero, `r29` the stack pointer, `r30` the address scratch
//!   used by spill code, `r26`/`r27` (and `f30`/`f31`) the spill-value
//!   temporaries — none of these are allocatable;
//! * calls clobber every caller-saved register (`r1..r15`, `f0..f15`,
//!   every predicate); values live across a call must land in the
//!   callee-saved pools (`r16..r28`, `f16..f29`) or spill.
//!
//! A call ends its machine block (calls are branches in the atomic-block
//! fetch discipline, paper §3.1), so IR blocks containing calls split into
//! several machine blocks here.

use std::collections::HashMap;
use tepic_isa::op::{Cond as ICond, FloatOpcode, IntOpcode, MemWidth, SysCode as ISysCode};
use tepic_isa::regs::Gpr;
use tinker_ir::{self as ir, CfgInfo, Inst, RegClass, Terminator};

/// A machine register operand: virtual until allocation, physical after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MReg {
    /// Virtual register (index into [`MFunction::vclass`]).
    Virt(u32),
    /// Physical register index within its file.
    Phys(u8),
}

impl MReg {
    /// The physical index, when allocated.
    ///
    /// # Panics
    ///
    /// Panics when still virtual.
    pub fn phys(self) -> u8 {
        match self {
            MReg::Phys(p) => p,
            MReg::Virt(v) => panic!("unallocated virtual register v{v}"),
        }
    }
}

/// A machine instruction. Register operands carry an implicit class from
/// their position (documented per variant).
#[derive(Debug, Clone, PartialEq)]
pub enum MInst {
    /// `dst ← a <op> b` (all GPR).
    IntAlu {
        op: IntOpcode,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// `dst(pred) ← a <cond> b` (GPR sources).
    IntCmp {
        cond: ICond,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// `dst(pred) ← a <cond> b` (FPR sources).
    FloatCmp {
        cond: ICond,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// `dst ← imm` (GPR); `high` selects `ldih`.
    LoadImm { high: bool, imm: i32, dst: MReg },
    /// `dst ← a <op> b` (all FPR).
    Float {
        op: FloatOpcode,
        dst: MReg,
        a: MReg,
        b: MReg,
    },
    /// `dst(FPR) ← (f32) a(GPR)`.
    CvtIf { dst: MReg, a: MReg },
    /// `dst(GPR) ← (i32) a(FPR)`.
    CvtFi { dst: MReg, a: MReg },
    /// `dst(GPR) ← mem[base]`.
    Load {
        width: MemWidth,
        dst: MReg,
        base: MReg,
    },
    /// `mem[base] ← value` (GPR).
    Store {
        width: MemWidth,
        base: MReg,
        value: MReg,
    },
    /// `dst(FPR) ← mem[base]`.
    FLoad { dst: MReg, base: MReg },
    /// `mem[base] ← value(FPR)`.
    FStore { base: MReg, value: MReg },
    /// Register copy within one class.
    Copy {
        class: RegClass,
        dst: MReg,
        src: MReg,
    },
    /// Branch to a machine block of this function; `pred` = conditional.
    Branch { pred: Option<MReg>, target: u32 },
    /// Call; ends the block; falls through on return. `nargs` tells the
    /// scheduler/allocator which argument registers the call reads.
    Call { callee: ir::FuncId, nargs: u8 },
    /// Return through the link value in `addr` (GPR).
    Ret { addr: MReg },
    /// Stop.
    Halt,
    /// Environment call (GPR argument).
    Sys { code: ISysCode, arg: MReg },
}

impl MInst {
    /// True when this instruction must terminate its machine block.
    pub fn is_block_end(&self) -> bool {
        matches!(
            self,
            MInst::Branch { .. } | MInst::Call { .. } | MInst::Ret { .. } | MInst::Halt
        )
    }

    /// True for memory operations (issue-slot constraint).
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            MInst::Load { .. } | MInst::Store { .. } | MInst::FLoad { .. } | MInst::FStore { .. }
        )
    }

    /// Defined registers as `(class, reg)` pairs.
    pub fn defs(&self) -> Vec<(RegClass, MReg)> {
        use RegClass::*;
        match self {
            MInst::IntAlu { dst, .. }
            | MInst::LoadImm { dst, .. }
            | MInst::Load { dst, .. }
            | MInst::CvtFi { dst, .. } => vec![(Int, *dst)],
            MInst::IntCmp { dst, .. } | MInst::FloatCmp { dst, .. } => vec![(Pred, *dst)],
            MInst::Float { dst, .. } | MInst::CvtIf { dst, .. } | MInst::FLoad { dst, .. } => {
                vec![(Float, *dst)]
            }
            MInst::Copy { class, dst, .. } => vec![(*class, *dst)],
            MInst::Store { .. }
            | MInst::FStore { .. }
            | MInst::Branch { .. }
            | MInst::Ret { .. }
            | MInst::Halt
            | MInst::Sys { .. } => vec![],
            // Calls define the return-value and link registers; full
            // caller-saved clobbering is handled by the allocator.
            MInst::Call { .. } => vec![
                (Int, MReg::Phys(Gpr::RV.index())),
                (Int, MReg::Phys(Gpr::LR.index())),
            ],
        }
    }

    /// Used registers as `(class, reg)` pairs.
    pub fn uses(&self) -> Vec<(RegClass, MReg)> {
        use RegClass::*;
        match self {
            MInst::IntAlu { a, b, .. } => vec![(Int, *a), (Int, *b)],
            MInst::IntCmp { a, b, .. } => vec![(Int, *a), (Int, *b)],
            MInst::FloatCmp { a, b, .. } => vec![(Float, *a), (Float, *b)],
            MInst::LoadImm { .. } => vec![],
            MInst::Float { a, b, .. } => vec![(Float, *a), (Float, *b)],
            MInst::CvtIf { a, .. } => vec![(Int, *a)],
            MInst::CvtFi { a, .. } => vec![(Float, *a)],
            MInst::Load { base, .. } => vec![(Int, *base)],
            MInst::Store { base, value, .. } => vec![(Int, *base), (Int, *value)],
            MInst::FLoad { base, .. } => vec![(Int, *base)],
            MInst::FStore { base, value } => vec![(Int, *base), (Float, *value)],
            MInst::Copy { class, src, .. } => vec![(*class, *src)],
            MInst::Branch { pred: Some(p), .. } => vec![(Pred, *p)],
            MInst::Branch { pred: None, .. } | MInst::Halt => vec![],
            MInst::Call { nargs, .. } => (0..*nargs)
                .map(|i| (Int, MReg::Phys(Gpr::arg(i).index())))
                .collect(),
            MInst::Ret { addr } => vec![(Int, *addr)],
            MInst::Sys { arg, .. } => vec![(Int, *arg)],
        }
    }

    /// Rewrites every register operand through `f` (class, is_def, reg).
    pub fn map_regs(&mut self, mut f: impl FnMut(RegClass, bool, MReg) -> MReg) {
        use RegClass::*;
        match self {
            MInst::IntAlu { dst, a, b, .. } => {
                *a = f(Int, false, *a);
                *b = f(Int, false, *b);
                *dst = f(Int, true, *dst);
            }
            MInst::IntCmp { dst, a, b, .. } => {
                *a = f(Int, false, *a);
                *b = f(Int, false, *b);
                *dst = f(Pred, true, *dst);
            }
            MInst::FloatCmp { dst, a, b, .. } => {
                *a = f(Float, false, *a);
                *b = f(Float, false, *b);
                *dst = f(Pred, true, *dst);
            }
            MInst::LoadImm { dst, .. } => *dst = f(Int, true, *dst),
            MInst::Float { dst, a, b, .. } => {
                *a = f(Float, false, *a);
                *b = f(Float, false, *b);
                *dst = f(Float, true, *dst);
            }
            MInst::CvtIf { dst, a } => {
                *a = f(Int, false, *a);
                *dst = f(Float, true, *dst);
            }
            MInst::CvtFi { dst, a } => {
                *a = f(Float, false, *a);
                *dst = f(Int, true, *dst);
            }
            MInst::Load { dst, base, .. } => {
                *base = f(Int, false, *base);
                *dst = f(Int, true, *dst);
            }
            MInst::Store { base, value, .. } => {
                *base = f(Int, false, *base);
                *value = f(Int, false, *value);
            }
            MInst::FLoad { dst, base } => {
                *base = f(Int, false, *base);
                *dst = f(Float, true, *dst);
            }
            MInst::FStore { base, value } => {
                *base = f(Int, false, *base);
                *value = f(Float, false, *value);
            }
            MInst::Copy { class, dst, src } => {
                *src = f(*class, false, *src);
                *dst = f(*class, true, *dst);
            }
            MInst::Branch { pred: Some(p), .. } => *p = f(Pred, false, *p),
            MInst::Ret { addr } => *addr = f(Int, false, *addr),
            MInst::Sys { arg, .. } => *arg = f(Int, false, *arg),
            MInst::Branch { pred: None, .. } | MInst::Call { .. } | MInst::Halt => {}
        }
    }
}

/// A machine basic block. Only the last instruction may be a block ender;
/// when it is a conditional branch or a call (or absent), control falls
/// through to the next block in layout order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MBlock {
    /// Instruction sequence.
    pub insts: Vec<MInst>,
}

impl MBlock {
    /// True when control can fall through past this block.
    pub fn falls_through(&self) -> bool {
        match self.insts.last() {
            Some(MInst::Branch { pred: Some(_), .. }) | Some(MInst::Call { .. }) | None => true,
            Some(MInst::Branch { pred: None, .. })
            | Some(MInst::Ret { .. })
            | Some(MInst::Halt) => false,
            Some(_) => true,
        }
    }
}

/// A machine function.
#[derive(Debug, Clone, PartialEq)]
pub struct MFunction {
    /// Name, copied from the IR.
    pub name: String,
    /// Blocks in layout order; block 0 is the entry.
    pub blocks: Vec<MBlock>,
    /// Class of each virtual register.
    pub vclass: Vec<RegClass>,
    /// Parameter count.
    pub nargs: u32,
}

impl MFunction {
    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self, class: RegClass) -> MReg {
        let v = self.vclass.len() as u32;
        self.vclass.push(class);
        MReg::Virt(v)
    }

    /// Successor machine-block ids of block `b` (fallthrough last).
    pub fn successors(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let blk = &self.blocks[b];
        if let Some(MInst::Branch { target, .. }) = blk.insts.last() {
            out.push(*target as usize);
        }
        if blk.falls_through() && b + 1 < self.blocks.len() {
            out.push(b + 1);
        }
        out
    }
}

/// Float-constant pool collected during machine lowering: distinct `f32`
/// bit patterns that must be materialized from data memory.
#[derive(Debug, Clone, Default)]
pub struct ConstPool {
    entries: Vec<u32>,
    index: HashMap<u32, u32>,
}

impl ConstPool {
    /// Interns a float constant, returning its pool slot.
    pub fn intern(&mut self, v: f32) -> u32 {
        let bits = v.to_bits();
        if let Some(&i) = self.index.get(&bits) {
            return i;
        }
        let i = self.entries.len() as u32;
        self.entries.push(bits);
        self.index.insert(bits, i);
        i
    }

    /// Pool contents as bytes (little-endian f32 bit patterns).
    pub fn bytes(&self) -> Vec<u8> {
        self.entries.iter().flat_map(|b| b.to_le_bytes()).collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no float constants were needed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Data-segment layout: address of each IR global plus the float pool.
#[derive(Debug, Clone)]
pub struct DataLayout {
    /// Base address of the data segment.
    pub base: u32,
    /// Address of each global, by [`ir::GlobalId`] index.
    pub global_addr: Vec<u32>,
    /// Address of the float constant pool.
    pub pool_addr: u32,
    /// Total segment size in bytes (pool excluded until sealed).
    pub size: u32,
}

/// Default data-segment base address in the emulated address space.
pub const DATA_BASE: u32 = 0x1_0000;

impl DataLayout {
    /// Lays out all module globals word-aligned from `base`.
    pub fn new(module: &ir::Module, base: u32) -> DataLayout {
        let mut addr = base;
        let mut global_addr = Vec::with_capacity(module.globals().len());
        for g in module.globals() {
            global_addr.push(addr);
            addr += (g.size + 3) & !3;
        }
        DataLayout {
            base,
            global_addr,
            pool_addr: addr,
            size: addr - base,
        }
    }

    /// Reserves `pool_len` float-pool entries after the globals and
    /// returns the final segment size.
    pub fn seal_pool(&mut self, pool_len: usize) -> u32 {
        self.size = self.pool_addr - self.base + (pool_len as u32) * 4;
        self.size
    }

    /// Builds the initial data-segment bytes (globals + pool).
    pub fn initial_bytes(&self, module: &ir::Module, pool: &ConstPool) -> Vec<u8> {
        let mut data = vec![0u8; self.size as usize];
        for (g, &addr) in module.globals().iter().zip(&self.global_addr) {
            let off = (addr - self.base) as usize;
            data[off..off + g.init.len()].copy_from_slice(&g.init);
        }
        let pool_off = (self.pool_addr - self.base) as usize;
        let pb = pool.bytes();
        data[pool_off..pool_off + pb.len()].copy_from_slice(&pb);
        data
    }
}

/// Lowers one IR function to machine code.
///
/// `order` gives the desired block layout (from treegion formation); it
/// must start with the IR entry block and include every reachable block.
/// Returns the machine function; float constants are interned into `pool`.
pub fn lower_function(
    module: &ir::Module,
    func: &ir::Function,
    order: &[ir::BlockRef],
    layout: &DataLayout,
    pool: &mut ConstPool,
) -> MFunction {
    Lowerer::run(module, func, order, layout, pool)
}

struct Lowerer<'a> {
    f: MFunction,
    module: &'a ir::Module,
    layout: &'a DataLayout,
    pool: &'a mut ConstPool,
    /// IR block → machine head-block index.
    head: HashMap<u32, u32>,
    /// Branch fixups: (machine block, inst index) whose `target` is still
    /// an IR block id.
    fixups: Vec<(usize, usize)>,
}

impl<'a> Lowerer<'a> {
    fn run(
        module: &'a ir::Module,
        func: &'a ir::Function,
        order: &[ir::BlockRef],
        layout: &'a DataLayout,
        pool: &'a mut ConstPool,
    ) -> MFunction {
        assert_eq!(
            order.first(),
            Some(&func.entry()),
            "layout must start at entry"
        );
        let mut lo = Lowerer {
            f: MFunction {
                name: func.name.clone(),
                blocks: vec![],
                vclass: func.vreg_classes.clone(),
                nargs: func.num_params,
            },
            module,
            layout,
            pool,
            head: HashMap::new(),
            fixups: vec![],
        };

        // vlink holds the incoming return address for the whole function.
        let vlink = lo.f.new_vreg(RegClass::Int);

        for (pos, &bref) in order.iter().enumerate() {
            let head_idx = lo.f.blocks.len() as u32;
            lo.head.insert(bref.0, head_idx);
            lo.f.blocks.push(MBlock::default());
            if pos == 0 {
                // Entry: capture params and link register.
                for i in 0..func.num_params {
                    lo.emit(MInst::Copy {
                        class: func.vreg_classes[i as usize],
                        dst: MReg::Virt(i),
                        src: MReg::Phys(Gpr::arg(i as u8).index()),
                    });
                }
                lo.emit(MInst::Copy {
                    class: RegClass::Int,
                    dst: vlink,
                    src: MReg::Phys(Gpr::LR.index()),
                });
            }
            let block = func.block(bref);
            for inst in &block.insts {
                lo.inst(inst);
            }
            let next_ir = order.get(pos + 1).copied();
            lo.terminator(&block.term, next_ir, vlink);
        }

        // Patch branch targets from IR ids to machine head indices.
        for (b, i) in std::mem::take(&mut lo.fixups) {
            if let MInst::Branch { target, .. } = &mut lo.f.blocks[b].insts[i] {
                *target = lo.head[target];
            }
        }
        lo.f
    }

    fn cur(&mut self) -> &mut MBlock {
        self.f.blocks.last_mut().expect("at least one block")
    }

    fn emit(&mut self, inst: MInst) {
        self.cur().insts.push(inst);
    }

    /// Emits a branch whose target is still an IR block id, recording a
    /// fixup.
    fn emit_branch(&mut self, pred: Option<MReg>, ir_target: ir::BlockRef) {
        let b = self.f.blocks.len() - 1;
        let i = self.f.blocks[b].insts.len();
        self.f.blocks[b].insts.push(MInst::Branch {
            pred,
            target: ir_target.0,
        });
        self.fixups.push((b, i));
    }

    fn start_new_block(&mut self) {
        self.f.blocks.push(MBlock::default());
    }

    /// Materializes a 32-bit constant into a fresh GPR vreg.
    fn imm32(&mut self, value: i32) -> MReg {
        let dst = self.f.new_vreg(RegClass::Int);
        if (tepic_isa::op::IMM_MIN..=tepic_isa::op::IMM_MAX).contains(&value) {
            self.emit(MInst::LoadImm {
                high: false,
                imm: value,
                dst,
            });
        } else {
            // ldih dst, hi20 ; ldi t, lo12 ; or dst, dst, t
            let hi = value >> 12;
            let lo = value & 0xFFF;
            self.emit(MInst::LoadImm {
                high: true,
                imm: hi,
                dst,
            });
            let t = self.f.new_vreg(RegClass::Int);
            self.emit(MInst::LoadImm {
                high: false,
                imm: lo,
                dst: t,
            });
            self.emit(MInst::IntAlu {
                op: IntOpcode::Or,
                dst,
                a: dst,
                b: t,
            });
        }
        dst
    }

    /// Computes `base + offset` into a register (reusing `base` when the
    /// offset is zero).
    fn addr(&mut self, base: MReg, offset: i32) -> MReg {
        if offset == 0 {
            return base;
        }
        let off = self.imm32(offset);
        let dst = self.f.new_vreg(RegClass::Int);
        self.emit(MInst::IntAlu {
            op: IntOpcode::Add,
            dst,
            a: base,
            b: off,
        });
        dst
    }

    fn inst(&mut self, inst: &Inst) {
        use tinker_ir::IBinOp;
        let v = |r: ir::VReg| MReg::Virt(r.0);
        match inst {
            Inst::IConst { dst, value } => {
                let r = self.imm32(*value as i32);
                self.emit(MInst::Copy {
                    class: RegClass::Int,
                    dst: v(*dst),
                    src: r,
                });
            }
            Inst::FConst { dst, value } => {
                let slot = self.pool.intern(*value);
                let addr = self.layout.pool_addr + slot * 4;
                let a = self.imm32(addr as i32);
                self.emit(MInst::FLoad {
                    dst: v(*dst),
                    base: a,
                });
            }
            Inst::GlobalAddr { dst, global } => {
                let addr = self.layout.global_addr[global.0 as usize];
                let r = self.imm32(addr as i32);
                self.emit(MInst::Copy {
                    class: RegClass::Int,
                    dst: v(*dst),
                    src: r,
                });
            }
            Inst::IBin { op, dst, a, b } => {
                let mop = match op {
                    IBinOp::Add => IntOpcode::Add,
                    IBinOp::Sub => IntOpcode::Sub,
                    IBinOp::Mul => IntOpcode::Mul,
                    IBinOp::Div => IntOpcode::Div,
                    IBinOp::Rem => IntOpcode::Rem,
                    IBinOp::And => IntOpcode::And,
                    IBinOp::Or => IntOpcode::Or,
                    IBinOp::Xor => IntOpcode::Xor,
                    IBinOp::Shl => IntOpcode::Shl,
                    IBinOp::Shr => IntOpcode::Shr,
                    IBinOp::Sra => IntOpcode::Sra,
                    IBinOp::Min => IntOpcode::Min,
                    IBinOp::Max => IntOpcode::Max,
                };
                self.emit(MInst::IntAlu {
                    op: mop,
                    dst: v(*dst),
                    a: v(*a),
                    b: v(*b),
                });
            }
            Inst::IUn { op, dst, a } => match op {
                ir::IUnOp::Mov => self.emit(MInst::Copy {
                    class: RegClass::Int,
                    dst: v(*dst),
                    src: v(*a),
                }),
                ir::IUnOp::Not => self.emit(MInst::IntAlu {
                    op: IntOpcode::Not,
                    dst: v(*dst),
                    a: v(*a),
                    b: MReg::Phys(0),
                }),
                ir::IUnOp::Neg => self.emit(MInst::IntAlu {
                    op: IntOpcode::Sub,
                    dst: v(*dst),
                    a: MReg::Phys(0), // r0 = 0
                    b: v(*a),
                }),
            },
            Inst::FBin { op, dst, a, b } => {
                let fop = match op {
                    ir::FBinOp::Add => FloatOpcode::Fadd,
                    ir::FBinOp::Sub => FloatOpcode::Fsub,
                    ir::FBinOp::Mul => FloatOpcode::Fmul,
                    ir::FBinOp::Div => FloatOpcode::Fdiv,
                    ir::FBinOp::Min => FloatOpcode::Fmin,
                    ir::FBinOp::Max => FloatOpcode::Fmax,
                };
                self.emit(MInst::Float {
                    op: fop,
                    dst: v(*dst),
                    a: v(*a),
                    b: v(*b),
                });
            }
            Inst::FNeg { dst, a } => self.emit(MInst::Float {
                op: FloatOpcode::Fneg,
                dst: v(*dst),
                a: v(*a),
                b: v(*a),
            }),
            Inst::FAbs { dst, a } => self.emit(MInst::Float {
                op: FloatOpcode::Fabs,
                dst: v(*dst),
                a: v(*a),
                b: v(*a),
            }),
            Inst::FMov { dst, a } => self.emit(MInst::Copy {
                class: RegClass::Float,
                dst: v(*dst),
                src: v(*a),
            }),
            Inst::ICmp { cond, dst, a, b } => self.emit(MInst::IntCmp {
                cond: lower_cond(*cond),
                dst: v(*dst),
                a: v(*a),
                b: v(*b),
            }),
            Inst::FCmp { cond, dst, a, b } => self.emit(MInst::FloatCmp {
                cond: lower_cond(*cond),
                dst: v(*dst),
                a: v(*a),
                b: v(*b),
            }),
            Inst::CvtIF { dst, a } => self.emit(MInst::CvtIf {
                dst: v(*dst),
                a: v(*a),
            }),
            Inst::CvtFI { dst, a } => self.emit(MInst::CvtFi {
                dst: v(*dst),
                a: v(*a),
            }),
            Inst::Load {
                width,
                dst,
                base,
                offset,
            } => {
                let a = self.addr(v(*base), *offset);
                self.emit(MInst::Load {
                    width: lower_width(*width),
                    dst: v(*dst),
                    base: a,
                });
            }
            Inst::Store {
                width,
                base,
                offset,
                value,
            } => {
                let a = self.addr(v(*base), *offset);
                self.emit(MInst::Store {
                    width: lower_width(*width),
                    base: a,
                    value: v(*value),
                });
            }
            Inst::FLoad { dst, base, offset } => {
                let a = self.addr(v(*base), *offset);
                self.emit(MInst::FLoad {
                    dst: v(*dst),
                    base: a,
                });
            }
            Inst::FStore {
                base,
                offset,
                value,
            } => {
                let a = self.addr(v(*base), *offset);
                self.emit(MInst::FStore {
                    base: a,
                    value: v(*value),
                });
            }
            Inst::Call { func, args, ret } => {
                for (i, a) in args.iter().enumerate() {
                    let class = self.module.func(*func).vreg_classes[i];
                    self.emit(MInst::Copy {
                        class,
                        dst: MReg::Phys(Gpr::arg(i as u8).index()),
                        src: v(*a),
                    });
                }
                self.emit(MInst::Call {
                    callee: *func,
                    nargs: args.len() as u8,
                });
                self.start_new_block();
                if let Some(r) = ret {
                    self.emit(MInst::Copy {
                        class: RegClass::Int,
                        dst: v(*r),
                        src: MReg::Phys(Gpr::RV.index()),
                    });
                }
            }
            Inst::Sys { code, arg } => {
                let c = match code {
                    ir::SysCode::PrintInt => ISysCode::PrintInt,
                    ir::SysCode::PrintChar => ISysCode::PrintChar,
                };
                self.emit(MInst::Sys {
                    code: c,
                    arg: v(*arg),
                });
            }
        }
    }

    fn terminator(&mut self, term: &Terminator, next_ir: Option<ir::BlockRef>, vlink: MReg) {
        let v = |r: ir::VReg| MReg::Virt(r.0);
        match term {
            Terminator::Jump(t) => {
                if Some(*t) != next_ir {
                    self.emit_branch(None, *t);
                }
            }
            Terminator::CondBr {
                pred,
                then_bb,
                else_bb,
            } => {
                self.emit_branch(Some(v(*pred)), *then_bb);
                if Some(*else_bb) != next_ir {
                    self.start_new_block();
                    self.emit_branch(None, *else_bb);
                }
            }
            Terminator::Ret(val) => {
                if let Some(r) = val {
                    self.emit(MInst::Copy {
                        class: RegClass::Int,
                        dst: MReg::Phys(Gpr::RV.index()),
                        src: v(*r),
                    });
                }
                self.emit(MInst::Ret { addr: vlink });
            }
            Terminator::Halt => self.emit(MInst::Halt),
        }
    }
}

fn lower_cond(c: ir::Cond) -> ICond {
    match c {
        ir::Cond::Eq => ICond::Eq,
        ir::Cond::Ne => ICond::Ne,
        ir::Cond::Lt => ICond::Lt,
        ir::Cond::Le => ICond::Le,
        ir::Cond::Gt => ICond::Gt,
        ir::Cond::Ge => ICond::Ge,
        ir::Cond::LtU => ICond::Ltu,
        ir::Cond::GeU => ICond::Geu,
    }
}

fn lower_width(w: ir::Width) -> MemWidth {
    match w {
        ir::Width::Byte => MemWidth::Byte,
        ir::Width::Half => MemWidth::Half,
        ir::Width::Word => MemWidth::Word,
    }
}

/// Computes a block layout for `func`: treegion-guided depth-first order
/// (see [`crate::treegion`]) falling back to RPO.
pub fn layout_order(func: &ir::Function) -> Vec<ir::BlockRef> {
    let cfg = CfgInfo::compute(func);
    crate::treegion::layout_order(func, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{lower_program, parser::parse};

    fn machine_of(src: &str, fname: &str) -> (MFunction, ConstPool) {
        let module = lower_program(&parse(src).unwrap()).unwrap();
        module.verify().unwrap();
        let (_, f) = module.func_by_name(fname).unwrap();
        let layout = DataLayout::new(&module, DATA_BASE);
        let mut pool = ConstPool::default();
        let order = layout_order(f);
        let mf = lower_function(&module, f, &order, &layout, &mut pool);
        (mf, pool)
    }

    #[test]
    fn entry_captures_params_and_link() {
        let (mf, _) = machine_of(
            "fn main() { print(f(1, 2)); } fn f(a, b) { return a + b; }",
            "f",
        );
        let first = &mf.blocks[0].insts;
        assert!(matches!(
            first[0],
            MInst::Copy {
                dst: MReg::Virt(0),
                src: MReg::Phys(2),
                ..
            }
        ));
        assert!(matches!(
            first[1],
            MInst::Copy {
                dst: MReg::Virt(1),
                src: MReg::Phys(3),
                ..
            }
        ));
        assert!(matches!(
            first[2],
            MInst::Copy {
                src: MReg::Phys(31),
                ..
            }
        ));
    }

    #[test]
    fn call_splits_block_and_copies_ret() {
        let (mf, _) = machine_of(
            "fn main() { var x = f(7); print(x); } fn f(a) { return a; }",
            "main",
        );
        // Find a block ending in Call; next block must start with copy from r1.
        let mut found = false;
        for (i, b) in mf.blocks.iter().enumerate() {
            if let Some(MInst::Call { nargs, .. }) = b.insts.last() {
                assert_eq!(*nargs, 1);
                // Argument copy targets r2 just before the call.
                assert!(b.insts.iter().any(|inst| matches!(
                    inst,
                    MInst::Copy {
                        dst: MReg::Phys(2),
                        ..
                    }
                )));
                let next = &mf.blocks[i + 1].insts[0];
                assert!(matches!(
                    next,
                    MInst::Copy {
                        src: MReg::Phys(1),
                        ..
                    }
                ));
                found = true;
            }
        }
        assert!(found, "no call block found");
    }

    #[test]
    fn ret_copies_to_rv_and_uses_link() {
        let (mf, _) = machine_of("fn main() { } ", "main");
        // main ends with Ret via the captured link vreg (vlink).
        let last_block = mf
            .blocks
            .iter()
            .rev()
            .find(|b| !b.insts.is_empty())
            .unwrap();
        match last_block.insts.last() {
            Some(MInst::Ret {
                addr: MReg::Virt(_),
            }) => {}
            other => panic!("expected Ret, found {other:?}"),
        }
    }

    #[test]
    fn float_constants_interned_in_pool() {
        let (_, pool) = machine_of(
            "fn main() { fvar x = 2.5; fvar y = 2.5; fvar z = 1.0; print(int(x+y+z)); }",
            "main",
        );
        assert_eq!(pool.len(), 2, "2.5 and 1.0, deduplicated");
    }

    #[test]
    fn big_immediates_use_ldih_sequence() {
        let (mf, _) = machine_of("fn main() { var x = 0x7ABCDE; print(x); }", "main");
        let all: Vec<&MInst> = mf.blocks.iter().flat_map(|b| &b.insts).collect();
        assert!(all
            .iter()
            .any(|i| matches!(i, MInst::LoadImm { high: true, .. })));
        assert!(all.iter().any(|i| matches!(
            i,
            MInst::IntAlu {
                op: IntOpcode::Or,
                ..
            }
        )));
    }

    #[test]
    fn cond_branch_then_fallthrough() {
        let (mf, _) = machine_of(
            "fn main() { var x = 1; if (x > 0) { print(1); } else { print(2); } }",
            "main",
        );
        let has_cond = mf
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, MInst::Branch { pred: Some(_), .. }));
        assert!(has_cond);
        // All branch targets resolve to real machine blocks.
        for b in &mf.blocks {
            for i in &b.insts {
                if let MInst::Branch { target, .. } = i {
                    assert!((*target as usize) < mf.blocks.len());
                }
            }
        }
    }

    #[test]
    fn data_layout_is_word_aligned_and_pool_follows() {
        let module = lower_program(
            &parse("bglobal s[5] = \"ab\"; global w[2]; fn main() { print(w[0] + s[0]); }")
                .unwrap(),
        )
        .unwrap();
        let mut layout = DataLayout::new(&module, DATA_BASE);
        assert_eq!(layout.global_addr[0], DATA_BASE);
        assert_eq!(layout.global_addr[1], DATA_BASE + 8, "5 bytes rounds to 8");
        assert_eq!(layout.pool_addr, DATA_BASE + 16);
        let size = layout.seal_pool(2);
        assert_eq!(size, 24);
    }

    #[test]
    fn successors_follow_branches_and_fallthrough() {
        let (mf, _) = machine_of(
            "fn main() { var i = 0; while (i < 3) { i = i + 1; } print(i); }",
            "main",
        );
        for b in 0..mf.blocks.len() {
            for s in mf.successors(b) {
                assert!(s < mf.blocks.len());
            }
        }
    }
}
