//! # lego — the LEGO optimizing compiler for TEPIC
//!
//! A complete, self-contained compilation pipeline reproducing the role of
//! the LEGO compiler in Larin & Conte (MICRO-32, 1999):
//!
//! 1. **Frontend** ([`lang`]): the *Tink* language — a small C-like systems
//!    language (integers, floats, global arrays, functions, recursion) —
//!    lexed, parsed and lowered to the `tinker-ir` representation.
//! 2. **Optimizer** ([`opt`]): constant folding, copy propagation,
//!    dead-code elimination and CFG simplification, iterated to a fixed
//!    point.
//! 3. **Backend**: machine lowering with the TEPIC calling convention
//!    ([`machine`]), global liveness ([`liveness`]), linear-scan register
//!    allocation onto the 32/32/32 register files ([`regalloc`]), treegion
//!    formation for block layout ([`treegion`]), a cycle-by-cycle list
//!    scheduler that packs operations into zero-NOP MultiOps under the
//!    6-issue/2-memory-slot machine constraints ([`sched`]), and final
//!    emission into an executable [`tepic_isa::Program`] ([`emit`]).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! let src = r#"
//!     fn main() {
//!         var i; var s;
//!         s = 0; i = 0;
//!         while (i < 10) { s = s + i; i = i + 1; }
//!         print(s);
//!     }
//! "#;
//! let program = lego::compile(src, &lego::Options::default()).unwrap();
//! assert!(program.num_blocks() > 0);
//! ```

pub mod driver;
pub mod emit;
pub mod lang;
pub mod liveness;
pub mod machine;
pub mod opt;
pub mod regalloc;
pub mod sched;
pub mod treegion;

pub use driver::{compile, compile_module, CompileError, Options};
