//! Post-allocation cycle scheduler: packs each machine block's operations
//! into zero-NOP MultiOps under the 6-issue TEPIC machine model.
//!
//! Dependence semantics follow the VLIW read-before-write rule: every
//! operation in a MultiOp reads machine state as of the start of the
//! cycle, and writes land at the end of it. Hence:
//!
//! * RAW edges carry the producer's latency;
//! * WAR edges carry delay 0 (reader and writer may share a cycle);
//! * WAW edges carry delay 1 (two writes to one register must not share a
//!   cycle);
//! * memory: store→(load|store) and anything→`Sys` carry delay 1,
//!   load→store carries 0 (the load reads pre-cycle memory);
//! * a block-ending operation issues only after every other operation in
//!   the block has issued.
//!
//! The list scheduler issues by critical-path height, limited to
//! [`tepic_isa::ISSUE_WIDTH`] operations and [`tepic_isa::MEM_SLOTS`]
//! memory operations per cycle.

use crate::machine::{MFunction, MInst, MReg};
use std::collections::HashMap;
use tepic_isa::{ISSUE_WIDTH, MEM_SLOTS};
use tinker_ir::RegClass;

/// A scheduled machine function: per block, a list of cycles, each holding
/// the instructions issued that cycle (a MultiOp).
#[derive(Debug, Clone, PartialEq)]
pub struct SchedFunction {
    /// Function name.
    pub name: String,
    /// `cycles[b]` — MultiOps of block `b` in issue order.
    pub blocks: Vec<Vec<Vec<MInst>>>,
}

impl SchedFunction {
    /// Static operations per cycle across the whole function (a crude ILP
    /// figure reported by the harness).
    pub fn static_ilp(&self) -> f64 {
        let ops: usize = self.blocks.iter().flatten().map(Vec::len).sum();
        let cycles: usize = self.blocks.iter().map(Vec::len).sum();
        if cycles == 0 {
            0.0
        } else {
            ops as f64 / cycles as f64
        }
    }
}

/// Result latency used for RAW edges.
fn latency(inst: &MInst) -> u32 {
    match inst {
        MInst::Load { .. } | MInst::FLoad { .. } => 2,
        MInst::IntAlu {
            op: tepic_isa::op::IntOpcode::Mul,
            ..
        } => 3,
        MInst::IntAlu {
            op: tepic_isa::op::IntOpcode::Div | tepic_isa::op::IntOpcode::Rem,
            ..
        } => 8,
        MInst::Float {
            op: tepic_isa::op::FloatOpcode::Fdiv,
            ..
        } => 8,
        MInst::Float { .. } | MInst::CvtIf { .. } | MInst::CvtFi { .. } => 2,
        _ => 1,
    }
}

fn is_sys(inst: &MInst) -> bool {
    matches!(inst, MInst::Sys { .. })
}

fn is_store(inst: &MInst) -> bool {
    matches!(inst, MInst::Store { .. } | MInst::FStore { .. })
}

fn is_load(inst: &MInst) -> bool {
    matches!(inst, MInst::Load { .. } | MInst::FLoad { .. })
}

/// Register key combining class and physical index.
fn reg_key(class: RegClass, r: MReg) -> (u8, u8) {
    let c = match class {
        RegClass::Int => 0,
        RegClass::Float => 1,
        RegClass::Pred => 2,
    };
    (c, r.phys())
}

/// Schedules one block's instruction list into cycles.
///
/// # Panics
///
/// Panics if a virtual register survives to scheduling (allocation must
/// run first).
pub fn schedule_block(insts: &[MInst]) -> Vec<Vec<MInst>> {
    let n = insts.len();
    if n == 0 {
        return vec![];
    }
    // Build dependence edges: succ[i] = (j, delay).
    let mut succ: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
    let mut npred: Vec<u32> = vec![0; n];
    let add_edge =
        |succ: &mut Vec<Vec<(usize, u32)>>, npred: &mut Vec<u32>, a: usize, b: usize, d: u32| {
            succ[a].push((b, d));
            npred[b] += 1;
        };

    // Last writer / readers per register.
    let mut last_def: HashMap<(u8, u8), usize> = HashMap::new();
    let mut readers: HashMap<(u8, u8), Vec<usize>> = HashMap::new();
    let mut last_store: Option<usize> = None;
    let mut loads_since_store: Vec<usize> = Vec::new();
    let mut last_sys: Option<usize> = None;

    for (i, inst) in insts.iter().enumerate() {
        // Register dependences. r0 is a hardwired constant: ignore it.
        for (class, r) in inst.uses() {
            let key = reg_key(class, r);
            if key == (0, 0) {
                continue;
            }
            if let Some(&d) = last_def.get(&key) {
                add_edge(&mut succ, &mut npred, d, i, latency(&insts[d])); // RAW
            }
            readers.entry(key).or_default().push(i);
        }
        for (class, r) in inst.defs() {
            let key = reg_key(class, r);
            if key == (0, 0) {
                continue;
            }
            if let Some(&d) = last_def.get(&key) {
                add_edge(&mut succ, &mut npred, d, i, 1); // WAW
            }
            if let Some(rs) = readers.get(&key) {
                for &r_i in rs {
                    if r_i != i {
                        add_edge(&mut succ, &mut npred, r_i, i, 0); // WAR
                    }
                }
            }
            last_def.insert(key, i);
            readers.insert(key, vec![]);
        }
        // Memory and system ordering.
        if is_load(inst) {
            if let Some(s) = last_store {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            if let Some(s) = last_sys {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            loads_since_store.push(i);
        }
        if is_store(inst) {
            if let Some(s) = last_store {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            for &l in &loads_since_store {
                add_edge(&mut succ, &mut npred, l, i, 0);
            }
            if let Some(s) = last_sys {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            last_store = Some(i);
            loads_since_store.clear();
        }
        if is_sys(inst) {
            if let Some(s) = last_sys {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            if let Some(s) = last_store {
                add_edge(&mut succ, &mut npred, s, i, 1);
            }
            for &l in &loads_since_store {
                add_edge(&mut succ, &mut npred, l, i, 0);
            }
            last_sys = Some(i);
        }
        // Calls and other block enders wait for everything.
        if inst.is_block_end() {
            for j in 0..i {
                add_edge(&mut succ, &mut npred, j, i, 0);
            }
        }
    }

    // Critical-path heights for priority.
    let mut height = vec![0u32; n];
    for i in (0..n).rev() {
        for &(j, d) in &succ[i] {
            height[i] = height[i].max(height[j] + d.max(1));
        }
    }

    // List scheduling.
    let mut earliest = vec![0u32; n]; // earliest legal cycle
    let mut remaining = npred;
    let mut scheduled = vec![false; n];
    let mut cycles: Vec<Vec<usize>> = Vec::new();
    let mut done = 0usize;
    let mut cycle = 0u32;
    while done < n {
        let mut issued_this_cycle: Vec<usize> = Vec::new();
        let mut mem_used = 0usize;
        loop {
            // Ready = all preds issued, earliest ≤ cycle, resources free.
            let mut best: Option<usize> = None;
            for i in 0..n {
                if scheduled[i] || remaining[i] > 0 || earliest[i] > cycle {
                    continue;
                }
                if insts[i].is_mem() && mem_used >= MEM_SLOTS {
                    continue;
                }
                if issued_this_cycle.len() >= ISSUE_WIDTH {
                    continue;
                }
                // A block ender must issue alone-last: only when everything
                // else is done and nothing else was picked first is fine;
                // sharing a cycle with earlier ops is legal.
                if best.is_none_or(|b| {
                    (height[i], std::cmp::Reverse(i)) > (height[b], std::cmp::Reverse(b))
                }) {
                    best = Some(i);
                }
            }
            let Some(pick) = best else { break };
            scheduled[pick] = true;
            issued_this_cycle.push(pick);
            if insts[pick].is_mem() {
                mem_used += 1;
            }
            done += 1;
            for &(j, d) in &succ[pick] {
                remaining[j] -= 1;
                earliest[j] = earliest[j].max(cycle + d);
            }
        }
        if !issued_this_cycle.is_empty() {
            // Keep program order inside a cycle for deterministic output
            // (and so a block ender lands last).
            issued_this_cycle.sort_unstable();
            cycles.push(issued_this_cycle);
        }
        cycle += 1;
        // Safety valve: cycles without progress still advance `cycle`
        // because `earliest` may exceed the current cycle.
        debug_assert!(cycle < 16 * n as u32 + 16, "scheduler stuck");
    }
    cycles
        .into_iter()
        .map(|idxs| idxs.into_iter().map(|i| insts[i].clone()).collect())
        .collect()
}

/// Schedules every block of an allocated machine function.
pub fn schedule_function(f: &MFunction) -> SchedFunction {
    SchedFunction {
        name: f.name.clone(),
        blocks: f.blocks.iter().map(|b| schedule_block(&b.insts)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tepic_isa::op::{IntOpcode, MemWidth};

    fn alu(op: IntOpcode, dst: u8, a: u8, b: u8) -> MInst {
        MInst::IntAlu {
            op,
            dst: MReg::Phys(dst),
            a: MReg::Phys(a),
            b: MReg::Phys(b),
        }
    }

    fn ldi(dst: u8, imm: i32) -> MInst {
        MInst::LoadImm {
            high: false,
            imm,
            dst: MReg::Phys(dst),
        }
    }

    fn flatten(cycles: &[Vec<MInst>]) -> Vec<MInst> {
        cycles.iter().flatten().cloned().collect()
    }

    fn cycle_of(cycles: &[Vec<MInst>], inst: &MInst) -> usize {
        cycles
            .iter()
            .position(|c| c.contains(inst))
            .expect("scheduled")
    }

    #[test]
    fn independent_ops_pack_into_one_cycle() {
        let insts = vec![ldi(8, 1), ldi(9, 2), ldi(10, 3), ldi(11, 4)];
        let cycles = schedule_block(&insts);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 4);
    }

    #[test]
    fn raw_dependence_separates_cycles() {
        let a = ldi(8, 1);
        let b = alu(IntOpcode::Add, 9, 8, 8);
        let cycles = schedule_block(&[a.clone(), b.clone()]);
        assert!(cycle_of(&cycles, &b) > cycle_of(&cycles, &a));
    }

    #[test]
    fn raw_latency_separates_mops() {
        // Empty cycles are not materialized (zero-NOP encoding: the load's
        // Lat field tells the hardware to interlock), so the consumer lands
        // in a strictly later MOP, with independent work able to fill the
        // latency MOPs when present.
        let ld = MInst::Load {
            width: MemWidth::Word,
            dst: MReg::Phys(8),
            base: MReg::Phys(9),
        };
        let use_ = alu(IntOpcode::Add, 10, 8, 8);
        let filler1 = ldi(11, 1);
        let filler2 = ldi(12, 2);
        let cycles = schedule_block(&[ld.clone(), use_.clone(), filler1.clone(), filler2.clone()]);
        assert!(cycle_of(&cycles, &use_) > cycle_of(&cycles, &ld));
        // Fillers issue alongside or before the stalled consumer.
        assert!(cycle_of(&cycles, &filler1) <= cycle_of(&cycles, &use_));
    }

    #[test]
    fn war_can_share_a_cycle() {
        // read r8 then write r8: legal same cycle under read-before-write.
        let reader = alu(IntOpcode::Add, 9, 8, 8);
        let writer = ldi(8, 7);
        let cycles = schedule_block(&[reader.clone(), writer.clone()]);
        assert!(cycle_of(&cycles, &writer) >= cycle_of(&cycles, &reader));
    }

    #[test]
    fn waw_never_shares_a_cycle() {
        let w1 = ldi(8, 1);
        let w2 = ldi(8, 2);
        let cycles = schedule_block(&[w1.clone(), w2.clone()]);
        assert!(cycle_of(&cycles, &w2) > cycle_of(&cycles, &w1));
        // Final value must be the later write.
        let flat = flatten(&cycles);
        assert_eq!(flat.last(), Some(&w2));
    }

    #[test]
    fn issue_width_limits_cycle_size() {
        let insts: Vec<MInst> = (0..10i32).map(|i| ldi(8 + (i % 2) as u8, i)).collect();
        // Interleaved WAWs force order; use distinct regs instead:
        let insts2: Vec<MInst> = (0..10i32).map(|i| ldi(8 + i as u8, i)).collect();
        let cycles = schedule_block(&insts2);
        for c in &cycles {
            assert!(c.len() <= ISSUE_WIDTH);
        }
        assert!(cycles.len() >= 2);
        let _ = insts;
    }

    #[test]
    fn mem_slots_limit_memory_ops_per_cycle() {
        let mk = |dst: u8, base: u8| MInst::Load {
            width: MemWidth::Word,
            dst: MReg::Phys(dst),
            base: MReg::Phys(base),
        };
        let insts = vec![mk(8, 20), mk(9, 21), mk(10, 22), mk(11, 23)];
        let cycles = schedule_block(&insts);
        for c in &cycles {
            assert!(c.iter().filter(|i| i.is_mem()).count() <= MEM_SLOTS);
        }
        assert!(cycles.len() >= 2);
    }

    #[test]
    fn store_then_load_ordered() {
        let st = MInst::Store {
            width: MemWidth::Word,
            base: MReg::Phys(8),
            value: MReg::Phys(9),
        };
        let ld = MInst::Load {
            width: MemWidth::Word,
            dst: MReg::Phys(10),
            base: MReg::Phys(11),
        };
        let cycles = schedule_block(&[st.clone(), ld.clone()]);
        assert!(cycle_of(&cycles, &ld) > cycle_of(&cycles, &st));
    }

    #[test]
    fn load_then_store_can_share() {
        let ld = MInst::Load {
            width: MemWidth::Word,
            dst: MReg::Phys(10),
            base: MReg::Phys(11),
        };
        let st = MInst::Store {
            width: MemWidth::Word,
            base: MReg::Phys(8),
            value: MReg::Phys(9),
        };
        let cycles = schedule_block(&[ld.clone(), st.clone()]);
        assert!(cycle_of(&cycles, &st) >= cycle_of(&cycles, &ld));
    }

    #[test]
    fn block_ender_is_last() {
        let insts = vec![
            ldi(8, 1),
            MInst::Branch {
                pred: None,
                target: 0,
            },
        ];
        // Put the branch second (as lowering does) plus some fillers after
        // reordering opportunities.
        let cycles = schedule_block(&insts);
        let flat = flatten(&cycles);
        assert!(matches!(flat.last(), Some(MInst::Branch { .. })));
        // Branch must be in the final cycle.
        assert!(matches!(
            cycles.last().unwrap().last(),
            Some(MInst::Branch { .. })
        ));
    }

    #[test]
    fn sys_order_is_preserved() {
        let s1 = MInst::Sys {
            code: tepic_isa::op::SysCode::PrintInt,
            arg: MReg::Phys(8),
        };
        let s2 = MInst::Sys {
            code: tepic_isa::op::SysCode::PrintChar,
            arg: MReg::Phys(9),
        };
        let cycles = schedule_block(&[s1.clone(), s2.clone()]);
        assert!(cycle_of(&cycles, &s2) > cycle_of(&cycles, &s1));
    }

    #[test]
    fn empty_block_schedules_to_nothing() {
        assert!(schedule_block(&[]).is_empty());
    }
}
