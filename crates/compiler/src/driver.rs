//! The one-call compilation driver: Tink source (or a prebuilt IR module)
//! → executable [`tepic_isa::Program`].

use crate::emit::{emit_program, EmitError};
use crate::lang::lower::LowerError;
use crate::lang::{lower_program, parse, ParseError};
use crate::machine::{layout_order, lower_function, ConstPool, DataLayout, DATA_BASE};
use crate::opt::optimize_module;
use crate::regalloc::{allocate, RegAllocError};
use crate::sched::schedule_function;
use std::fmt;
use tepic_isa::Program;
use tinker_ir::{Module, VerifyError};

/// Compilation options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Run the IR optimizer (default true).
    pub optimize: bool,
    /// Optimizer iteration budget.
    pub opt_iters: usize,
    /// Data segment base address.
    pub data_base: u32,
    /// Tail-duplicate small join blocks into their jump predecessors
    /// (off by default — the paper keeps code duplication "restricted to
    /// RISC-like levels"; see `opt::taildup`). The value is the maximum
    /// instruction count of a duplicated block.
    pub tail_duplicate: Option<usize>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            optimize: true,
            opt_iters: 8,
            data_base: DATA_BASE,
            tail_duplicate: None,
        }
    }
}

/// Any failure along the compilation pipeline.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error during AST → IR lowering.
    Lower(LowerError),
    /// IR verification failure (indicates a pass bug).
    Verify(VerifyError),
    /// Register allocation failure.
    RegAlloc(RegAllocError),
    /// Final assembly failure.
    Emit(EmitError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "internal: {e}"),
            CompileError::RegAlloc(e) => write!(f, "{e}"),
            CompileError::Emit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<LowerError> for CompileError {
    fn from(e: LowerError) -> Self {
        CompileError::Lower(e)
    }
}

/// Compiles Tink source text into an executable TEPIC program.
///
/// # Errors
///
/// Returns [`CompileError`] for syntax, semantic, allocation or assembly
/// failures.
///
/// # Example
///
/// ```
/// let p = lego::compile("fn main() { print(2 + 3); }", &lego::Options::default()).unwrap();
/// assert!(p.num_ops() > 0);
/// ```
pub fn compile(src: &str, opts: &Options) -> Result<Program, CompileError> {
    let ast = parse(src)?;
    let module = lower_program(&ast)?;
    compile_module(module, opts)
}

/// Compiles a prebuilt IR module (the entry point for programmatic IR
/// construction).
///
/// # Errors
///
/// As [`compile`], minus parsing.
pub fn compile_module(mut module: Module, opts: &Options) -> Result<Program, CompileError> {
    module.verify().map_err(CompileError::Verify)?;
    if opts.optimize {
        optimize_module(&mut module, opts.opt_iters);
        module.verify().map_err(CompileError::Verify)?;
    }
    if let Some(max_insts) = opts.tail_duplicate {
        for f in module.funcs_mut() {
            crate::opt::taildup::run(f, max_insts);
        }
        // Clean up now-unreachable originals and re-verify.
        optimize_module(&mut module, 2);
        module.verify().map_err(CompileError::Verify)?;
    }

    let mut layout = DataLayout::new(&module, opts.data_base);
    let mut pool = ConstPool::default();
    let mut machined = Vec::with_capacity(module.funcs().len());
    for f in module.funcs() {
        let order = layout_order(f);
        let mf = lower_function(&module, f, &order, &layout, &mut pool);
        machined.push(mf);
    }
    layout.seal_pool(pool.len());

    let mut scheduled = Vec::with_capacity(machined.len());
    for mut mf in machined {
        allocate(&mut mf).map_err(CompileError::RegAlloc)?;
        let s = schedule_function(&mf);
        scheduled.push((mf, s));
    }

    let main_index = module
        .func_by_name("main")
        .map(|(id, _)| id.0 as usize)
        .ok_or(CompileError::Emit(EmitError::NoMain))?;
    let data = layout.initial_bytes(&module, &pool);
    emit_program(&scheduled, main_index, data, opts.data_base).map_err(CompileError::Emit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_hello_sum() {
        let p = compile(
            "fn main() { var i; var s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } print(s); }",
            &Options::default(),
        )
        .unwrap();
        assert!(p.num_ops() > 0);
        assert!(p.num_blocks() > 2);
        assert!(p.num_mops() <= p.num_ops());
    }

    #[test]
    fn compiles_recursion_and_calls() {
        let src = r#"
            fn main() { print(fib(10)); }
            fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        "#;
        let p = compile(src, &Options::default()).unwrap();
        assert_eq!(p.funcs().len(), 2);
    }

    #[test]
    fn compiles_with_and_without_optimization() {
        let src = r#"
            global a[16];
            fn main() {
                var i;
                for (i = 0; i < 16; i = i + 1) { a[i] = 2 * i + 1; }
                print(a[3]);
            }
        "#;
        let opt = compile(src, &Options::default()).unwrap();
        let unopt = compile(
            src,
            &Options {
                optimize: false,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(opt.num_ops() <= unopt.num_ops());
    }

    #[test]
    fn syntax_error_surfaces() {
        assert!(matches!(
            compile("fn main( { }", &Options::default()),
            Err(CompileError::Parse(_))
        ));
    }

    #[test]
    fn semantic_error_surfaces() {
        assert!(matches!(
            compile("fn main() { frob(1); }", &Options::default()),
            Err(CompileError::Lower(_))
        ));
    }

    #[test]
    fn float_program_compiles() {
        let src = r#"
            fglobal out[4];
            fn main() {
                fvar x = 1.5;
                fvar y = x * x + 0.25;
                out[0] = y;
                print(int(y * 100.0));
            }
        "#;
        let p = compile(src, &Options::default()).unwrap();
        assert!(p.num_ops() > 0);
        assert!(!p.data().is_empty());
    }
}
