//! Complex fetch units — the paper's last future-work item ("usage of
//! complex blocks as fetch units", §7; §3.1 sketches superblocks/traces
//! as candidate units "formed at compilation with the use of profile
//! information").
//!
//! A *fetch unit* is a maximal chain of layout-sequential basic blocks
//! where the profile says each block overwhelmingly falls through to the
//! next, and the next is rarely entered from anywhere else (the paper's
//! "side entrances … not taken frequently" condition). The ATB then
//! works at unit granularity: one translation + one prediction per unit
//! instead of per block — fewer prediction points and longer streaming
//! runs, paid for by over-fetch when the trace leaves a unit early.

use crate::atb::Atb;
use crate::buffer::L0Buffer;
use crate::cache::BankedCache;
use crate::engine::{EncodingClass, FetchConfig, FetchResult};
use crate::penalty::Outcome;
use crate::power::BusModel;
use ccc_core::{AddressTranslationTable, EncodedProgram};
use tepic_isa::Program;
use yula::BlockTrace;

/// The block→unit partition.
#[derive(Debug, Clone)]
pub struct FetchUnits {
    /// Unit id of each block.
    unit_of: Vec<u32>,
    /// First block of each unit (units cover contiguous block ranges).
    first_block: Vec<u32>,
    /// Block count of each unit.
    len: Vec<u32>,
}

impl FetchUnits {
    /// Forms units from a profile (the dynamic trace): block `b` chains
    /// to `b+1` when at least `theta` of b's executions fall through AND
    /// at least `theta` of `b+1`'s entries come from `b`.
    pub fn form(program: &Program, trace: &BlockTrace, theta: f64) -> FetchUnits {
        let n = program.num_blocks();
        let mut execs = vec![0u64; n];
        let mut fallthrough = vec![0u64; n];
        let mut entries = vec![0u64; n];
        let mut entries_from_prev = vec![0u64; n];
        for (cur, next) in trace.transitions() {
            execs[cur as usize] += 1;
            if let Some(nx) = next {
                entries[nx as usize] += 1;
                if nx == cur + 1 {
                    fallthrough[cur as usize] += 1;
                    entries_from_prev[nx as usize] += 1;
                }
            }
        }
        let mut unit_of = vec![0u32; n];
        let mut first_block = Vec::new();
        let mut len = Vec::new();
        let mut b = 0usize;
        while b < n {
            let unit = first_block.len() as u32;
            first_block.push(b as u32);
            let mut count = 1u32;
            while b + (count as usize) < n {
                let cur = b + count as usize - 1;
                let nxt = cur + 1;
                let chain = execs[cur] > 0
                    && fallthrough[cur] as f64 >= theta * execs[cur] as f64
                    && entries[nxt] > 0
                    && entries_from_prev[nxt] as f64 >= theta * entries[nxt] as f64
                    && program.blocks()[cur].func == program.blocks()[nxt].func;
                if !chain {
                    break;
                }
                count += 1;
            }
            for k in 0..count {
                unit_of[b + k as usize] = unit;
            }
            len.push(count);
            b += count as usize;
        }
        FetchUnits {
            unit_of,
            first_block,
            len,
        }
    }

    /// Unit id of a block.
    pub fn unit_of(&self, block: u32) -> u32 {
        self.unit_of[block as usize]
    }

    /// Number of units.
    pub fn num_units(&self) -> usize {
        self.first_block.len()
    }

    /// `(first_block, num_blocks)` of a unit.
    pub fn unit(&self, u: u32) -> (u32, u32) {
        (self.first_block[u as usize], self.len[u as usize])
    }

    /// Mean blocks per unit.
    pub fn avg_len(&self) -> f64 {
        if self.len.is_empty() {
            return 0.0;
        }
        self.len.iter().map(|&l| l as f64).sum::<f64>() / self.len.len() as f64
    }
}

/// Simulates fetch with complex units: on entering a unit (at its head
/// or through a side entrance), the span from the entry block to the
/// unit end is fetched atomically; blocks stream with no further
/// prediction until the trace leaves the span.
pub fn simulate_with_units(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
    units: &FetchUnits,
) -> FetchResult {
    let att = AddressTranslationTable::build(program, image);
    let mut atb = Atb::new(config.atb_entries);
    let mut cache = BankedCache::new(config.cache);
    let mut buffer = L0Buffer::new(config.l0_ops);
    let mut bus = BusModel::new();
    let compressed = config.class == EncodingClass::Compressed;
    let translated = matches!(
        config.class,
        EncodingClass::Compressed | EncodingClass::Tailored
    );

    let mut r = FetchResult {
        class: config.class,
        cycles: 0,
        ops: 0,
        mops: 0,
        pred_correct: 0,
        pred_wrong: 0,
        cache_hits: 0,
        cache_misses: 0,
        buffer_hits: 0,
        buffer_misses: 0,
        atb_hits: 0,
        atb_misses: 0,
        bus_beats: 0,
        bus_bit_flips: 0,
        integrity_faults: 0,
    };

    let blocks = trace.blocks();
    let mut i = 0usize;
    let mut predicted_entry: Option<u32> = None;
    while i < blocks.len() {
        let entry = blocks[i];
        let unit = units.unit_of(entry);
        let (ufirst, ulen) = units.unit(unit);
        let uend = ufirst + ulen; // exclusive

        // Follow the trace while it streams sequentially inside the unit.
        let mut span = 1usize;
        while i + span < blocks.len()
            && blocks[i + span] == entry + span as u32
            && entry + (span as u32) < uend
        {
            span += 1;
        }
        let last = entry + span as u32 - 1;

        // Fetch the span [entry, unit end) atomically — the unit is the
        // placement granule, so over-fetch past `last` is real cost.
        let (start, _) = image.block_range(entry as usize);
        let (_, end) = image.block_range(uend as usize - 1);
        let lines = config.cache.lines_spanned(start, end);

        let predicted = predicted_entry.is_none_or(|p| p == entry);
        if predicted_entry.is_some() {
            if predicted {
                r.pred_correct += 1;
            } else {
                r.pred_wrong += 1;
            }
        }

        let atb_hit = atb.access(entry, att.lookup(entry as usize));
        if translated && !atb_hit {
            r.cycles += config.atb_miss_penalty as u64;
        }

        let span_ops: u64 = (entry..=last)
            .map(|b| program.blocks()[b as usize].num_ops as u64)
            .sum();
        let span_mops: u64 = (entry..=last)
            .map(|b| program.blocks()[b as usize].num_mops as u64)
            .sum();
        r.ops += span_ops;
        r.mops += span_mops;

        let buffer_hit = compressed && buffer.access(entry, span_ops.min(u32::MAX as u64) as u32);
        let cache_hit = if buffer_hit {
            true
        } else {
            let access = cache.access_block(start, end);
            for &l in &access.fetched_lines {
                bus.transfer_line(&image.bytes, l, config.cache.line_bytes);
            }
            access.hit
        };

        let pen = config.penalties.penalty(Outcome {
            predicted,
            cache_hit,
            buffer_hit,
        });
        r.cycles += pen.cycles(lines) as u64 + span_mops.saturating_sub(1);

        // One prediction per unit exit.
        i += span;
        if i < blocks.len() {
            predicted_entry = Some(atb.predict_next(last));
            atb.train(last, blocks[i]);
        }
    }

    r.cache_hits = cache.hits();
    r.cache_misses = cache.misses();
    r.buffer_hits = buffer.hits();
    r.buffer_misses = buffer.misses();
    r.atb_hits = atb.hits();
    r.atb_misses = atb.misses();
    r.bus_beats = bus.beats();
    r.bus_bit_flips = bus.bit_flips();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::schemes::base::encode_base;
    use yula::{Emulator, Limits};

    fn setup(src: &str) -> (Program, BlockTrace, EncodedProgram) {
        let p = lego::compile(src, &lego::Options::default()).unwrap();
        let run = Emulator::new(&p).run(&Limits::default()).unwrap();
        let img = encode_base(&p);
        (p, run.trace, img)
    }

    #[test]
    fn units_partition_all_blocks() {
        let (p, trace, _) = setup(
            "fn main() { var i; var s = 0; for (i = 0; i < 50; i = i + 1) { s = s + i; } print(s); }",
        );
        let units = FetchUnits::form(&p, &trace, 0.8);
        let mut covered = 0u32;
        for u in 0..units.num_units() as u32 {
            let (first, len) = units.unit(u);
            for b in first..first + len {
                assert_eq!(units.unit_of(b), u);
                covered += 1;
            }
        }
        assert_eq!(covered as usize, p.num_blocks());
        assert!(units.avg_len() >= 1.0);
    }

    #[test]
    fn straightline_code_forms_long_units() {
        let (p, trace, _) = setup(
            r#"
            global a[16];
            fn main() {
                a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
                a[4] = a[0] + a[1]; a[5] = a[2] * a[3];
                print(a[4] + a[5]);
            }
        "#,
        );
        let units = FetchUnits::form(&p, &trace, 0.8);
        // Straight-line main: strictly fewer units than blocks whenever
        // there are multiple blocks.
        if p.num_blocks() > 2 {
            assert!(units.num_units() < p.num_blocks());
        }
    }

    #[test]
    fn unit_simulation_conserves_ops_and_bounds_ipc() {
        let (p, trace, img) = setup(
            r#"
            fn main() {
                var i; var s = 0;
                for (i = 0; i < 200; i = i + 1) {
                    s = s + i;
                    if (s > 1000) { s = s - 1000; }
                }
                print(s);
            }
        "#,
        );
        let units = FetchUnits::form(&p, &trace, 0.8);
        let cfg = FetchConfig::base();
        let unit_r = simulate_with_units(&p, &img, &trace, &cfg, &units);
        let block_r = crate::engine::simulate(&p, &img, &trace, &cfg);
        assert_eq!(unit_r.ops, block_r.ops, "same instruction stream");
        assert!(unit_r.ipc() <= 6.0 + 1e-9);
        // Fewer prediction points at unit granularity.
        assert!(
            unit_r.pred_correct + unit_r.pred_wrong <= block_r.pred_correct + block_r.pred_wrong
        );
    }

    #[test]
    fn theta_one_degenerates_to_blocks() {
        let (p, trace, img) =
            setup("fn main() { var i; for (i = 0; i < 20; i = i + 1) { print(i); } }");
        // theta > 1 can never chain, so every block is its own unit and
        // the unit engine must agree with the block engine on delivered
        // work.
        let units = FetchUnits::form(&p, &trace, 1.1);
        assert_eq!(units.num_units(), p.num_blocks());
        let cfg = FetchConfig::base();
        let unit_r = simulate_with_units(&p, &img, &trace, &cfg, &units);
        let block_r = crate::engine::simulate(&p, &img, &trace, &cfg);
        assert_eq!(unit_r.ops, block_r.ops);
        assert_eq!(
            unit_r.cycles, block_r.cycles,
            "degenerate units must match exactly"
        );
    }
}
