//! The dual-banked instruction cache (paper §3.4, Figure 8), modelled at
//! tag granularity with the *restricted placement* policy: a block is
//! brought in atomically on a miss, and a block hits only while all of
//! its lines are resident (partial eviction invalidates the remainder —
//! §5's invalidation duty of the miss-path logic).
//!
//! The two banks of the real design exist to fetch a MOP spanning two
//! lines in one reference; for hit/miss accounting a set-associative tag
//! array over bank lines is equivalent, so that is what is modelled.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity.
    pub ways: usize,
    /// Bank line size in bytes (the maximum MOP size, 30 bytes, for the
    /// Base encoding — hence its odd 20KB capacity; 32 bytes for the
    /// compressed-space caches).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Base encoding: 20KB, 2-way, 30-byte lines ("a block size that is
    /// a multiple of the TEPIC 40-bit op size, so its effective size is
    /// slightly larger").
    pub fn base() -> CacheConfig {
        CacheConfig {
            capacity: 20 * 1024,
            ways: 2,
            line_bytes: 30,
        }
    }

    /// Compressed/Tailored caches: 16KB, 2-way, 32-byte lines.
    pub fn compact() -> CacheConfig {
        CacheConfig {
            capacity: 16 * 1024,
            ways: 2,
            line_bytes: 32,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity / self.line_bytes / self.ways).max(1)
    }

    /// Lines spanned by the byte range `[start, end)`.
    pub fn lines_spanned(&self, start: u64, end: u64) -> u32 {
        if end <= start {
            return 1;
        }
        let first = start / self.line_bytes as u64;
        let last = (end - 1) / self.line_bytes as u64;
        (last - first + 1) as u32
    }
}

/// Set-associative tag array with LRU replacement.
#[derive(Debug, Clone)]
pub struct BankedCache {
    config: CacheConfig,
    /// Per set: (line_number, lru_stamp) per way; `u64::MAX` = invalid.
    tags: Vec<Vec<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl BankedCache {
    /// Creates an empty (cold) cache.
    pub fn new(config: CacheConfig) -> BankedCache {
        BankedCache {
            config,
            tags: vec![vec![(u64::MAX, 0); config.ways]; config.sets()],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn line_present(&self, line: u64) -> bool {
        let set = (line % self.tags.len() as u64) as usize;
        self.tags[set].iter().any(|&(l, _)| l == line)
    }

    fn touch_line(&mut self, line: u64) {
        self.clock += 1;
        let nsets = self.tags.len() as u64;
        let set = (line % nsets) as usize;
        if let Some(w) = self.tags[set].iter().position(|&(l, _)| l == line) {
            self.tags[set][w].1 = self.clock;
        }
    }

    fn insert_line(&mut self, line: u64) {
        self.clock += 1;
        let nsets = self.tags.len() as u64;
        let set = (line % nsets) as usize;
        if let Some(w) = self.tags[set].iter().position(|&(l, _)| l == line) {
            self.tags[set][w].1 = self.clock;
            return;
        }
        // Evict LRU.
        let (victim, _) = self.tags[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, stamp))| stamp)
            .expect("ways > 0");
        self.tags[set][victim] = (line, self.clock);
    }

    /// Accesses a block occupying `[start, end)`; returns whether it hit
    /// (all lines resident). On a miss the whole block is brought in
    /// atomically and the missing lines are reported (for the bus/power
    /// model).
    pub fn access_block(&mut self, start: u64, end: u64) -> BlockAccess {
        let first = start / self.config.line_bytes as u64;
        let last = if end > start {
            (end - 1) / self.config.line_bytes as u64
        } else {
            first
        };
        let all_present = (first..=last).all(|l| self.line_present(l));
        if all_present {
            self.hits += 1;
            for l in first..=last {
                self.touch_line(l);
            }
            BlockAccess {
                hit: true,
                fetched_lines: vec![],
            }
        } else {
            self.misses += 1;
            let fetched: Vec<u64> = (first..=last).filter(|&l| !self.line_present(l)).collect();
            for l in first..=last {
                self.insert_line(l);
            }
            BlockAccess {
                hit: false,
                fetched_lines: fetched,
            }
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of one block access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockAccess {
    /// Whether every line of the block was resident.
    pub hit: bool,
    /// Line numbers fetched from memory on a miss (bus traffic).
    pub fetched_lines: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BankedCache {
        // 4 sets × 2 ways × 16B lines = 128 bytes.
        BankedCache::new(CacheConfig {
            capacity: 128,
            ways: 2,
            line_bytes: 16,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::base();
        assert_eq!(c.sets(), 341);
        assert_eq!(c.lines_spanned(0, 30), 1);
        assert_eq!(c.lines_spanned(0, 31), 2);
        assert_eq!(c.lines_spanned(29, 31), 2);
        assert_eq!(c.lines_spanned(60, 60), 1);
        let k = CacheConfig::compact();
        assert_eq!(k.sets(), 256);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let a = c.access_block(0, 20);
        assert!(!a.hit);
        assert_eq!(a.fetched_lines, vec![0, 1]);
        let b = c.access_block(0, 20);
        assert!(b.hit);
        assert!(b.fetched_lines.is_empty());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn partial_presence_is_a_miss() {
        let mut c = tiny();
        c.access_block(0, 16); // line 0 only
        let a = c.access_block(0, 32); // needs lines 0 and 1
        assert!(!a.hit, "restricted placement: whole block must be resident");
        assert_eq!(
            a.fetched_lines,
            vec![1],
            "only the missing line crosses the bus"
        );
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(); // 4 sets: line L maps to set L % 4
                            // Lines 0, 4, 8 all map to set 0 (2 ways).
        c.access_block(0, 1); // line 0
        c.access_block(64, 65); // line 4
        c.access_block(0, 1); // touch line 0 (line 4 becomes LRU)
        c.access_block(128, 129); // line 8 evicts line 4
        assert!(c.access_block(0, 1).hit, "line 0 survived");
        assert!(!c.access_block(64, 65).hit, "line 4 was evicted");
    }

    #[test]
    fn hit_rate_accumulates() {
        let mut c = tiny();
        c.access_block(0, 8);
        c.access_block(0, 8);
        c.access_block(0, 8);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_range_counts_one_line() {
        let mut c = tiny();
        let a = c.access_block(32, 32);
        assert_eq!(a.fetched_lines.len(), 1);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn base_geometry_with_non_power_of_two_sets_works() {
        // 341 sets — modulo indexing must distribute and never panic.
        let mut c = BankedCache::new(CacheConfig::base());
        for line in 0..2000u64 {
            c.access_block(line * 30, line * 30 + 30);
        }
        assert_eq!(c.hits() + c.misses(), 2000);
        // Revisit a recent line set: should hit.
        assert!(c.access_block(1999 * 30, 1999 * 30 + 30).hit);
    }

    #[test]
    fn block_spanning_many_lines_fetches_them_all() {
        let mut c = BankedCache::new(CacheConfig {
            capacity: 1024,
            ways: 2,
            line_bytes: 16,
        });
        let a = c.access_block(8, 100); // lines 0..=6
        assert_eq!(a.fetched_lines.len(), 7);
        assert!(c.access_block(8, 100).hit);
    }

    #[test]
    fn eviction_of_one_line_invalidates_the_block() {
        // Restricted placement: a block is only a hit while ALL its lines
        // are resident.
        let mut c = BankedCache::new(CacheConfig {
            capacity: 64,
            ways: 1,
            line_bytes: 16,
        });
        // 4 sets, direct-mapped. Block A = lines 0,1. Line 4 conflicts
        // with line 0 (set 0).
        c.access_block(0, 32);
        assert!(c.access_block(0, 32).hit);
        c.access_block(64, 80); // line 4 evicts line 0
        let again = c.access_block(0, 32);
        assert!(!again.hit, "partially evicted block must miss");
        assert_eq!(
            again.fetched_lines,
            vec![0],
            "only the evicted line refetches"
        );
    }

    #[test]
    fn hits_do_not_touch_the_bus() {
        let mut c = BankedCache::new(CacheConfig::compact());
        c.access_block(0, 64);
        let a = c.access_block(0, 64);
        assert!(a.hit && a.fetched_lines.is_empty());
    }
}
