//! Memory-bus power model (paper §5, Figure 14).
//!
//! "Power is modeled by counting the number of transactions on the memory
//! bus when bits are flipped." Every line fetched on an ICache miss
//! crosses a 64-bit bus in beats; the model counts the Hamming distance
//! between consecutive beat values (the bus wires' switching activity),
//! using the actual encoded image bytes. Compressed encodings move fewer
//! bytes per delivered instruction, so they flip fewer bits — Figure 14's
//! result that savings track the degree of compression.

/// Bus beat width in bytes.
pub const BUS_BYTES: usize = 8;

/// Accumulating bus activity model.
#[derive(Debug, Clone)]
pub struct BusModel {
    last_beat: u64,
    beats: u64,
    bit_flips: u64,
}

impl Default for BusModel {
    fn default() -> BusModel {
        BusModel::new()
    }
}

impl BusModel {
    /// A quiescent bus (all lines low).
    pub fn new() -> BusModel {
        BusModel {
            last_beat: 0,
            beats: 0,
            bit_flips: 0,
        }
    }

    /// Transfers one cache line (`line_bytes` starting at byte offset
    /// `line * line_bytes` of `image`), counting beats and flips. Ranges
    /// past the image end are zero-padded (the ROM's trailing pad).
    pub fn transfer_line(&mut self, image: &[u8], line: u64, line_bytes: usize) {
        let start = line as usize * line_bytes;
        for beat_off in (0..line_bytes).step_by(BUS_BYTES) {
            let mut word = [0u8; BUS_BYTES];
            for (i, byte) in word.iter_mut().enumerate() {
                *byte = image.get(start + beat_off + i).copied().unwrap_or(0);
            }
            let beat = u64::from_le_bytes(word);
            self.bit_flips += (beat ^ self.last_beat).count_ones() as u64;
            self.last_beat = beat;
            self.beats += 1;
        }
    }

    /// Total bus beats (transactions).
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Total wire transitions.
    pub fn bit_flips(&self) -> u64 {
        self.bit_flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_beats_per_line() {
        let image = vec![0u8; 64];
        let mut bus = BusModel::new();
        bus.transfer_line(&image, 0, 32);
        assert_eq!(bus.beats(), 4);
        assert_eq!(bus.bit_flips(), 0, "all-zero data never flips");
    }

    #[test]
    fn alternating_data_flips_heavily() {
        let mut image = vec![0u8; 32];
        for (i, b) in image.iter_mut().enumerate() {
            *b = if (i / 8) % 2 == 0 { 0xFF } else { 0x00 };
        }
        let mut bus = BusModel::new();
        bus.transfer_line(&image, 0, 32);
        // Beats: FF.. , 00.., FF.., 00.. → flips 64 + 64 + 64 + 64? First
        // beat flips from the quiescent 0 → 64, then 64 each transition.
        assert_eq!(bus.bit_flips(), 64 * 4);
    }

    #[test]
    fn reads_past_end_are_zero() {
        let image = vec![0xFFu8; 4];
        let mut bus = BusModel::new();
        bus.transfer_line(&image, 0, 8);
        assert_eq!(bus.beats(), 1);
        assert_eq!(bus.bit_flips(), 32, "only the 4 real bytes flip");
    }

    #[test]
    fn flips_depend_on_history() {
        let image = vec![0xAAu8; 16];
        let mut bus = BusModel::new();
        bus.transfer_line(&image, 0, 8);
        let first = bus.bit_flips();
        bus.transfer_line(&image, 1, 8);
        assert_eq!(
            bus.bit_flips(),
            first,
            "identical consecutive beats add nothing"
        );
    }
}
