//! # ifetch-sim — instruction fetch simulation for cached code compression
//!
//! Trace-driven models of the three IFetch organizations of Larin & Conte
//! (MICRO-32, 1999, §3–§5) plus the Ideal machine:
//!
//! * **Base** — uncompressed code in a dual-banked ICache (20KB 2-way,
//!   30-byte bank lines: a multiple of the 40-bit op size) with an
//!   alignment stage and ATB-coupled branch prediction;
//! * **Tailored** — tailored code in a 16KB 2-way banked cache; the miss
//!   path gains one stage (block extraction/placement), the hit path
//!   stays one-cycle;
//! * **Compressed** — Huffman-compressed code cached *compressed*;
//!   decompression sits on the hit path behind a 32-op L0 buffer, adding
//!   a pipeline stage that deepens the misprediction penalty;
//! * **Ideal** — perfect cache and predictor (one MultiOp per cycle).
//!
//! The cycle accounting is exactly the paper's Table 1
//! ([`penalty::PenaltyTable`]); the ATB ([`atb`]) holds one entry per
//! block with a 2-bit/last-target predictor; the bus power model
//! ([`power`]) counts bit flips on the 64-bit memory bus.
//!
//! The metric of Figure 13 is **operations delivered per cycle**
//! ([`engine::FetchResult::ipc`]) at issue width 6.

pub mod atb;
pub mod buffer;
pub mod cache;
pub mod engine;
pub mod gshare;
pub mod penalty;
pub mod power;
pub mod units;

pub use engine::{
    batch_decode_image, simulate, simulate_decoded, simulate_decoded_injected,
    simulate_decoded_traced, simulate_traced, simulate_with_att, DecodeStats, EncodingClass,
    FetchConfig, FetchResult, PredictorKind,
};
pub use penalty::{Outcome, Penalty, PenaltyTable};
pub use units::{simulate_with_units, FetchUnits};
