//! The paper's Table 1: cycle-count assumptions per fetch outcome.
//!
//! Each entry gives the cycles to deliver the *first* MultiOp of a block,
//! as a function of whether the previous block predicted this one
//! correctly, whether the block hit in the ICache, and (Compressed only)
//! whether it hit in the L0 decompression buffer. Entries written
//! `k+(n−1)` scale with `n`, the number of memory lines the block
//! occupies. Subsequent MOPs of the block stream at one per cycle.

use std::fmt;

/// One Table-1 cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Penalty {
    /// Cycles for the first MOP.
    pub base: u32,
    /// Whether `(n−1)` extra cycles accrue for an `n`-line block.
    pub scales_with_lines: bool,
}

impl Penalty {
    const fn fixed(base: u32) -> Penalty {
        Penalty {
            base,
            scales_with_lines: false,
        }
    }

    const fn lines(base: u32) -> Penalty {
        Penalty {
            base,
            scales_with_lines: true,
        }
    }

    /// Cycles for a block spanning `lines` memory lines.
    pub fn cycles(&self, lines: u32) -> u32 {
        self.base
            + if self.scales_with_lines {
                lines.saturating_sub(1)
            } else {
                0
            }
    }
}

impl fmt::Display for Penalty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scales_with_lines {
            write!(f, "{}+(n-1)", self.base)
        } else if self.base == 1 {
            write!(f, "1cycle")
        } else {
            write!(f, "{}cycles", self.base)
        }
    }
}

/// A fetch outcome, indexing into the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The previous block's prediction named this block.
    pub predicted: bool,
    /// The block's lines were present in the ICache.
    pub cache_hit: bool,
    /// The block was present in the L0 buffer (Compressed only; ignored
    /// by Base and Tailored, whose rows coincide across this axis).
    pub buffer_hit: bool,
}

/// The full 2×2×2 table for one encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PenaltyTable {
    name: &'static str,
    /// `[predicted][cache_hit][buffer_hit]`.
    entries: [[[Penalty; 2]; 2]; 2],
}

impl PenaltyTable {
    /// Table 1, Base column.
    pub fn base() -> PenaltyTable {
        let hit = Penalty::fixed(1);
        let miss = Penalty::lines(1);
        let whit = Penalty::fixed(2);
        let wmiss = Penalty::lines(8);
        PenaltyTable {
            name: "Base",
            entries: [
                // predicted = false
                [[wmiss, wmiss], [whit, whit]],
                // predicted = true
                [[miss, miss], [hit, hit]],
            ],
        }
    }

    /// Table 1, Tailored column: +1 cycle on the miss path (extraction/
    /// placement stage), +1 on the mispredict+miss path.
    pub fn tailored() -> PenaltyTable {
        let hit = Penalty::fixed(1);
        let miss = Penalty::lines(2);
        let whit = Penalty::fixed(2);
        let wmiss = Penalty::lines(9);
        PenaltyTable {
            name: "Tailored",
            entries: [[[wmiss, wmiss], [whit, whit]], [[miss, miss], [hit, hit]]],
        }
    }

    /// Table 1, Compressed column: the L0 buffer supplies ready MOPs in
    /// one cycle regardless of anything else; otherwise the decompressor
    /// stage stretches every path, to `10+(n−1)` on mispredict+miss.
    pub fn compressed() -> PenaltyTable {
        PenaltyTable {
            name: "Compressed",
            entries: [
                // predicted = false: [cache miss, cache hit] × [buf miss, buf hit]
                [
                    [Penalty::lines(10), Penalty::fixed(1)],
                    [Penalty::lines(2), Penalty::fixed(1)],
                ],
                // predicted = true
                [
                    [Penalty::lines(3), Penalty::fixed(1)],
                    [Penalty::lines(1), Penalty::fixed(1)],
                ],
            ],
        }
    }

    /// The encoding name this table models.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Looks up an outcome.
    pub fn penalty(&self, o: Outcome) -> Penalty {
        self.entries[o.predicted as usize][o.cache_hit as usize][o.buffer_hit as usize]
    }

    /// Renders the paper's Table 1 for the three encodings.
    pub fn render_table1() -> String {
        let tables = [Self::base(), Self::tailored(), Self::compressed()];
        let mut out = String::new();
        out.push_str("Table 1. Cache study cycle count assumptions summary.\n");
        out.push_str("(Base and Tailored do not employ a buffer: rows coincide)\n\n");
        out.push_str(&format!(
            "{:<28}{:>10}{:>10}{:>12}\n",
            "", "Base", "Tailored", "Compressed"
        ));
        let rows = [
            (
                "pred correct / hit  / Bhit",
                Outcome {
                    predicted: true,
                    cache_hit: true,
                    buffer_hit: true,
                },
            ),
            (
                "pred correct / hit  / Bmiss",
                Outcome {
                    predicted: true,
                    cache_hit: true,
                    buffer_hit: false,
                },
            ),
            (
                "pred correct / miss / Bhit",
                Outcome {
                    predicted: true,
                    cache_hit: false,
                    buffer_hit: true,
                },
            ),
            (
                "pred correct / miss / Bmiss",
                Outcome {
                    predicted: true,
                    cache_hit: false,
                    buffer_hit: false,
                },
            ),
            (
                "pred wrong   / hit  / Bhit",
                Outcome {
                    predicted: false,
                    cache_hit: true,
                    buffer_hit: true,
                },
            ),
            (
                "pred wrong   / hit  / Bmiss",
                Outcome {
                    predicted: false,
                    cache_hit: true,
                    buffer_hit: false,
                },
            ),
            (
                "pred wrong   / miss / Bhit",
                Outcome {
                    predicted: false,
                    cache_hit: false,
                    buffer_hit: true,
                },
            ),
            (
                "pred wrong   / miss / Bmiss",
                Outcome {
                    predicted: false,
                    cache_hit: false,
                    buffer_hit: false,
                },
            ),
        ];
        for (label, o) in rows {
            out.push_str(&format!(
                "{:<28}{:>10}{:>10}{:>12}\n",
                label,
                tables[0].penalty(o).to_string(),
                tables[1].penalty(o).to_string(),
                tables[2].penalty(o).to_string()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(predicted: bool, cache_hit: bool, buffer_hit: bool) -> Outcome {
        Outcome {
            predicted,
            cache_hit,
            buffer_hit,
        }
    }

    #[test]
    fn base_matches_table1() {
        let t = PenaltyTable::base();
        assert_eq!(t.penalty(o(true, true, true)).cycles(4), 1);
        assert_eq!(t.penalty(o(true, false, false)).cycles(4), 4); // 1+(4-1)
        assert_eq!(t.penalty(o(false, true, false)).cycles(4), 2);
        assert_eq!(t.penalty(o(false, false, true)).cycles(4), 11); // 8+(4-1)
    }

    #[test]
    fn tailored_matches_table1() {
        let t = PenaltyTable::tailored();
        assert_eq!(t.penalty(o(true, true, false)).cycles(1), 1);
        assert_eq!(t.penalty(o(true, false, true)).cycles(3), 4); // 2+(3-1)
        assert_eq!(t.penalty(o(false, true, true)).cycles(1), 2);
        assert_eq!(t.penalty(o(false, false, false)).cycles(2), 10); // 9+(2-1)
    }

    #[test]
    fn compressed_matches_table1() {
        let t = PenaltyTable::compressed();
        // Buffer hit always costs 1 cycle, whatever else happened.
        for p in [true, false] {
            for c in [true, false] {
                assert_eq!(t.penalty(o(p, c, true)).cycles(9), 1);
            }
        }
        assert_eq!(t.penalty(o(true, true, false)).cycles(3), 3); // 1+(3-1)
        assert_eq!(t.penalty(o(true, false, false)).cycles(3), 5); // 3+(3-1)
        assert_eq!(t.penalty(o(false, true, false)).cycles(3), 4); // 2+(3-1)
        assert_eq!(t.penalty(o(false, false, false)).cycles(3), 12); // 10+(3-1)
    }

    #[test]
    fn deeper_pipeline_costs_more_on_mispredict() {
        // The central Figure-13 driver: Compressed's worst case exceeds
        // Tailored's exceeds Base's.
        let worst = |t: &PenaltyTable| t.penalty(o(false, false, false)).cycles(1);
        assert!(worst(&PenaltyTable::compressed()) > worst(&PenaltyTable::tailored()));
        assert!(worst(&PenaltyTable::tailored()) > worst(&PenaltyTable::base()));
    }

    #[test]
    fn one_line_blocks_pay_no_line_surcharge() {
        let p = Penalty {
            base: 3,
            scales_with_lines: true,
        };
        assert_eq!(p.cycles(1), 3);
        assert_eq!(p.cycles(0), 3);
        assert_eq!(p.cycles(5), 7);
    }

    #[test]
    fn render_contains_all_columns() {
        let s = PenaltyTable::render_table1();
        assert!(s.contains("Base"));
        assert!(s.contains("Tailored"));
        assert!(s.contains("Compressed"));
        assert!(s.contains("10+(n-1)"));
        assert!(s.contains("9+(n-1)"));
        assert!(s.contains("8+(n-1)"));
    }
}
