//! The Address Translation Buffer (paper §3.3) with its coupled branch
//! predictor (§3.4).
//!
//! Fully associative, LRU, one entry per recently-fetched block. An entry
//! holds the ATT metadata (compressed address, lines, MOPs) plus the
//! block's next-block predictor: a 2-bit saturating taken counter (Smith, ISCA 1981)
//! and a last-target slot; predicted-next is the last target when the
//! counter says taken, the sequential block otherwise.

use ccc_core::AttEntry;
use std::collections::HashMap;

/// 2-bit saturating counter, initialized weakly-taken (loops warm up
/// fast, matching the paper's single-branch-per-block structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoBit(u8);

impl Default for TwoBit {
    fn default() -> TwoBit {
        TwoBit(2)
    }
}

impl TwoBit {
    /// Current prediction.
    pub fn taken(&self) -> bool {
        self.0 >= 2
    }

    /// Trains on an actual outcome.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

/// One cached translation + predictor entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtbEntry {
    /// The static ATT payload.
    pub att: AttEntry,
    /// Taken/not-taken state for the block-ending branch.
    pub counter: TwoBit,
    /// Last observed non-sequential successor.
    pub last_target: Option<u32>,
}

/// The buffer itself.
#[derive(Debug, Clone)]
pub struct Atb {
    capacity: usize,
    entries: HashMap<u32, (AtbEntry, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Atb {
    /// Creates an empty ATB with room for `capacity` blocks.
    pub fn new(capacity: usize) -> Atb {
        Atb {
            capacity: capacity.max(1),
            entries: HashMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up block `b`, loading its ATT entry on a miss (the model's
    /// stand-in for the ATT fetch from code memory). Returns whether it
    /// hit.
    pub fn access(&mut self, b: u32, att: &AttEntry) -> bool {
        self.clock += 1;
        if let Some((_, stamp)) = self.entries.get_mut(&b) {
            *stamp = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            // Evict LRU.
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, (_, s))| *s) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            b,
            (
                AtbEntry {
                    att: *att,
                    counter: TwoBit::default(),
                    last_target: None,
                },
                self.clock,
            ),
        );
        false
    }

    /// Predicts the successor of block `b` (None = no entry → predict
    /// sequential).
    pub fn predict_next(&self, b: u32) -> u32 {
        match self.entries.get(&b) {
            Some((e, _)) if e.counter.taken() => e.last_target.unwrap_or(b + 1),
            _ => b + 1,
        }
    }

    /// The last observed non-sequential successor of `b`, if cached.
    pub fn last_target(&self, b: u32) -> Option<u32> {
        self.entries.get(&b).and_then(|(e, _)| e.last_target)
    }

    /// Trains block `b`'s predictor with the observed successor.
    pub fn train(&mut self, b: u32, actual_next: u32) {
        if let Some((e, _)) = self.entries.get_mut(&b) {
            let taken = actual_next != b + 1;
            e.counter.update(taken);
            if taken {
                e.last_target = Some(actual_next);
            }
        }
    }

    /// ATB hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// ATB miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate ("due to the normally high spatial locality, the ATB has
    /// a very low level of contention").
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn att() -> AttEntry {
        AttEntry::new(0, 10, 2, 4, 0)
    }

    #[test]
    fn two_bit_counter_saturates() {
        let mut c = TwoBit::default();
        assert!(c.taken());
        c.update(false);
        assert!(!c.taken()); // 1
        c.update(false);
        c.update(false);
        assert!(!c.taken()); // stays 0
        c.update(true);
        assert!(!c.taken()); // 1: hysteresis
        c.update(true);
        assert!(c.taken()); // 2
        c.update(true);
        c.update(true);
        assert!(c.taken()); // stays 3
    }

    #[test]
    fn miss_then_hit() {
        let mut atb = Atb::new(4);
        assert!(!atb.access(7, &att()));
        assert!(atb.access(7, &att()));
        assert_eq!(atb.hits(), 1);
        assert_eq!(atb.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut atb = Atb::new(2);
        atb.access(1, &att());
        atb.access(2, &att());
        atb.access(1, &att()); // 2 becomes LRU
        atb.access(3, &att()); // evicts 2
        assert!(atb.access(1, &att()));
        assert!(!atb.access(2, &att()), "2 was evicted");
    }

    #[test]
    fn predictor_learns_taken_branch() {
        let mut atb = Atb::new(4);
        atb.access(5, &att());
        // Cold: counter is weakly-taken but no target → sequential.
        assert_eq!(atb.predict_next(5), 6);
        atb.train(5, 9);
        assert_eq!(atb.predict_next(5), 9, "learned last target");
        // Hysteresis: one not-taken keeps the strong-taken prediction.
        atb.train(5, 6);
        assert_eq!(atb.predict_next(5), 9);
        atb.train(5, 6);
        assert_eq!(atb.predict_next(5), 6, "two not-takens flip the counter");
    }

    #[test]
    fn unknown_block_predicts_sequential() {
        let atb = Atb::new(4);
        assert_eq!(atb.predict_next(42), 43);
    }

    #[test]
    fn eviction_loses_training() {
        let mut atb = Atb::new(1);
        atb.access(1, &att());
        atb.train(1, 10);
        assert_eq!(atb.predict_next(1), 10);
        atb.access(2, &att()); // evicts 1
        assert_eq!(atb.predict_next(1), 2, "entry gone → sequential");
    }
}
