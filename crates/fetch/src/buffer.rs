//! The L0 decompressed-block buffer (paper §4).
//!
//! "One block is decompressed at a time and is held in a buffer, which is
//! accessed in parallel with (but has priority over) the main cache …
//! organized as a small fully associative cache. The size of the L0
//! buffer was set at 32 op entries (160 bytes)." Tight DSP-style loops
//! fit entirely, which is also why the buffer doubles as a filter cache
//! for power.

use std::collections::VecDeque;

/// Fully associative, FIFO-replaced buffer of decompressed blocks,
/// bounded by total *operations* held.
#[derive(Debug, Clone)]
pub struct L0Buffer {
    capacity_ops: u32,
    /// Resident (block, ops) in FIFO order.
    resident: VecDeque<(u32, u32)>,
    used_ops: u32,
    hits: u64,
    misses: u64,
}

/// The paper's buffer size: 32 operations (160 bytes of 40-bit ops).
pub const DEFAULT_L0_OPS: u32 = 32;

impl L0Buffer {
    /// Creates an empty buffer holding up to `capacity_ops` operations.
    pub fn new(capacity_ops: u32) -> L0Buffer {
        L0Buffer {
            capacity_ops: capacity_ops.max(1),
            resident: VecDeque::new(),
            used_ops: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Probes for a block; on a miss, the freshly decompressed block is
    /// installed (if it fits at all). Returns whether it hit.
    pub fn access(&mut self, block: u32, block_ops: u32) -> bool {
        if self.resident.iter().any(|&(b, _)| b == block) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if block_ops <= self.capacity_ops {
            while self.used_ops + block_ops > self.capacity_ops {
                let (_, ops) = self
                    .resident
                    .pop_front()
                    .expect("used_ops > 0 implies resident");
                self.used_ops -= ops;
            }
            self.resident.push_back((block, block_ops));
            self.used_ops += block_ops;
        }
        false
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tight_loop_fits_and_hits() {
        let mut b = L0Buffer::new(32);
        assert!(!b.access(1, 10));
        assert!(!b.access(2, 10));
        for _ in 0..10 {
            assert!(b.access(1, 10));
            assert!(b.access(2, 10));
        }
        assert_eq!(b.misses(), 2);
        assert_eq!(b.hits(), 20);
    }

    #[test]
    fn fifo_eviction_when_full() {
        let mut b = L0Buffer::new(32);
        b.access(1, 16);
        b.access(2, 16); // full
        b.access(3, 8); // evicts 1 (FIFO)
        assert!(!b.access(1, 16), "1 was evicted");
        assert!(b.access(3, 8));
    }

    #[test]
    fn oversized_block_bypasses() {
        let mut b = L0Buffer::new(32);
        assert!(!b.access(9, 40));
        assert!(!b.access(9, 40), "oversized block is never installed");
        // Small blocks still work.
        assert!(!b.access(1, 4));
        assert!(b.access(1, 4));
    }

    #[test]
    fn hit_rate() {
        let mut b = L0Buffer::new(32);
        b.access(1, 1);
        b.access(1, 1);
        assert!((b.hit_rate() - 0.5).abs() < 1e-12);
    }
}
