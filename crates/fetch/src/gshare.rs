//! Gshare branch prediction — one of the paper's named future-work items
//! ("theoretically more complex branch predictors could be used (e.g.,
//! gshare or PAs Yeh/Patt predictor)", §3.4; "the effects of more
//! elaborate branch prediction mechanisms", §7).
//!
//! A global history register of block-transition outcomes XORed with the
//! block id indexes a table of 2-bit counters; the direction comes from
//! the counter, the target still from the ATB entry's last-target slot
//! (the ATB remains the translation point either way).

use crate::atb::TwoBit;

/// A gshare direction predictor.
#[derive(Debug, Clone)]
pub struct Gshare {
    history: u32,
    history_bits: u32,
    table: Vec<TwoBit>,
}

impl Gshare {
    /// Creates a predictor with `2^history_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 20.
    pub fn new(history_bits: u32) -> Gshare {
        assert!(
            (1..=20).contains(&history_bits),
            "unreasonable history size"
        );
        Gshare {
            history: 0,
            history_bits,
            table: vec![TwoBit::default(); 1 << history_bits],
        }
    }

    fn index(&self, block: u32) -> usize {
        ((block ^ self.history) & ((1 << self.history_bits) - 1)) as usize
    }

    /// Predicted direction for the branch ending `block`.
    pub fn predict_taken(&self, block: u32) -> bool {
        self.table[self.index(block)].taken()
    }

    /// Trains on the observed outcome and shifts the global history.
    pub fn train(&mut self, block: u32, taken: bool) {
        let i = self.index(block);
        self.table[i].update(taken);
        self.history = ((self.history << 1) | taken as u32) & ((1 << self.history_bits) - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_constant_direction() {
        // With a constant outcome the history register saturates, so the
        // same table entry is exercised and accuracy approaches 1.
        let mut g = Gshare::new(8);
        let mut correct = 0;
        for i in 0..100 {
            let p = g.predict_taken(5);
            if i >= 10 && p {
                correct += 1;
            }
            g.train(5, true);
        }
        assert!(
            correct >= 88,
            "constant branch should be near-perfect, got {correct}/90"
        );
    }

    #[test]
    fn learns_an_alternating_pattern_where_two_bit_cannot() {
        // A strictly alternating branch: 2-bit counters hover at 50%,
        // gshare keys off the history and converges to near-perfect.
        let mut g = Gshare::new(8);
        let mut correct = 0;
        let mut total = 0;
        let mut outcome = false;
        for i in 0..400 {
            let predicted = g.predict_taken(7);
            if i >= 100 {
                total += 1;
                if predicted == outcome {
                    correct += 1;
                }
            }
            g.train(7, outcome);
            outcome = !outcome;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "gshare should learn alternation, got {acc}");
    }

    #[test]
    fn history_separates_contexts() {
        // Branch 3's outcome depends on whether branch 1 was taken.
        let mut g = Gshare::new(10);
        for _ in 0..200 {
            g.train(1, true);
            g.train(3, true);
            g.train(1, false);
            g.train(3, false);
        }
        // After training, prediction for 3 following taken-1 differs from
        // following not-taken-1 in at least one of the phases.
        g.train(1, true);
        let after_taken = g.predict_taken(3);
        g.train(3, true);
        g.train(1, false);
        let after_not = g.predict_taken(3);
        assert!(after_taken || !after_not, "history has no effect at all");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_history() {
        let _ = Gshare::new(0);
    }
}
